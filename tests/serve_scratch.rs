//! End-to-end tests for the serve fast path: the scratch request
//! decoder must agree with the oracle decoder (vendored parser +
//! serde-derive semantics) on random mutated wire lines, fast-path-on
//! and fast-path-off servers must emit **byte-identical** reply lines
//! for the same request stream, and a warmed connection must serve
//! sustained one-shot predict load with **zero heap allocations**
//! (`ServeStats::steady_allocs`), at 1 and 4 wavefront threads.
//!
//! The decoder's contract is *fallback, not error parity*: `Ready` means
//! the oracle would accept the line as an eligible one-shot
//! `admit_predict` with the identical lowered plan; `Fallback` is always
//! safe because the server re-runs the oracle decoder for the reply.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use qpp::net::serve::proto::{self, Request};
use qpp::net::serve::scratch::{FastDecode, RequestScratch};
use qpp::net::serve::{validate_plan, Client, ServeAddr, ServeConfig, Server};
use qpp::net::{QppConfig, QppNet, ScratchPlan};
use qpp::plansim::prelude::*;

/// Shared fixture: a dataset (both workloads, for shape coverage) and a
/// small fitted model.
fn fixture() -> &'static (Dataset, QppNet) {
    static FIXTURE: OnceLock<(Dataset, QppNet)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 28, 31);
        let train: Vec<&Plan> = ds.plans.iter().collect();
        let mut model = QppNet::new(QppConfig { epochs: 2, ..QppConfig::tiny() }, &ds.catalog);
        model.fit(&train);
        (ds, model)
    })
}

/// One agreement check: whatever the scratch decoder claims about
/// `line`, the oracle must back it up. `Fallback` is uninformative by
/// contract; `Ready` must match the oracle's accept decision, tenant,
/// eligibility gates, and lowered plan.
fn check_agreement(scratch: &mut RequestScratch, line: &str) {
    match scratch.decode(line) {
        FastDecode::Fallback => {}
        FastDecode::Ready { tenant } => {
            let req = proto::decode_request(line).unwrap_or_else(|e| {
                panic!("scratch Ready but oracle rejects [{:?}]: {line}", e.msg)
            });
            let Request::AdmitPredict { plan, keep: false, tenant: oracle_tenant } = req else {
                panic!("scratch Ready but oracle decoded a different request: {line}")
            };
            assert_eq!(tenant, oracle_tenant, "tenant mismatch on {line}");
            assert!(validate_plan(&plan).is_ok(), "scratch Ready on invalid arity: {line}");
            let mut reference = ScratchPlan::new();
            reference.rebuild_from_tree(&plan);
            let got = scratch.plan();
            assert_eq!(got.len(), reference.len(), "node count diverged on {line}");
            assert_eq!(got.kinds(), reference.kinds(), "kinds diverged on {line}");
            assert_eq!(got.nodes(), reference.nodes(), "nodes diverged on {line}");
            assert_eq!(
                got.shard_hash(),
                reference.shard_hash(),
                "content hash diverged on {line}"
            );
        }
    }
}

/// Applies one structured mutation to an ASCII wire line.
fn mutate(line: &mut String, pos: usize, byte: u8, kind: u8) {
    const SNIPPETS: &[&str] = &[
        r#"A"#,
        r#"\ud800"#,
        r#""op":"admit_predict","#,
        r#""keep":true,"#,
        r#""children":[],"#,
        "00",
        ".5e3",
        "{{",
        "]]",
        r#"\q"#,
        r#""v":1,"#,
        "null",
    ];
    if line.is_empty() {
        return;
    }
    let pos = pos % line.len();
    match kind {
        // Truncate.
        0 => line.truncate(pos),
        // Replace one byte with a printable hostile byte.
        1 => {
            let hostile = b"\"\\{}[]:,0e-+.untf 19x";
            let b = hostile[byte as usize % hostile.len()] as char;
            line.replace_range(pos..pos + 1, &b.to_string());
        }
        // Insert a hostile snippet.
        2 => line.insert_str(pos, SNIPPETS[byte as usize % SNIPPETS.len()]),
        // Duplicate a short region in place (duplicate-key pressure).
        3 => {
            let end = (pos + 1 + byte as usize % 24).min(line.len());
            let dup = line[pos..end].to_string();
            line.insert_str(end, &dup);
        }
        // Delete one byte.
        4 => {
            line.remove(pos);
        }
        // Leave as-is (exercises the pristine accept path post-shrink).
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random mutations of real wire lines: the scratch decoder and the
    /// oracle must never disagree, and one warm `RequestScratch` reused
    /// across hostile inputs must never carry state over.
    #[test]
    fn scratch_decoder_agrees_with_oracle_under_mutation(
        pick in any::<usize>(),
        keep in any::<bool>(),
        tenant_bits in any::<u64>(),
        has_tenant in any::<bool>(),
        muts in prop::collection::vec((any::<usize>(), any::<u8>(), 0u8..6), 0..4),
    ) {
        let tenant = has_tenant.then_some(tenant_bits);
        let (ds, _) = fixture();
        let plan = Box::new(ds.plans[pick % ds.plans.len()].root.clone());
        let mut line = proto::encode_request(&Request::AdmitPredict { plan, keep, tenant });
        let mut scratch = RequestScratch::new();
        // The pristine line first (warms the scratch), then the mutants
        // through the SAME scratch: correctness must not depend on
        // starting clean.
        check_agreement(&mut scratch, &line);
        for (pos, byte, kind) in muts {
            mutate(&mut line, pos, byte, kind);
            check_agreement(&mut scratch, &line);
        }
    }

    /// Coverage guard against an over-conservative decoder: every
    /// pristine eligible line (one-shot `admit_predict`, any tenant
    /// form) must take the fast path, with the lowered plan matching a
    /// from-tree rebuild.
    #[test]
    fn pristine_oneshot_lines_always_take_the_fast_path(
        pick in any::<usize>(),
        tenant_bits in any::<u64>(),
        has_tenant in any::<bool>(),
    ) {
        let tenant = has_tenant.then_some(tenant_bits);
        let (ds, _) = fixture();
        let plan = Box::new(ds.plans[pick % ds.plans.len()].root.clone());
        let line = proto::encode_request(&Request::AdmitPredict {
            plan, keep: false, tenant,
        });
        let mut scratch = RequestScratch::new();
        let got = scratch.decode(&line);
        prop_assert_eq!(got, FastDecode::Ready { tenant }, "fell back on {}", line);
        check_agreement(&mut scratch, &line);
    }
}

/// A raw line-level client: writes request lines verbatim and returns
/// reply lines verbatim, so replies can be compared byte-for-byte.
struct RawClient {
    w: TcpStream,
    r: BufReader<TcpStream>,
}

impl RawClient {
    fn connect(addr: &ServeAddr) -> RawClient {
        let ServeAddr::Tcp(a) = addr else { panic!("raw client is TCP-only") };
        let s = TcpStream::connect(a).expect("connect");
        s.set_nodelay(true).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        RawClient { r: BufReader::new(s.try_clone().unwrap()), w: s }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.w.write_all(line.as_bytes()).expect("send");
        self.w.write_all(b"\n").expect("send nl");
        let mut reply = String::new();
        self.r.read_line(&mut reply).expect("reply");
        assert!(reply.ends_with('\n'), "unterminated reply to {line}");
        reply
    }
}

/// Spawns a server over the shared model, runs `body` against it, then
/// shuts it down.
fn with_server<T>(cfg: ServeConfig, body: impl FnOnce(&ServeAddr) -> T) -> T {
    let (_, model) = fixture();
    let mut server = Server::bind(&ServeAddr::parse("127.0.0.1:0").unwrap(), cfg).expect("bind");
    server.register(model);
    let addr = server.local_addr().clone();
    std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || server.run().expect("server run"));
        let out = body(&addr);
        let mut ctl = Client::connect(&addr).expect("control");
        ctl.shutdown().expect("shutdown");
        out
    })
}

/// The same request stream — eligible one-shots, ineligible verbs, and
/// malformed hostile lines — against a fast-path server and a
/// slow-path server must produce **byte-identical** reply lines, and
/// only the fast server's `fast_path_predicted` may move.
#[test]
fn fast_path_replies_are_byte_identical_to_slow_path() {
    let (ds, model) = fixture();
    let fp = model.fingerprint().expect("fitted model has a fingerprint");

    // Request stream: every flavor the fast path gates on.
    let mut lines: Vec<String> = Vec::new();
    for (i, plan) in ds.plans.iter().take(6).enumerate() {
        let tenant = if i % 2 == 0 { Some(fp) } else { None };
        lines.push(proto::encode_request(&Request::AdmitPredict {
            plan: Box::new(plan.root.clone()),
            keep: false,
            tenant,
        }));
    }
    // Ineligible but valid: keep=true (admits residency — replies carry
    // ids, identical because both servers allocate ids in sequence).
    lines.push(proto::encode_request(&Request::AdmitPredict {
        plan: Box::new(ds.plans[0].root.clone()),
        keep: true,
        tenant: None,
    }));
    // Unknown tenant: fast path must fall back to the oracle's exact
    // error reply.
    lines.push(proto::encode_request(&Request::AdmitPredict {
        plan: Box::new(ds.plans[1].root.clone()),
        keep: false,
        tenant: Some(fp ^ 1),
    }));
    // Hostile / malformed lines: error replies must match byte-for-byte.
    for bad in [
        r#"{"v":1,"op":"admit_predict"}"#,
        r#"{"v":2,"op":"admit_predict","plan":null}"#,
        r#"{"v":1,"op":"noop"}"#,
        r#"{"v":1,"op":"predict","id":7}"#,
        r#"{"v":1,"op":"admit_predict","plan":{"op":"Materialize","est":{"width":1,"rows":1,"buffers":0,"ios":0,"total_cost":1,"selectivity":1},"actual":{"rows":1,"latency_ms":1,"self_latency_ms":1},"children":[]}}"#,
        "not json at all",
        r#"{"v":1,"op":"admit_predict","plan":[1,2],"keep":false}"#,
    ] {
        lines.push(bad.to_string());
    }

    let run = |fast_path: bool| -> (Vec<String>, u64) {
        let cfg = ServeConfig { fast_path, ..ServeConfig::default() };
        with_server(cfg, |addr| {
            let mut raw = RawClient::connect(addr);
            let replies: Vec<String> = lines.iter().map(|l| raw.roundtrip(l)).collect();
            let mut ctl = Client::connect(addr).expect("control");
            let stats = ctl.stats().expect("stats");
            (replies, stats.fast_path_predicted)
        })
    };

    let (fast_replies, fast_count) = run(true);
    let (slow_replies, slow_count) = run(false);
    for (i, (f, s)) in fast_replies.iter().zip(&slow_replies).enumerate() {
        assert_eq!(f, s, "reply {i} diverged for request {}", lines[i]);
    }
    assert_eq!(slow_count, 0, "fast_path disabled must never take the fast path");
    assert_eq!(fast_count, 6, "every eligible one-shot must take the fast path");
}

/// Sustained one-shot predict load on a warmed connection allocates
/// nothing: after `FAST_WARMUP` requests per connection, the measured
/// per-request allocation delta (read → decode → run → reply write)
/// must stay exactly zero. Checked at 1 and 4 wavefront threads, and
/// with 4 concurrent connections.
#[test]
fn steady_state_fast_path_is_allocation_free() {
    for (threads, conns) in [(1usize, 1usize), (4, 4)] {
        // Forced on: this test is about the fast path itself, so it must
        // not flip off under the CI `QPP_SERVE_FAST_PATH=0` leg.
        let cfg = ServeConfig { threads, fast_path: true, ..ServeConfig::default() };
        with_server(cfg, |addr| {
            std::thread::scope(|scope| {
                for c in 0..conns {
                    let addr = addr.clone();
                    scope.spawn(move || {
                        let (ds, _) = fixture();
                        let mut client = Client::connect(&addr).expect("connect");
                        client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                        // A fixed 8-plan mix, cycled well past the
                        // 64-request warmup window.
                        for i in 0..200usize {
                            let plan = &ds.plans[(c + i) % 8].root;
                            let (id, latency) =
                                client.admit_predict(plan, false).expect("predict");
                            assert!(id.is_none() && latency.is_finite());
                        }
                    });
                }
            });
            let mut ctl = Client::connect(addr).expect("control");
            let stats = ctl.stats().expect("stats");
            assert_eq!(
                stats.fast_path_predicted,
                200 * conns as u64,
                "threads={threads}: every one-shot must take the fast path"
            );
            assert_eq!(
                stats.steady_allocs, 0,
                "threads={threads} conns={conns}: steady-state fast path allocated"
            );
            // The per-phase clocks must actually tick.
            assert!(stats.parse_ns > 0, "parse_ns never accumulated");
            assert!(stats.featurize_ns > 0, "featurize_ns never accumulated");
            assert!(stats.run_ns > 0, "run_ns never accumulated");
            assert!(stats.serialize_ns > 0, "serialize_ns never accumulated");
        });
    }
}
