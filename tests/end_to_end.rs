//! End-to-end integration tests spanning all workspace crates: workload
//! generation → planning/simulation → featurization → all four models →
//! metrics.

use qpp::baselines::rbf::RbfModel;
use qpp::baselines::svm::SvmModel;
use qpp::baselines::tam::TamModel;
use qpp::baselines::LatencyModel;
use qpp::net::{evaluate, QppConfig, QppNet};
use qpp::plansim::prelude::*;

fn workload(n: usize, seed: u64) -> Dataset {
    Dataset::generate(Workload::TpcH, 1.0, n, seed)
}

#[test]
fn full_pipeline_produces_sane_metrics_for_every_model() {
    let ds = workload(120, 100);
    let split = ds.paper_split(1);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);
    let actual: Vec<f64> = test.iter().map(|p| p.latency_ms()).collect();

    let mut tam = TamModel::new();
    tam.fit(&train);
    let mut svm = SvmModel::new(1);
    svm.fit(&train);
    let mut rbf = RbfModel::new();
    rbf.fit(&train);
    let mut qpp = QppNet::new(QppConfig { epochs: 12, ..QppConfig::tiny() }, &ds.catalog);
    qpp.fit(&train);

    for preds in [
        tam.predict_batch(&test),
        svm.predict_batch(&test),
        rbf.predict_batch(&test),
        qpp.predict_batch(&test),
    ] {
        let m = evaluate(&actual, &preds);
        assert!(m.relative_error.is_finite());
        assert!(m.mae_ms.is_finite() && m.mae_ms >= 0.0);
        assert!((m.r_le_15 + m.r_15_to_2 + m.r_ge_2 - 1.0).abs() < 1e-9);
        assert!(preds.iter().all(|p| p.is_finite() && *p >= 0.0));
    }
}

#[test]
fn trained_qppnet_beats_trivial_predictors() {
    let ds = workload(200, 7);
    let split = ds.paper_split(2);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);
    let actual: Vec<f64> = test.iter().map(|p| p.latency_ms()).collect();

    let mut qpp = QppNet::new(
        QppConfig { epochs: 60, batch_size: 32, ..QppConfig::tiny() },
        &ds.catalog,
    );
    qpp.fit(&train);
    let qpp_m = qpp.evaluate(&test);

    // Trivial baseline 1: always predict the training-set mean latency.
    let train_mean: f64 =
        train.iter().map(|p| p.latency_ms()).sum::<f64>() / train.len() as f64;
    let mean_m = evaluate(&actual, &vec![train_mean; actual.len()]);

    // Trivial baseline 2: always predict the training geometric mean
    // (stronger under relative error, which is multiplicative).
    let train_gm: f64 = (train.iter().map(|p| p.latency_ms().max(1e-9).ln()).sum::<f64>()
        / train.len() as f64)
        .exp();
    let gm_m = evaluate(&actual, &vec![train_gm; actual.len()]);

    assert!(
        qpp_m.relative_error < mean_m.relative_error,
        "QPPNet {:.3} vs train-mean {:.3}",
        qpp_m.relative_error,
        mean_m.relative_error
    );
    assert!(
        qpp_m.relative_error < gm_m.relative_error,
        "QPPNet {:.3} vs train-geomean {:.3}",
        qpp_m.relative_error,
        gm_m.relative_error
    );
}

#[test]
fn model_serialization_round_trips_across_process_boundaries() {
    let ds = workload(60, 11);
    let train = ds.select(&(0..40).collect::<Vec<_>>());
    let mut model = QppNet::new(QppConfig { epochs: 4, ..QppConfig::tiny() }, &ds.catalog);
    model.fit(&train);

    let json = model.to_json();
    let restored = QppNet::from_json(&json).expect("valid snapshot");
    for p in &ds.plans[40..50] {
        assert_eq!(model.predict(p), restored.predict(p));
    }
}

#[test]
fn everything_is_deterministic_under_a_fixed_seed() {
    let run = || {
        let ds = workload(80, 55);
        let split = ds.paper_split(3);
        let mut model = QppNet::new(QppConfig { epochs: 5, ..QppConfig::tiny() }, &ds.catalog);
        model.fit(&ds.select(&split.train));
        model.predict_batch(&ds.select(&split.test))
    };
    assert_eq!(run(), run());
}

#[test]
fn predictions_do_not_depend_on_test_set_actuals() {
    // The honesty rule: models must never read NodeActual at prediction
    // time. Zeroing the actuals of a test plan must not change its
    // prediction.
    let ds = workload(80, 21);
    let train = ds.select(&(0..60).collect::<Vec<_>>());
    let mut model = QppNet::new(QppConfig { epochs: 4, ..QppConfig::tiny() }, &ds.catalog);
    model.fit(&train);

    let mut tam = TamModel::new();
    tam.fit(&train);
    let mut svm = SvmModel::new(2);
    svm.fit(&train);
    let mut rbf = RbfModel::new();
    rbf.fit(&train);

    let original = ds.plans[70].clone();
    let mut scrubbed = original.clone();
    scrubbed.root.visit_postorder_mut(&mut |n| {
        n.actual.latency_ms = 0.0;
        n.actual.self_latency_ms = 0.0;
        n.actual.rows = 0.0;
    });

    assert_eq!(model.predict(&original), model.predict(&scrubbed));
    assert_eq!(tam.predict(&original), tam.predict(&scrubbed));
    assert_eq!(svm.predict(&original), svm.predict(&scrubbed));
    assert_eq!(rbf.predict(&original), rbf.predict(&scrubbed));
}
