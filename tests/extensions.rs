//! Integration tests for the extensions beyond the paper: the §3
//! architecture ablations, the §8 concurrency extension, data-parallel
//! training and the interpretability tooling — exercised end to end
//! through the facade crate exactly as a downstream user would.

use qpp::ablation::{AblationConfig, FlatDnn, SparseUnitDnn, TreeLstm};
use qpp::baselines::LatencyModel;
use qpp::net::{permutation_importance, QppConfig, QppNet};
use qpp::plansim::features::Featurizer;
use qpp::plansim::prelude::*;

fn tiny_qpp(epochs: usize) -> QppConfig {
    QppConfig { epochs, ..QppConfig::tiny() }
}

fn tiny_ablation(epochs: usize) -> AblationConfig {
    AblationConfig { epochs, hidden_units: 24, ..AblationConfig::tiny() }
}

/// All three §3 strawmen and QPPNet train and predict on the same
/// workload through the shared `LatencyModel`-style interface.
#[test]
fn ablation_models_run_end_to_end() {
    let ds = Dataset::generate(Workload::TpcH, 1.0, 60, 91);
    let split = ds.paper_split(1);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);

    let mut flat = FlatDnn::new(tiny_ablation(8));
    let mut sparse = SparseUnitDnn::new(tiny_ablation(8), &ds.catalog);
    let mut lstm = TreeLstm::new(tiny_ablation(6), &ds.catalog);
    let models: Vec<&mut dyn LatencyModel> = vec![&mut flat, &mut sparse, &mut lstm];
    for model in models {
        model.fit(&train);
        for p in &test {
            let pred = model.predict(p);
            assert!(pred.is_finite() && pred >= 0.0, "{}: {pred}", model.name());
        }
    }
}

/// The structural capability the §3 strawmen lack: QPPNet predicts a
/// latency for *every operator* of a plan, monotone along the tree, while
/// the flat model only ever produces a single query-level number. (Which
/// model wins on accuracy is scale-dependent — the `ablation` bench
/// measures it; see EXPERIMENTS.md.)
#[test]
fn qppnet_predicts_per_operator_where_flat_cannot() {
    let ds = Dataset::generate(Workload::TpcH, 1.0, 120, 92);
    let split = ds.paper_split(2);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);

    let mut qpp = QppNet::new(tiny_qpp(12), &ds.catalog);
    qpp.fit(&train);

    for plan in test.iter().take(10) {
        let per_op = qpp.predict_operators(plan);
        assert_eq!(per_op.len(), plan.node_count());
        // Monotone: the root (last in post order) is the maximum, because
        // inclusive latencies only grow upward and the structural
        // envelope enforces it at inference.
        let root = *per_op.last().unwrap();
        assert!(
            per_op.iter().all(|&p| p <= root + 1e-6),
            "root must dominate subtree predictions"
        );
    }

    // Both models remain in a sane range on unseen queries (the strong
    // ordering claims are bench-scale; this guards against regressions
    // that send either model off to infinity).
    let actuals: Vec<f64> = test.iter().map(|p| p.latency_ms()).collect();
    let mut flat = FlatDnn::new(tiny_ablation(15));
    flat.fit(&train);
    for preds in [qpp.predict_batch(&test), flat.predict_batch(&test)] {
        let m = qpp::net::evaluate(&actuals, &preds);
        assert!(m.median_r.is_finite() && m.median_r < 50.0, "median R {}", m.median_r);
    }
}

/// The §8 concurrency pipeline end to end: concurrent generation,
/// load-aware featurization, and the load-aware model beating the
/// load-blind one under mixed load.
#[test]
fn load_aware_model_beats_load_blind_under_concurrency() {
    let ds = Dataset::generate_concurrent(Workload::TpcH, 1.0, 240, 93, 8);
    let split = ds.paper_split(3);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);
    let actuals: Vec<f64> = test.iter().map(|p| p.latency_ms()).collect();

    let mut blind = QppNet::new(tiny_qpp(50), &ds.catalog);
    blind.fit(&train);
    let blind_mae = qpp::net::evaluate(&actuals, &blind.predict_batch(&test)).mae_ms;

    let mut aware = QppNet::with_featurizer(
        tiny_qpp(50),
        Featurizer::with_system_load(&ds.catalog),
    );
    aware.fit(&train);
    let aware_mae = qpp::net::evaluate(&actuals, &aware.predict_batch(&test)).mae_ms;

    assert!(
        aware_mae < blind_mae,
        "load-aware MAE {aware_mae} should beat load-blind MAE {blind_mae}"
    );
}

/// Multi-threaded training produces the same model as serial training
/// (up to f32 summation order), end to end through the public API.
#[test]
fn parallel_and_serial_models_agree() {
    let ds = Dataset::generate(Workload::TpcH, 1.0, 80, 94);
    let plans = ds.select(&(0..ds.len()).collect::<Vec<_>>());

    let mut serial = QppNet::new(QppConfig { threads: 1, ..tiny_qpp(8) }, &ds.catalog);
    serial.fit(&plans);
    let mut parallel = QppNet::new(QppConfig { threads: 4, ..tiny_qpp(8) }, &ds.catalog);
    parallel.fit(&plans);

    for p in plans.iter().take(20) {
        let a = serial.predict(p);
        let b = parallel.predict(p);
        let rel = (a - b).abs() / (1.0 + a.abs());
        assert!(rel < 1e-2, "serial {a} vs parallel {b}");
    }
}

/// Permutation importance runs through the facade and finds the features
/// everyone would expect to matter (some optimizer estimate or relation
/// identity ranks above zero).
#[test]
fn importance_pipeline_end_to_end() {
    let ds = Dataset::generate(Workload::TpcH, 1.0, 80, 95);
    let split = ds.paper_split(5);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);
    let mut model = QppNet::new(tiny_qpp(20), &ds.catalog);
    model.fit(&train);

    let imp = permutation_importance(&model, &test, 7);
    assert!(!imp.is_empty());
    assert!(imp[0].delta_mae_ms > 0.0, "top feature must have positive importance");
    // Labels are threaded through from the featurizer.
    assert!(imp.iter().all(|f| !f.label.is_empty()));
}

/// Early stopping is reachable through the public config and records the
/// stopping epoch in the returned history.
#[test]
fn early_stopping_through_public_api() {
    let ds = Dataset::generate(Workload::TpcH, 1.0, 80, 96);
    let split = ds.paper_split(6);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);

    let cfg = QppConfig {
        epochs: 300,
        early_stop_patience: Some(2),
        learning_rate: 0.3, // stalls fast
        ..QppConfig::tiny()
    };
    let mut model = QppNet::new(cfg, &ds.catalog);
    let history = model.fit_tracked(&train, Some((&test, 1)));
    assert!(history.stopped_at.is_some());
    assert!(history.train_loss.len() < 300);
}
