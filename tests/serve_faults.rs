//! Fault injection for the daemon's wire layer: every malformed input —
//! broken JSON, unknown verbs, oversized lines, numeric ids, bogus
//! tenants, invalid plans, mid-request disconnects — must produce a
//! structured error reply (or a clean drop) while the daemon keeps
//! serving every other client, and a poisoned resident-executor run
//! must not wedge the accept loop.

use std::io::Write;
use std::sync::OnceLock;
use std::time::Duration;

use qpp::net::serve::proto;
use qpp::net::serve::{Client, ClientError, ErrorCode, ServeAddr, ServeConfig, Server};
use qpp::net::{QppConfig, QppNet};
use qpp::plansim::operators::Operator;
use qpp::plansim::plan::PlanNode;
use qpp::plansim::prelude::*;

fn fixture() -> &'static (Dataset, QppNet) {
    static FIXTURE: OnceLock<(Dataset, QppNet)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 16, 21);
        let train: Vec<&Plan> = ds.plans.iter().collect();
        let mut model = QppNet::new(QppConfig { epochs: 2, ..QppConfig::tiny() }, &ds.catalog);
        model.fit(&train);
        (ds, model)
    })
}

/// Starts a daemon on loopback and runs `body` against it, shutting
/// down cleanly afterwards.
fn with_server(cfg: ServeConfig, body: impl FnOnce(&ServeAddr)) {
    let (_, model) = fixture();
    let mut server = Server::bind(&ServeAddr::parse("127.0.0.1:0").unwrap(), cfg).expect("bind");
    server.register(model);
    let addr = server.local_addr().clone();
    std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || server.run().expect("server run"));
        body(&addr);
        let mut ctl = Client::connect(&addr).expect("control connect");
        ctl.set_timeout(Some(Duration::from_secs(10))).unwrap();
        ctl.shutdown().expect("clean shutdown");
    });
}

fn expect_error(client: &mut Client, raw: &str, want: ErrorCode) {
    client.send_raw(raw).expect("send");
    match client.recv().expect("reply after bad input") {
        qpp::net::serve::Response::Error(e) => {
            assert_eq!(e.code, want, "for input {raw:?}: got [{}] {}", e.code.as_str(), e.msg)
        }
        other => panic!("expected {want:?} error for {raw:?}, got {other:?}"),
    }
}

/// A healthy request must still succeed on the *same* connection after
/// each kind of garbage — the error replies resynchronize the stream.
#[test]
fn malformed_inputs_get_structured_errors_and_connection_survives() {
    let (ds, _) = fixture();
    with_server(ServeConfig::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        client.set_timeout(Some(Duration::from_secs(10))).unwrap();

        // Broken JSON.
        expect_error(&mut client, "{not json", ErrorCode::Parse);
        // Valid JSON, not an object.
        expect_error(&mut client, "[1,2,3]", ErrorCode::BadRequest);
        // Missing version.
        expect_error(&mut client, r#"{"op":"stats"}"#, ErrorCode::BadRequest);
        // Wrong version.
        expect_error(&mut client, r#"{"v":99,"op":"stats"}"#, ErrorCode::BadRequest);
        // Unknown verb.
        expect_error(&mut client, r#"{"v":1,"op":"explode"}"#, ErrorCode::UnknownOp);
        // Numeric id: the u64-precision pin.
        expect_error(&mut client, r#"{"v":1,"op":"predict","id":7}"#, ErrorCode::BadRequest);
        // Unknown (string-coded) id.
        expect_error(&mut client, r#"{"v":1,"op":"predict","id":"999"}"#, ErrorCode::UnknownId);
        expect_error(&mut client, r#"{"v":1,"op":"retire","id":"999"}"#, ErrorCode::UnknownId);
        // Unknown tenant fingerprint.
        let plan_json = serde_json::to_string(&ds.plans[0].root).unwrap();
        expect_error(
            &mut client,
            &format!(r#"{{"v":1,"op":"admit","plan":{plan_json},"tenant":"00000000deadbeef"}}"#),
            ErrorCode::UnknownTenant,
        );
        // Non-hex tenant.
        expect_error(
            &mut client,
            &format!(r#"{{"v":1,"op":"admit","plan":{plan_json},"tenant":"xyz"}}"#),
            ErrorCode::BadRequest,
        );
        // Plan that is not a plan.
        expect_error(&mut client, r#"{"v":1,"op":"admit","plan":{"bogus":1}}"#, ErrorCode::InvalidPlan);
        // Nesting bomb: rejected by the depth guard, not a stack overflow.
        let bomb = format!(r#"{{"v":1,"op":"admit","plan":{}1{}}}"#, "[".repeat(600), "]".repeat(600));
        expect_error(&mut client, &bomb, ErrorCode::Parse);

        // The connection is still healthy: a real request round-trips.
        let (_, latency) = client.admit_predict(&ds.plans[0].root, false).expect("still serving");
        assert!(latency.is_finite());
    });
}

/// A structurally valid plan tree with a wrong child count must be
/// rejected as `invalid_plan` by pre-admission validation — the
/// `ProgramBuilder::admit` panic path must never fire.
#[test]
fn arity_violation_is_rejected_before_touching_the_stream() {
    let (ds, _) = fixture();
    with_server(ServeConfig::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        client.set_timeout(Some(Duration::from_secs(10))).unwrap();

        // Materialize has arity 1; give it zero children.
        let malformed = PlanNode::new(Operator::Materialize, vec![]);
        match client.admit(&malformed) {
            Err(ClientError::Server(e)) => {
                assert_eq!(e.code, ErrorCode::InvalidPlan);
                assert!(e.msg.contains("Materialize"), "diagnostic names the family: {}", e.msg);
            }
            other => panic!("expected invalid_plan, got {other:?}"),
        }
        // Same through the coalescing path.
        match client.admit_predict(&malformed, false) {
            Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::InvalidPlan),
            other => panic!("expected invalid_plan via admit_predict, got {other:?}"),
        }

        // Stream state is untouched: healthy traffic still works and
        // nothing is resident.
        let (_, latency) = client.admit_predict(&ds.plans[1].root, false).expect("healthy");
        assert!(latency.is_finite());
        let stats = client.stats().expect("stats");
        assert_eq!(stats.resident_plans, 0);
    });
}

/// Oversized lines: one `line_too_long` reply, then normal service on
/// the same connection (the framing layer discards to the newline).
#[test]
fn oversized_line_resyncs_the_connection() {
    let (ds, _) = fixture();
    let cfg = ServeConfig { max_line: 4096, ..ServeConfig::default() };
    with_server(cfg, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        client.set_timeout(Some(Duration::from_secs(10))).unwrap();

        let huge = format!(r#"{{"v":1,"op":"stats","pad":"{}"}}"#, "x".repeat(16_384));
        expect_error(&mut client, &huge, ErrorCode::LineTooLong);
        // Next request on the same connection parses fine.
        let (_, latency) = client.admit_predict(&ds.plans[2].root, false).expect("resynced");
        assert!(latency.is_finite());
    });
}

/// A client vanishing mid-request (partial line, no newline, socket
/// closed) must be a clean drop — and concurrent clients keep serving.
#[test]
fn mid_request_disconnect_does_not_disturb_other_clients() {
    let (ds, _) = fixture();
    with_server(ServeConfig::default(), |addr| {
        let mut healthy = Client::connect(addr).expect("healthy connect");
        healthy.set_timeout(Some(Duration::from_secs(10))).unwrap();
        let before = healthy.admit_predict(&ds.plans[0].root, false).expect("before").1;

        // Write half a request and slam the connection shut.
        for _ in 0..3 {
            let mut rude = std::net::TcpStream::connect(match addr {
                ServeAddr::Tcp(a) => a,
                #[cfg(unix)]
                _ => unreachable!("loopback test"),
            })
            .expect("rude connect");
            rude.write_all(br#"{"v":1,"op":"admit","plan":{"op":"#).expect("partial write");
            drop(rude); // no newline ever arrives
        }
        // Also: a full line then an abrupt close before reading the reply.
        let mut half = Client::connect(addr).expect("half connect");
        half.send_raw(r#"{"v":1,"op":"stats"}"#).expect("send");
        drop(half);

        // The healthy client still gets bit-identical service.
        let after = healthy.admit_predict(&ds.plans[0].root, false).expect("after").1;
        assert_eq!(before.to_bits(), after.to_bits(), "service disturbed by rude clients");
    });
}

/// PR 3/6 contract regression: a panicked (poisoned) run on the shared
/// resident executor must leave the daemon fully serviceable — the
/// accept loop takes new connections and predictions are unchanged.
#[test]
fn poisoned_executor_run_does_not_wedge_the_daemon() {
    let (ds, _) = fixture();
    with_server(ServeConfig { threads: 4, ..ServeConfig::default() }, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        client.set_timeout(Some(Duration::from_secs(10))).unwrap();
        let before = client.admit_predict(&ds.plans[3].root, false).expect("before").1;

        // Poison a run on the same process-wide pool the daemon uses.
        let poisoned = std::panic::catch_unwind(|| {
            qpp::nn::Executor::global().run(4, &|worker, _| {
                if worker == 2 {
                    panic!("injected poison");
                }
            });
        });
        assert!(poisoned.is_err(), "the injected panic must reach the caller");

        // Fresh connection (exercises the accept loop) + same bits.
        let mut fresh = Client::connect(addr).expect("post-poison connect");
        fresh.set_timeout(Some(Duration::from_secs(10))).unwrap();
        let after = fresh.admit_predict(&ds.plans[3].root, false).expect("after").1;
        assert_eq!(before.to_bits(), after.to_bits(), "daemon degraded after poisoned run");
    });
}

/// Empty lines are ignored; whitespace-only lines too. A request with
/// trailing whitespace still parses.
#[test]
fn blank_lines_are_tolerated() {
    with_server(ServeConfig::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        client.set_timeout(Some(Duration::from_secs(10))).unwrap();
        client.send_raw("").expect("blank");
        client.send_raw("   ").expect("spaces");
        client.send_raw(&proto::encode_request(&qpp::net::serve::Request::Stats)).expect("stats");
        match client.recv().expect("reply") {
            qpp::net::serve::Response::Stats(_) => {}
            other => panic!("expected stats, got {other:?}"),
        }
    });
}
