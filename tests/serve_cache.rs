//! Differential tests for the whole-plan prediction memo
//! (`qppnet::stream::PredictionCache`): a cache-on daemon must emit
//! reply lines **byte-identical** to a cache-off daemon for the same
//! request stream — random admit / retire / predict / admit_predict
//! interleavings, at 1 and 4 wavefront threads, over TCP loopback and
//! unix sockets, single- and multi-tenant, clamped and unclamped.
//!
//! Why byte-equality is the right bar: a memo hit replays an `f64`
//! produced by a bitwise-identical earlier run, and the wire encoder
//! prints shortest-round-trip `f64`s — so any divergence at all means
//! the memo returned a value a fresh run would not have produced
//! (a false positive, a stale entry surviving fingerprint rotation, or
//! id-allocation drift from the cache changing admission bookkeeping).
//!
//! Also here: the eviction-cap bound (a never-repeating plan stream
//! cannot grow the memo past its entry cap) and the zero-allocation
//! regression extended to the hit path (steady-state fast-path load
//! with the memo ON still allocates nothing — hits included).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use qpp::net::serve::proto::{self, Request, Response};
use qpp::net::serve::{Client, ServeAddr, ServeConfig, Server};
use qpp::net::{QppConfig, QppNet, ScratchPlan};
use qpp::plansim::prelude::*;
use rand::{Rng, SeedableRng};

/// Shared fixture: one dataset plus a clamped and an unclamped fitted
/// model. The extra epoch on the unclamped model makes the two
/// fingerprints differ, which the multi-tenant leg relies on.
fn fixture() -> &'static (Dataset, QppNet, QppNet) {
    static FIXTURE: OnceLock<(Dataset, QppNet, QppNet)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = Dataset::generate(Workload::TpcDs, 1.0, 20, 11);
        let train: Vec<&Plan> = ds.plans.iter().collect();
        let mut clamped = QppNet::new(
            QppConfig { epochs: 2, monotone_clamp: true, ..QppConfig::tiny() },
            &ds.catalog,
        );
        clamped.fit(&train);
        let mut unclamped = QppNet::new(
            QppConfig { epochs: 3, monotone_clamp: false, ..QppConfig::tiny() },
            &ds.catalog,
        );
        unclamped.fit(&train);
        (ds, clamped, unclamped)
    })
}

/// A raw line-level client over TCP or unix sockets: writes request
/// lines verbatim and returns reply lines verbatim, so replies can be
/// compared byte-for-byte across daemons.
struct RawClient {
    w: Box<dyn Write>,
    r: BufReader<Box<dyn Read>>,
}

impl RawClient {
    fn connect(addr: &ServeAddr) -> RawClient {
        match addr {
            ServeAddr::Tcp(a) => {
                let s = TcpStream::connect(a).expect("connect tcp");
                s.set_nodelay(true).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                RawClient { r: BufReader::new(Box::new(s.try_clone().unwrap())), w: Box::new(s) }
            }
            #[cfg(unix)]
            ServeAddr::Unix(p) => {
                let s = UnixStream::connect(p).expect("connect unix");
                s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                RawClient { r: BufReader::new(Box::new(s.try_clone().unwrap())), w: Box::new(s) }
            }
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.w.write_all(line.as_bytes()).expect("send");
        self.w.write_all(b"\n").expect("send nl");
        let mut reply = String::new();
        self.r.read_line(&mut reply).expect("reply");
        assert!(reply.ends_with('\n'), "unterminated reply to {line}");
        reply
    }
}

/// Wire id carried by an `admitted` or kept-`predicted` reply, if any.
fn reply_id(reply: &str) -> Option<u64> {
    match proto::decode_response(reply.trim_end()) {
        Ok(Response::Admitted { id }) => Some(id),
        Ok(Response::Predicted { id, .. }) => id,
        _ => None,
    }
}

/// One leg: drives `lines` (or, when `lines` is `None`, a seeded random
/// interleaving whose id-carrying ops are resolved against live
/// replies) through a fresh daemon. Returns the request lines sent, the
/// reply lines received, and the daemon's final stats.
fn run_leg(
    addr: &ServeAddr,
    cfg: ServeConfig,
    multi_tenant: bool,
    seed: u64,
    ops: usize,
    lines: Option<&[String]>,
) -> (Vec<String>, Vec<String>, proto::ServeStats) {
    let (ds, clamped_model, unclamped_model) = fixture();
    let mut server = Server::bind(addr, cfg).expect("bind");
    let fp_a = server.register(clamped_model);
    let fp_b = multi_tenant.then(|| server.register(unclamped_model));
    let addr = server.local_addr().clone();

    std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || server.run().expect("server run"));

        let mut raw = RawClient::connect(&addr);
        let mut requests: Vec<String> = Vec::new();
        let mut replies: Vec<String> = Vec::new();

        if let Some(lines) = lines {
            // Replay leg: the exact byte stream the first leg sent.
            for line in lines {
                replies.push(raw.roundtrip(line));
                requests.push(line.clone());
            }
        } else {
            // Generator leg: a seeded interleaving over a small plan
            // pool (repeats are the point — they are what the memo
            // serves). Wire ids for retire/predict come from live
            // replies; both daemons allocate ids in sequence, so the
            // replay leg sees the same ids if and only if the memo
            // leaves admission bookkeeping untouched.
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xCACE);
            let mut resident: Vec<u64> = Vec::new();
            let pool = 6usize.min(ds.plans.len());
            let mut send = |line: String,
                            requests: &mut Vec<String>,
                            replies: &mut Vec<String>|
             -> String {
                let reply = raw.roundtrip(&line);
                requests.push(line);
                replies.push(reply.clone());
                reply
            };
            for _ in 0..ops {
                let pick = rng.gen_range(0..pool);
                let plan = Box::new(ds.plans[pick].root.clone());
                let tenant = match (multi_tenant, rng.gen_range(0..3u32)) {
                    (true, 0) => Some(fp_a),
                    (true, 1) => fp_b,
                    _ => None,
                };
                match rng.gen_range(0..8u32) {
                    // Admit into residency (repeats allowed — CSE-heavy).
                    0 | 1 => {
                        let line = proto::encode_request(&Request::Admit { plan, tenant });
                        let reply = send(line, &mut requests, &mut replies);
                        resident.push(reply_id(&reply).expect("admit reply id"));
                    }
                    // Retire a random resident plan.
                    2 if !resident.is_empty() => {
                        let victim = resident.remove(rng.gen_range(0..resident.len()));
                        let line = proto::encode_request(&Request::Retire { id: victim });
                        send(line, &mut requests, &mut replies);
                    }
                    // Predict a random resident plan.
                    3 if !resident.is_empty() => {
                        let id = resident[rng.gen_range(0..resident.len())];
                        let line = proto::encode_request(&Request::Predict { id });
                        send(line, &mut requests, &mut replies);
                    }
                    // Kept one-shot: admits residency, reply carries id.
                    7 => {
                        let line = proto::encode_request(&Request::AdmitPredict {
                            plan,
                            keep: true,
                            tenant,
                        });
                        let reply = send(line, &mut requests, &mut replies);
                        resident.push(reply_id(&reply).expect("kept one-shot id"));
                    }
                    // One-shot admit_predict — the memo's main surface.
                    _ => {
                        let line = proto::encode_request(&Request::AdmitPredict {
                            plan,
                            keep: false,
                            tenant,
                        });
                        send(line, &mut requests, &mut replies);
                    }
                }
            }
            // Deterministic tail: each of three plans twice, so the
            // cache-on leg is guaranteed live memo hits regardless of
            // how the random phase went.
            for pick in 0..3usize.min(ds.plans.len()) {
                for _ in 0..2 {
                    let line = proto::encode_request(&Request::AdmitPredict {
                        plan: Box::new(ds.plans[pick].root.clone()),
                        keep: false,
                        tenant: multi_tenant.then_some(fp_a),
                    });
                    send(line, &mut requests, &mut replies);
                }
            }
        }

        let mut ctl = Client::connect(&addr).expect("control");
        let stats = match ctl.call(&Request::Stats).expect("stats") {
            Response::Stats(s) => s,
            other => panic!("wrong stats reply: {other:?}"),
        };
        ctl.shutdown().expect("shutdown");
        (requests, replies, stats)
    })
}

/// The differential itself: generate the interleaving against a
/// cache-on daemon, replay the identical byte stream against a
/// cache-off daemon, and demand byte-identical replies — plus memo
/// counters that move only on the cache-on side.
fn cache_on_replies_match_cache_off(
    mk_addr: &dyn Fn() -> ServeAddr,
    base: &ServeConfig,
    multi_tenant: bool,
    seed: u64,
    ops: usize,
) {
    let on_cfg = ServeConfig { cache: true, ..base.clone() };
    let (requests, on_replies, on_stats) =
        run_leg(&mk_addr(), on_cfg, multi_tenant, seed, ops, None);
    let off_cfg = ServeConfig { cache: false, ..base.clone() };
    let (_, off_replies, off_stats) =
        run_leg(&mk_addr(), off_cfg, multi_tenant, seed, ops, Some(&requests));

    assert_eq!(on_replies.len(), off_replies.len());
    for (i, (on, off)) in on_replies.iter().zip(&off_replies).enumerate() {
        assert_eq!(
            on, off,
            "seed={seed}: reply {i} diverged under the memo for request {}",
            requests[i]
        );
    }
    assert!(
        on_stats.cache_hits >= 3,
        "seed={seed}: the deterministic tail guarantees memo hits, saw {}",
        on_stats.cache_hits
    );
    assert!(on_stats.cache_misses > 0, "seed={seed}: first appearances must miss");
    assert_eq!(off_stats.cache_hits, 0, "disabled memo must not count hits");
    assert_eq!(off_stats.cache_misses, 0, "disabled memo must not count misses");
    assert_eq!(off_stats.cache_entries, 0, "disabled memo must not grow");
}

fn tcp() -> ServeAddr {
    ServeAddr::parse("127.0.0.1:0").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random interleavings at 1 thread over TCP, single-tenant, both
    /// clamp modes (the clamp flag feeds the whole-plan key, so the two
    /// models must memoize independently even within one proptest case).
    #[test]
    fn random_interleavings_are_memo_transparent(seed in any::<u64>()) {
        let cfg = ServeConfig { threads: 1, ..ServeConfig::default() };
        cache_on_replies_match_cache_off(&tcp, &cfg, false, seed, 28);
    }
}

/// 4 wavefront threads + 3 shards: the sharded surface routes probes
/// and inserts per shard; replies must still match cache-off exactly.
#[test]
fn t4_sharded_replies_are_memo_transparent() {
    for seed in [11u64, 12] {
        let cfg = ServeConfig { threads: 4, shards: 3, ..ServeConfig::default() };
        cache_on_replies_match_cache_off(&tcp, &cfg, false, seed, 30);
    }
}

/// Burst coalescing: with `burst > 1` one-shots flow through the
/// micro-batcher, where memo hits drop out of the wavefront run before
/// it happens — the surviving run's bits must be unaffected.
#[test]
fn coalesced_batches_are_memo_transparent() {
    let cfg = ServeConfig { burst: 4, burst_wait_us: 500, ..ServeConfig::default() };
    cache_on_replies_match_cache_off(&tcp, &cfg, false, 21, 30);
}

#[cfg(unix)]
#[test]
fn unix_socket_replies_are_memo_transparent() {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    let mk = || {
        let n = N.fetch_add(1, Ordering::Relaxed);
        ServeAddr::Unix(
            std::env::temp_dir().join(format!("qpp_serve_cache_{}_{n}.sock", std::process::id())),
        )
    };
    let cfg = ServeConfig { threads: 4, shards: 2, ..ServeConfig::default() };
    cache_on_replies_match_cache_off(&mk, &cfg, false, 31, 30);
}

/// Multi-tenant: two co-hosted models, requests routed by fingerprint
/// (and by default-tenant fallback). Each tenant's stream owns its own
/// memo keyed under that model's checkpoint fingerprint, so hits can
/// never leak predictions across tenants — byte-equality against the
/// cache-off daemon proves it.
#[test]
fn multi_tenant_replies_are_memo_transparent() {
    for seed in [41u64, 42] {
        cache_on_replies_match_cache_off(&tcp, &ServeConfig::default(), true, seed, 30);
    }
}

/// Eviction-cap bound at the stream API level: a never-repeating plan
/// stream (every plan's `est.rows` perturbed, which lands in the
/// content key) can never grow the memo past its entry cap; the
/// generational reset fires and counts, and nothing ever hits.
#[test]
fn never_repeating_stream_cannot_grow_memo_past_cap() {
    let (ds, model, _) = fixture();
    let mut builder = model.serve_stream();
    builder.set_prediction_cache_capacity(8);
    let mut scratch = ScratchPlan::new();
    for i in 0..100u32 {
        let mut root = ds.plans[i as usize % ds.plans.len()].root.clone();
        root.est.rows = 1_000.0 + f64::from(i);
        scratch.rebuild_from_tree(&root);
        let run = builder.predict_oneshot(&scratch);
        assert!(run.latency_ms.is_finite() && !run.cache_hit);
        let st = builder.stats();
        assert!(
            st.pred_cache_entries <= 8,
            "memo grew past its cap: {} entries after {} plans",
            st.pred_cache_entries,
            i + 1
        );
    }
    let st = builder.stats();
    assert_eq!(st.pred_cache_hits, 0, "all-distinct stream cannot hit");
    assert_eq!(st.pred_cache_misses, 100);
    assert!(st.pred_cache_evictions > 0, "the generational reset must have fired");
}

/// The zero-allocation regression, extended to the memo hit path: a
/// warmed connection cycling a fixed 8-plan mix with fast path AND
/// memo forced on must stay at zero steady-state allocations — and the
/// stats must show the memo actually served hits, so the alloc-free
/// claim covers the hit path itself, not just warmed misses.
#[test]
fn steady_state_memo_hit_path_is_allocation_free() {
    let (ds, model, _) = fixture();
    for (threads, conns) in [(1usize, 1usize), (4, 4)] {
        let cfg =
            ServeConfig { threads, fast_path: true, cache: true, ..ServeConfig::default() };
        let mut server = Server::bind(&tcp(), cfg).expect("bind");
        server.register(model);
        let addr = server.local_addr().clone();
        std::thread::scope(|scope| {
            let server = &server;
            scope.spawn(move || server.run().expect("server run"));
            std::thread::scope(|inner| {
                for c in 0..conns {
                    let addr = addr.clone();
                    inner.spawn(move || {
                        let mut client = Client::connect(&addr).expect("connect");
                        client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                        for i in 0..200usize {
                            let plan = &ds.plans[(c + i) % 8].root;
                            let (id, latency) =
                                client.admit_predict(plan, false).expect("predict");
                            assert!(id.is_none() && latency.is_finite());
                        }
                    });
                }
            });
            let mut ctl = Client::connect(&addr).expect("control");
            let stats = ctl.stats().expect("stats");
            assert_eq!(
                stats.fast_path_predicted,
                200 * conns as u64,
                "threads={threads}: every one-shot must take the fast path"
            );
            assert_eq!(
                stats.steady_allocs, 0,
                "threads={threads} conns={conns}: memo-on steady state allocated"
            );
            // The tenant stream (and so its memo) is shared across
            // connections and probed under the server lock: the 8-plan
            // mix misses exactly once per distinct plan, everything
            // else is a hit.
            assert_eq!(
                stats.cache_misses, 8,
                "threads={threads}: exactly one miss per distinct plan"
            );
            assert_eq!(
                stats.cache_hits,
                200 * conns as u64 - 8,
                "threads={threads}: every repeat must be a memo hit"
            );
            ctl.shutdown().expect("shutdown");
        });
    }
}
