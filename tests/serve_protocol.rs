//! Protocol round-trip property tests: `encode → decode` must be the
//! identity for every request/response message — including the
//! vendored-serde u64-precision caveat. The pinned choice (ROADMAP
//! standing constraint): **plan ids are string-coded** (decimal), model
//! fingerprints are hex strings, and *numeric* ids are rejected, so the
//! full `u64` range round-trips exactly even though JSON numbers travel
//! as `f64` (exact only below 2^53).

use std::sync::OnceLock;

use proptest::prelude::*;
use qpp::net::serve::proto::{
    self, decode_request, decode_response, encode_request, encode_response, ErrorCode, ErrorReply,
    Request, Response, ServeStats,
};
use qpp::plansim::prelude::*;

/// A pool of real plan trees (all shapes the generator produces) for
/// plan-carrying messages.
fn plan_pool() -> &'static Vec<PlanNode> {
    static POOL: OnceLock<Vec<PlanNode>> = OnceLock::new();
    POOL.get_or_init(|| {
        let h = Dataset::generate(Workload::TpcH, 1.0, 12, 3);
        let d = Dataset::generate(Workload::TpcDs, 1.0, 12, 4);
        h.plans.iter().chain(d.plans.iter()).map(|p| p.root.clone()).collect()
    })
}

fn roundtrip_request(req: &Request) {
    let line = encode_request(req);
    let back = decode_request(&line)
        .unwrap_or_else(|e| panic!("decode({line}) failed: [{}] {}", e.code.as_str(), e.msg));
    assert_eq!(&back, req, "request round trip changed the message: {line}");
}

fn roundtrip_response(resp: &Response) {
    let line = encode_response(resp);
    let back = decode_response(&line)
        .unwrap_or_else(|e| panic!("decode({line}) failed: [{}] {}", e.code.as_str(), e.msg));
    assert_eq!(&back, resp, "response round trip changed the message: {line}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Plan ids survive the wire across the FULL u64 range — the very
    /// values `f64` transport would corrupt (anything >= 2^53).
    #[test]
    fn ids_roundtrip_across_full_u64_range(id in any::<u64>()) {
        roundtrip_request(&Request::Retire { id });
        roundtrip_request(&Request::Predict { id });
        roundtrip_response(&Response::Admitted { id });
        roundtrip_response(&Response::Retired { id });
    }

    /// Tenant fingerprints (hex-coded) survive the full u64 range too.
    #[test]
    fn fingerprints_roundtrip_across_full_u64_range(fp in any::<u64>(), pick in any::<usize>()) {
        let pool = plan_pool();
        let plan = Box::new(pool[pick % pool.len()].clone());
        roundtrip_request(&Request::Admit { plan: plan.clone(), tenant: Some(fp) });
        roundtrip_request(&Request::AdmitPredict { plan, keep: true, tenant: Some(fp) });
    }

    /// Every plan shape the simulator produces round-trips inside
    /// admit/admit_predict, with and without tenant/keep flags.
    #[test]
    fn plan_carrying_requests_roundtrip(pick in any::<usize>(), keep in any::<bool>()) {
        let pool = plan_pool();
        let plan = Box::new(pool[pick % pool.len()].clone());
        roundtrip_request(&Request::Admit { plan: plan.clone(), tenant: None });
        roundtrip_request(&Request::AdmitPredict { plan, keep, tenant: None });
    }

    /// Predictions round-trip bit-exactly: the vendored formatter prints
    /// shortest-round-trip `f64`, so any finite latency (including
    /// subnormals and negative zero) comes back with identical bits.
    #[test]
    fn predicted_latency_roundtrips_bit_exactly(bits in any::<u64>(), id in any::<u64>(), keep in any::<bool>()) {
        let latency_ms = f64::from_bits(bits);
        prop_assume!(latency_ms.is_finite());
        let resp = Response::Predicted { id: keep.then_some(id), latency_ms };
        let line = encode_response(&resp);
        match decode_response(&line).expect("decode") {
            Response::Predicted { id: id2, latency_ms: l2 } => {
                prop_assert_eq!(id2, keep.then_some(id));
                prop_assert_eq!(l2.to_bits(), latency_ms.to_bits(), "f64 bits changed: {}", line);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    /// Stats counters round-trip exactly while below the 2^53 f64 bound
    /// (they are plain JSON numbers; the decoder enforces the bound).
    #[test]
    fn stats_roundtrip_below_exact_bound(
        a in 0u64..(1 << 53), b in 0u64..(1 << 53), c in 0u64..(1 << 53),
        d in 0u64..(1 << 53), e in 0u64..(1 << 53), f in 0u64..(1 << 53),
    ) {
        let stats = ServeStats {
            connections: a, requests: b, errors: c,
            admitted: d, retired: e, predicted: f,
            batches: a % 1000, batched_requests: b % 1000, tenants: c % 16,
            resident_plans: d % 10_000, logical_nodes: e % 100_000, shared_rows: f % 100_000,
            fast_path_predicted: f % 100_000, parse_ns: a, featurize_ns: b,
            run_ns: c, serialize_ns: d, steady_allocs: e % 1000,
            cache_hits: a % 100_000, cache_misses: b % 100_000,
            cache_evictions: c % 100_000, cache_entries: d % 100_000,
            cache_hit_ns: e,
        };
        roundtrip_response(&Response::Stats(stats));
    }

    /// Error replies round-trip for every code with arbitrary
    /// (JSON-escaping-hostile) messages.
    #[test]
    fn error_replies_roundtrip(which in 0usize..8, msg in any::<u64>()) {
        let code = ErrorCode::ALL[which];
        // Exercise escaping: quotes, backslashes, newlines, unicode.
        let msg = format!("q\"uo\\te\n\tnl-{msg}-✓");
        roundtrip_response(&Response::Error(ErrorReply::new(code, msg)));
    }
}

/// The precision pin itself, stated as plainly as possible: a numeric
/// id — even a small, exactly-representable one — is rejected with a
/// diagnostic citing the 2^53 bound; ids above 2^53 work fine as
/// strings.
#[test]
fn numeric_ids_are_rejected_string_ids_are_exact() {
    // Numeric id: rejected.
    let err = decode_request(r#"{"v":1,"op":"predict","id":7}"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::BadRequest);
    assert!(err.msg.contains("2^53"), "must cite the precision bound: {}", err.msg);

    // String id above 2^53: exact.
    let big = (1u64 << 53) + 1; // not representable as f64
    let line = format!(r#"{{"v":1,"op":"predict","id":"{big}"}}"#);
    match decode_request(&line).expect("string-coded big id decodes") {
        Request::Predict { id } => assert_eq!(id, big),
        other => panic!("wrong variant: {other:?}"),
    }

    // And the absolute extremes.
    for id in [0u64, u64::MAX] {
        let line = encode_request(&Request::Predict { id });
        match decode_request(&line).expect("decode") {
            Request::Predict { id: got } => assert_eq!(got, id),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}

/// Simpler fixed cases pinning the wire shapes (so a refactor that
/// changes field names fails loudly here, not in a live client).
#[test]
fn wire_shapes_are_stable() {
    assert_eq!(encode_request(&Request::Stats), r#"{"op":"stats","v":1}"#);
    assert_eq!(encode_request(&Request::Shutdown), r#"{"op":"shutdown","v":1}"#);
    assert_eq!(
        encode_request(&Request::Predict { id: 17 }),
        r#"{"id":"17","op":"predict","v":1}"#
    );
    assert_eq!(encode_response(&Response::Bye), r#"{"ok":true,"op":"shutdown","v":1}"#);
    // The one-shot predict reply: this exact shape (alphabetical field
    // order, integral f64 printed as integer) is what the serve fast
    // path hand-rolls, so it is pinned here against the oracle encoder.
    assert_eq!(
        encode_response(&Response::Predicted { id: None, latency_ms: 12.5 }),
        r#"{"latency_ms":12.5,"ok":true,"op":"predict","v":1}"#
    );
    assert_eq!(
        encode_response(&Response::Predicted { id: None, latency_ms: 3.0 }),
        r#"{"latency_ms":3,"ok":true,"op":"predict","v":1}"#
    );
    assert_eq!(
        encode_response(&Response::Error(ErrorReply::new(ErrorCode::UnknownOp, "nope"))),
        r#"{"error":{"code":"unknown_op","msg":"nope"},"ok":false,"v":1}"#
    );
    // Fingerprints are zero-padded 16-digit hex.
    let pool = plan_pool();
    let line = encode_request(&Request::AdmitPredict {
        plan: Box::new(pool[0].clone()),
        keep: false,
        tenant: Some(0xbeef),
    });
    assert!(line.contains(r#""tenant":"000000000000beef""#), "hex padding changed: {line}");
    assert_eq!(proto::decode_fingerprint(&proto::encode_fingerprint(0xbeef)).unwrap(), 0xbeef);
}

/// Requests and responses are line-delimited: every encoded message is
/// newline-free by construction (JSON string escaping), so framing can
/// never split a message.
#[test]
fn encoded_messages_never_contain_newlines() {
    let nasty = ErrorReply::new(ErrorCode::Internal, "line1\nline2\rline3");
    let line = encode_response(&Response::Error(nasty.clone()));
    assert!(!line.contains('\n') && !line.contains('\r'), "framing broken: {line}");
    match decode_response(&line).expect("decode") {
        Response::Error(e) => assert_eq!(e, nasty),
        other => panic!("wrong variant: {other:?}"),
    }
}
