//! Fast smoke test: the cheapest end-to-end pipeline that still exercises
//! generate → fit → predict. Runs in a couple of seconds so CI catches
//! gross regressions (build breakage, divergence, non-determinism) without
//! waiting for the full suites.

use qpp::net::{QppConfig, QppNet};
use qpp::plansim::prelude::*;
use std::time::Instant;

#[test]
fn generate_train_predict_round_trip_is_fast_and_deterministic() {
    let start = Instant::now();

    let run = || {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 40, 2024);
        let split = ds.paper_split(0);
        let mut model = QppNet::new(
            QppConfig { epochs: 3, ..QppConfig::tiny() },
            &ds.catalog,
        );
        model.fit(&ds.select(&split.train));
        let test = ds.select(&split.test);
        let preds: Vec<f64> = test.iter().map(|p| model.predict(p)).collect();
        assert_eq!(preds.len(), split.test.len());
        for &p in &preds {
            assert!(p.is_finite() && p >= 0.0, "non-physical prediction {p}");
        }
        preds
    };

    // Same seed, same pipeline => bit-identical predictions.
    assert_eq!(run(), run());

    // Generous bound (debug builds on loaded CI); typical release runtime
    // is well under a second.
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs() < 60,
        "smoke pipeline took {elapsed:?}; something regressed badly"
    );
}
