//! Differential tests for the resident executor and the sharded serving
//! path: random interleavings of concurrent predicts with admits/retires
//! across `ShardedStream` shards must be **bit-identical** to sequential
//! execution through a single `ProgramBuilder` — at 1/2/4/8 threads,
//! unclamped and under the structural envelope — plus two pool-lifecycle
//! regressions: a worker panic must poison the run (original payload on
//! the caller, resident threads and the global pool intact afterwards),
//! and an idle pool must park rather than spin.
//!
//! The sharded bit-identity argument composes three facts:
//!
//! 1. each shard is a complete wavefront program executed *sequentially*
//!    on whichever resident worker it is dealt to, so per-shard bits are
//!    the single-threaded bits by construction;
//! 2. a `ProgramBuilder`'s predictions are independent of which other
//!    plans are resident (row-invariant kernels, lossless cache keys —
//!    the `stream_differential` contract), so partitioning the resident
//!    set across shards cannot move any plan's bits;
//! 3. shard routing is a pure function of plan content, so the partition
//!    itself is deterministic.
//!
//! CI runs this suite in release mode as well: the optimized build
//! dispatches the AVX2+FMA microkernels, which is where the
//! row-invariance half of the argument has teeth.

use proptest::prelude::*;
use qpp::net::config::{TargetCodec, TargetTransform};
use qpp::net::tree::fit_ratio_caps;
use qpp::net::{
    MicroBatcher, PlanId, PlanProgram, ProgramBuilder, QppConfig, ShardedStream, UnitSet,
};
use qpp::nn::Executor;
use qpp::plansim::features::{Featurizer, Whitener};
use qpp::plansim::prelude::*;
use rand::{Rng, SeedableRng};

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Drives one random admit/retire/predict interleaving through a
/// `ShardedStream` and a reference single `ProgramBuilder` in lockstep;
/// at every predict point the sharded path (executed concurrently on the
/// resident pool) must match the single builder bitwise at 1/2/4/8
/// threads.
fn sharded_churn_matches_single_builder(workload: Workload, seed: u64, clamped: bool) {
    let ds = Dataset::generate(workload, 1.0, 20, seed);
    let fz = Featurizer::new(&ds.catalog);
    let wh = Whitener::fit(&fz, ds.plans.iter());
    let codec = TargetCodec::fit(TargetTransform::Log1p, ds.plans.iter().map(|p| p.latency_ms()));
    let caps = fit_ratio_caps(ds.plans.iter(), 2.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD1FF);
    let units = UnitSet::new(&QppConfig::tiny(), &fz, &mut rng);
    let caps_opt = clamped.then_some(&caps);

    let shards = 2 + (seed as usize % 2); // 2 or 3 shards
    let mut sharded = ShardedStream::new(&fz, &wh, &units, &codec, caps_opt, shards, seed);
    let mut single = ProgramBuilder::new(&fz, &wh, &units, &codec, caps_opt);
    // Parallel id handles: (sharded id, single-builder id).
    let mut resident: Vec<(PlanId, PlanId)> = Vec::new();
    let mut op_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5EED5);

    for _ in 0..24 {
        let action: u32 = op_rng.gen_range(0..4);
        match action {
            // Admit a random plan into both (repeats deliberately allowed
            // — identical plans route to one shard and CSE there).
            0 => {
                let pick = op_rng.gen_range(0..ds.plans.len());
                let root = &ds.plans[pick].root;
                resident.push((sharded.admit(root), single.admit(root)));
            }
            // Admit a small batch through the parallel admission path.
            1 => {
                let roots: Vec<&PlanNode> = (0..op_rng.gen_range(1..4))
                    .map(|_| &ds.plans[op_rng.gen_range(0..ds.plans.len())].root)
                    .collect();
                let sharded_ids = sharded.admit_batch(&roots, 4);
                for (root, sid) in roots.iter().zip(sharded_ids) {
                    resident.push((sid, single.admit(root)));
                }
            }
            // Retire a random resident plan from both.
            2 if !resident.is_empty() => {
                let victim = op_rng.gen_range(0..resident.len());
                let (sid, bid) = resident.remove(victim);
                sharded.retire(sid);
                single.retire(bid);
            }
            // Concurrent predict across shards vs sequential single
            // builder, at every thread count.
            _ => {
                let want = single.predict_roots();
                for threads in [1usize, 2, 4, 8] {
                    let got = sharded.predict_roots_threaded(threads);
                    assert_eq!(
                        bits(&got),
                        bits(&want),
                        "{} resident plans, {shards} shards, {threads} threads, \
                         clamped={clamped}: sharded diverged from single builder",
                        resident.len()
                    );
                }
            }
        }
    }
    // Final checkpoint: batch view, per-plan roots and per-operator rows.
    assert_eq!(sharded.len(), single.len());
    assert_eq!(bits(&sharded.predict_roots_threaded(4)), bits(&single.predict_roots()));
    for &(sid, bid) in &resident {
        assert_eq!(sharded.predict_root(sid).to_bits(), single.predict_root(bid).to_bits());
        assert_eq!(bits(&sharded.predict_all(sid)), bits(&single.predict_all(bid)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random TPC-H churn across shards, unclamped.
    #[test]
    fn tpch_sharded_churn_is_bit_identical(seed in 0u64..10_000) {
        sharded_churn_matches_single_builder(Workload::TpcH, seed, false);
    }

    /// Random TPC-DS churn (full operator vocabulary, template-heavy —
    /// the CSE-rich case), unclamped.
    #[test]
    fn tpcds_sharded_churn_is_bit_identical(seed in 0u64..10_000) {
        sharded_churn_matches_single_builder(Workload::TpcDs, seed, false);
    }

    /// Random TPC-H churn under the structural envelope.
    #[test]
    fn tpch_sharded_clamped_churn_is_bit_identical(seed in 0u64..10_000) {
        sharded_churn_matches_single_builder(Workload::TpcH, seed, true);
    }

    /// Random TPC-DS churn under the structural envelope.
    #[test]
    fn tpcds_sharded_clamped_churn_is_bit_identical(seed in 0u64..10_000) {
        sharded_churn_matches_single_builder(Workload::TpcDs, seed, true);
    }
}

/// The micro-batching front door must be accuracy-free: a coalesced
/// flush of W concurrent requests returns exactly the bits each request
/// would get served alone, with plans resident or retired per mode.
#[test]
fn microbatch_flush_is_bit_identical_to_serving_each_request_alone() {
    let ds = Dataset::generate(Workload::TpcDs, 1.0, 24, 7);
    let fz = Featurizer::new(&ds.catalog);
    let wh = Whitener::fit(&fz, ds.plans.iter());
    let codec = TargetCodec::fit(TargetTransform::Log1p, ds.plans.iter().map(|p| p.latency_ms()));
    let mut rng = rand::rngs::StdRng::seed_from_u64(70);
    let units = UnitSet::new(&QppConfig::tiny(), &fz, &mut rng);

    let mut stream = ShardedStream::new(&fz, &wh, &units, &codec, None, 3, 0);
    let mut front = MicroBatcher::new();
    for p in ds.plans.iter().take(16) {
        front.submit(&p.root);
    }
    let batched = front.flush(&mut stream, 4);
    assert!(stream.is_empty(), "one-shot requests must retire after the flush");
    for (p, got) in ds.plans.iter().take(16).zip(&batched) {
        let mut alone = PlanProgram::compile(&fz, &wh, &units, &[&p.root]);
        let want = alone.predict_roots(&units, &codec);
        assert_eq!(got.to_bits(), want[0].to_bits(), "batched bits diverge for plan alone");
    }
    let stats = front.stats();
    assert_eq!((stats.batches, stats.requests), (1, 16));
}

/// Worker-panic regression for the parked pool (mirror of the scoped
/// executor's deadlock test): a shape mismatch that fires *inside
/// resident worker threads* must poison the run — original payload
/// re-raised on the caller — and must leave the process-wide pool
/// serviceable: the same workers run the next 4-thread predict, whose
/// bits still match single-threaded execution.
#[test]
fn worker_panic_poisons_run_and_global_pool_survives() {
    let ds = Dataset::generate(Workload::TpcH, 1.0, 16, 5);
    let fz = Featurizer::new(&ds.catalog);
    let wh = Whitener::fit(&fz, ds.plans.iter());
    let codec = TargetCodec::fit(TargetTransform::Log1p, ds.plans.iter().map(|p| p.latency_ms()));
    let mut rng = rand::rngs::StdRng::seed_from_u64(50);
    let units = UnitSet::new(&QppConfig::tiny(), &fz, &mut rng);
    let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
    let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);

    // A unit set with the same output width (the cheap width check
    // passes) but different per-family input dims: the shape assert fires
    // inside the resident workers mid-wavefront.
    let other = Dataset::generate(Workload::TpcDs, 1.0, 8, 3);
    let fz2 = Featurizer::new(&other.catalog);
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(9);
    let units2 = UnitSet::new(&QppConfig::tiny(), &fz2, &mut rng2);
    assert_eq!(units2.out_size(), units.out_size(), "width check must pass");

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = program.predict_roots_threaded(&units2, &codec, 4);
    }));
    let payload = result.expect_err("the worker panic must reach the caller");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic carries its message");
    assert!(
        msg.contains("matmul dimension mismatch"),
        "caller observed `{msg}` instead of the shape assert"
    );

    // The resident pool survived the poisoned run: a fresh compile (the
    // poisoned program's buffers are in an undefined-but-memory-safe
    // state) predicts on 4 workers with single-thread bits.
    let mut fresh = PlanProgram::compile(&fz, &wh, &units, &roots);
    let want = fresh.predict_roots(&units, &codec);
    let got = fresh.predict_roots_threaded(&units, &codec, 4);
    assert_eq!(bits(&got), bits(&want), "global pool unusable after a poisoned run");
}

/// An idle pool must park, not spin: after a run drains, every resident
/// worker parks once and the park/unpark counters go *flat* — a spinning
/// worker would keep re-parking or burning unparks and the counters
/// would never stabilize.
#[test]
fn idle_pool_parks_and_does_not_spin() {
    let exec = Executor::new(2);
    exec.run(3, &|_, _| {});
    // Wait (bounded) for the counters to stabilize: both workers back on
    // the condvar, at least one park each recorded.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let settled = loop {
        let s = exec.stats();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let again = exec.stats();
        if s.parks >= 2 && (again.parks, again.unparks) == (s.parks, s.unparks) {
            break s;
        }
        assert!(std::time::Instant::now() < deadline, "pool never settled: {again}");
    };
    // The pool sits idle: across a much longer window the counters must
    // stay exactly where they settled.
    std::thread::sleep(std::time::Duration::from_millis(80));
    let after = exec.stats();
    assert_eq!(settled.parks, after.parks, "idle workers re-parked (spinning)");
    assert_eq!(settled.unparks, after.unparks, "idle workers woke without a job");
    assert_eq!(settled.runs, after.runs);
}
