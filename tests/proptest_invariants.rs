//! Property-based tests on cross-crate invariants.
//!
//! Complements the per-module proptest suites (matrix kernels,
//! activations) with workspace-level properties: simulator physics,
//! metric axioms, codec round-trips and schedule bounds.

use proptest::prelude::*;
use qpp::net::config::{TargetCodec, TargetTransform};
use qpp::net::LrSchedule;
use qpp::plansim::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Inclusive latencies are monotone along every plan tree, for any
    /// workload seed: a parent can never finish before its slowest child.
    #[test]
    fn latencies_are_inclusive_for_any_seed(seed in 0u64..500) {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 4, seed);
        for p in &ds.plans {
            let mut violations = 0usize;
            p.root.visit_postorder(&mut |n| {
                let child_sum: f64 = n.children.iter().map(|c| c.actual.latency_ms).sum();
                if n.actual.latency_ms < child_sum || n.actual.self_latency_ms < 0.0 {
                    violations += 1;
                }
            });
            prop_assert_eq!(violations, 0);
        }
    }

    /// Higher multiprogramming levels never speed a query up
    /// (interference factors are ≥ 1 and work_mem only shrinks).
    #[test]
    fn load_never_speeds_queries_up(seed in 0u64..200, mpl in 1.0f64..16.0) {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 1, seed);
        let cat = &ds.catalog;
        let ex = qpp::plansim::executor::Executor::new(cat);
        let mut isolated = ds.plans[0].root.clone();
        let mut loaded = ds.plans[0].root.clone();
        use rand::SeedableRng;
        let t1 = ex.run_with_load(&mut isolated, 1.0, &mut rand::rngs::StdRng::seed_from_u64(9));
        let t2 = ex.run_with_load(&mut loaded, mpl, &mut rand::rngs::StdRng::seed_from_u64(9));
        prop_assert!(t2 >= t1, "mpl {mpl}: {t2} < isolated {t1}");
    }

    /// Structural signatures depend only on structure: re-executing a plan
    /// (fresh noise) never changes its signature or equivalence class.
    #[test]
    fn signatures_survive_re_execution(seed in 0u64..200) {
        let ds = Dataset::generate(Workload::TpcDs, 1.0, 3, seed);
        let cat = &ds.catalog;
        let ex = qpp::plansim::executor::Executor::new(cat);
        for p in &ds.plans {
            let sig = p.signature();
            let mut rerun = p.root.clone();
            use rand::SeedableRng;
            ex.run(&mut rerun, &mut rand::rngs::StdRng::seed_from_u64(seed ^ 0xFF));
            prop_assert_eq!(rerun.signature(), sig);
        }
    }

    /// Target codecs round-trip any non-negative latency to within f32
    /// precision, after fitting on arbitrary samples.
    #[test]
    fn codec_round_trips(
        latencies in prop::collection::vec(0.0f64..1e8, 1..20),
        probe in 0.0f64..1e8,
    ) {
        for transform in [TargetTransform::Log1p, TargetTransform::Raw] {
            let codec = TargetCodec::fit(transform, latencies.iter().copied());
            let back = codec.decode(codec.encode(probe));
            // f32 precision: relative for Log1p, absolute-ish for Raw.
            let tol = match transform {
                TargetTransform::Log1p => 1e-4 * (1.0 + probe),
                TargetTransform::Raw => 1e-2 * (1.0 + probe.abs()),
            };
            prop_assert!((back - probe).abs() <= tol,
                "{transform:?}: {probe} -> {back}");
        }
    }

    /// Metric axioms for arbitrary prediction vectors: R(q) ≥ 1, buckets
    /// partition the set, MAE/RMSE non-negative with RMSE ≥ MAE.
    #[test]
    fn metric_axioms(
        pairs in prop::collection::vec((1.0f64..1e7, 0.0f64..1e7), 1..40),
    ) {
        let actual: Vec<f64> = pairs.iter().map(|(a, _)| *a).collect();
        let predicted: Vec<f64> = pairs.iter().map(|(_, p)| *p).collect();
        let m = qpp::net::evaluate(&actual, &predicted);
        prop_assert!(m.mean_r >= 1.0);
        prop_assert!(m.median_r >= 1.0);
        prop_assert!(m.max_r >= m.p99_r && m.p99_r >= m.p90_r && m.p90_r >= m.median_r);
        prop_assert!((m.r_le_15 + m.r_15_to_2 + m.r_ge_2 - 1.0).abs() < 1e-9);
        prop_assert!(m.mae_ms >= 0.0);
        prop_assert!(m.rmse_ms >= m.mae_ms - 1e-9);
    }

    /// Learning-rate schedules stay within (0, base] for every epoch.
    #[test]
    fn schedules_stay_bounded(
        base in 1e-5f32..1.0,
        epochs in 1usize..500,
        every in 1usize..100,
        gamma in 0.1f32..1.0,
        min_frac in 0.01f32..1.0,
    ) {
        for schedule in [
            LrSchedule::Constant,
            LrSchedule::StepDecay { every, gamma },
            LrSchedule::Cosine { min_frac },
        ] {
            for epoch in [0, epochs / 2, epochs - 1] {
                let lr = schedule.lr_at(base, epoch, epochs);
                prop_assert!(lr > 0.0 && lr <= base * 1.0001,
                    "{schedule:?} epoch {epoch}: {lr} vs base {base}");
            }
        }
    }

    /// The flat plan summary is a total function of the plan: finite for
    /// every generated plan, with family counts matching the node count.
    #[test]
    fn flat_features_are_total(seed in 0u64..200) {
        let ds = Dataset::generate(Workload::TpcDs, 1.0, 3, seed);
        for p in &ds.plans {
            let v = qpp::ablation::flat::flat_features(p);
            prop_assert!(v.iter().all(|x| x.is_finite()));
            let fam: f32 = v[..8].iter().sum();
            prop_assert_eq!(fam as usize, p.node_count());
        }
    }
}
