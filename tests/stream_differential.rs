//! Differential tests for the incremental serving engine: random
//! admit/retire/predict interleavings through `ProgramBuilder` must
//! produce predictions **bit-identical** to a fresh `PlanProgram::compile`
//! of the same resident set — at 1 and 4 worker threads, unclamped and
//! under the structural envelope.
//!
//! This is a stronger contract than the batch engine's cross-engine
//! agreement (`1e-5` relative vs `Classes`): the incremental program
//! shares the batch engine's kernels exactly, and three facts make the
//! re-chunked, row-recycled, CSE-shared layout bit-transparent:
//!
//! 1. the fused gemm kernel is row-invariant (a row's bits do not depend
//!    on its chunk, slot, or batch size — property-tested in `qpp_nn`);
//! 2. feature-cache and CSE keys are lossless content encodings, so a hit
//!    is bit-identical to recomputation;
//! 3. heights still run strictly ascending, so data dependencies are
//!    untouched by incremental maintenance.
//!
//! CI runs this suite in release mode as well: the optimized build
//! dispatches the AVX2+FMA microkernel, which is exactly where the
//! row-invariance half of the argument has teeth.

use proptest::prelude::*;
use qpp::net::config::{TargetCodec, TargetTransform};
use qpp::net::tree::fit_ratio_caps;
use qpp::net::{PlanId, PlanProgram, ProgramBuilder, QppConfig, QppNet, UnitSet};
use qpp::plansim::features::{Featurizer, Whitener};
use qpp::plansim::prelude::*;
use rand::{Rng, SeedableRng};

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Drives one random admit/retire/predict interleaving and, at every
/// predict point, checks the builder against a fresh compile of exactly
/// the resident set (in admission order) — bitwise, at 1 and 4 threads.
fn churn_matches_fresh_compile(workload: Workload, seed: u64, clamped: bool) {
    let ds = Dataset::generate(workload, 1.0, 20, seed);
    let fz = Featurizer::new(&ds.catalog);
    let wh = Whitener::fit(&fz, ds.plans.iter());
    let codec = TargetCodec::fit(TargetTransform::Log1p, ds.plans.iter().map(|p| p.latency_ms()));
    let caps = fit_ratio_caps(ds.plans.iter(), 2.0);
    // Untrained (randomly initialized) units exercise the full numeric
    // range; training only moves weights, never the data flow.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD1FF);
    let units = UnitSet::new(&QppConfig::tiny(), &fz, &mut rng);
    let caps_opt = clamped.then_some(&caps);

    let mut builder = ProgramBuilder::new(&fz, &wh, &units, &codec, caps_opt);
    // The reference resident set, in admission order (ids parallel).
    let mut resident: Vec<(PlanId, usize)> = Vec::new();
    let mut op_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5EED5);

    for _ in 0..24 {
        let action: u32 = op_rng.gen_range(0..3);
        match action {
            // Admit a random plan from the pool (repeats deliberately
            // allowed — they are the CSE-heavy case).
            0 => {
                let pick = op_rng.gen_range(0..ds.plans.len());
                let id = builder.admit(&ds.plans[pick].root);
                resident.push((id, pick));
            }
            // Retire a random resident plan.
            1 if !resident.is_empty() => {
                let victim = op_rng.gen_range(0..resident.len());
                let (id, _) = resident.remove(victim);
                builder.retire(id);
            }
            // Predict and differentiate against a fresh compile.
            _ => {
                let plans: Vec<&Plan> = resident.iter().map(|&(_, p)| &ds.plans[p]).collect();
                let roots: Vec<&PlanNode> = plans.iter().map(|p| &p.root).collect();
                let mut fresh = PlanProgram::compile(&fz, &wh, &units, &roots);
                for threads in [1usize, 4] {
                    let want = match caps_opt {
                        Some(caps) => {
                            fresh.predict_roots_clamped_threaded(&units, &codec, caps, threads)
                        }
                        None => fresh.predict_roots_threaded(&units, &codec, threads),
                    };
                    let got = builder.predict_roots_threaded(threads);
                    assert_eq!(
                        bits(&got),
                        bits(&want),
                        "{} resident plans, {threads} threads, clamped={clamped}: \
                         incremental diverged from fresh compile",
                        resident.len()
                    );
                }
            }
        }
    }
    // Final checkpoint regardless of where the op walk ended, including
    // the per-plan view.
    let plans: Vec<&Plan> = resident.iter().map(|&(_, p)| &ds.plans[p]).collect();
    let roots: Vec<&PlanNode> = plans.iter().map(|p| &p.root).collect();
    let mut fresh = PlanProgram::compile(&fz, &wh, &units, &roots);
    let want_all = match caps_opt {
        Some(caps) => fresh.predict_all_clamped(&units, &codec, caps),
        None => fresh.predict_all(&units, &codec),
    };
    for (i, &(id, _)) in resident.iter().enumerate() {
        assert_eq!(
            bits(&builder.predict_all(id)),
            bits(&want_all[i]),
            "plan {i}: per-operator predictions diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random TPC-H churn, unclamped.
    #[test]
    fn tpch_churn_is_bit_identical_to_fresh_compile(seed in 0u64..10_000) {
        churn_matches_fresh_compile(Workload::TpcH, seed, false);
    }

    /// Random TPC-DS churn (full operator vocabulary, template-heavy —
    /// the CSE-rich case), unclamped.
    #[test]
    fn tpcds_churn_is_bit_identical_to_fresh_compile(seed in 0u64..10_000) {
        churn_matches_fresh_compile(Workload::TpcDs, seed, false);
    }

    /// Random TPC-H churn under the structural envelope.
    #[test]
    fn tpch_clamped_churn_is_bit_identical(seed in 0u64..10_000) {
        churn_matches_fresh_compile(Workload::TpcH, seed, true);
    }

    /// Random TPC-DS churn under the structural envelope.
    #[test]
    fn tpcds_clamped_churn_is_bit_identical(seed in 0u64..10_000) {
        churn_matches_fresh_compile(Workload::TpcDs, seed, true);
    }
}

/// The deployed facade: `QppNet::serve_stream` (model-configured
/// clamping) agrees bitwise with `compile_program` + `predict_compiled`
/// on the same resident set, through admissions AND retirements.
#[test]
fn facade_stream_matches_compiled_program_through_churn() {
    let ds = Dataset::generate(Workload::TpcDs, 1.0, 40, 99);
    let mut model = QppNet::new(QppConfig { epochs: 4, ..QppConfig::tiny() }, &ds.catalog);
    model.fit(&ds.plans.iter().take(30).collect::<Vec<_>>());

    let mut stream = model.serve_stream();
    let mut resident: Vec<(PlanId, usize)> = Vec::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
    for round in 0..30 {
        if resident.len() > 6 && rng.gen_range(0..2) == 1 {
            let (id, _) = resident.remove(rng.gen_range(0..resident.len()));
            stream.retire(id);
        } else {
            let pick = rng.gen_range(0..ds.plans.len());
            resident.push((stream.admit(&ds.plans[pick].root), pick));
        }
        let streamed = stream.predict_roots();
        let plans: Vec<&Plan> = resident.iter().map(|&(_, p)| &ds.plans[p]).collect();
        // The builder and the compiled program both borrow the model
        // immutably; only a refit is excluded while the stream is live.
        let mut program = model.compile_program(&plans);
        assert_eq!(
            bits(&streamed),
            bits(&model.predict_compiled(&mut program)),
            "round {round}: facade stream diverged from compiled batch"
        );
    }
}
