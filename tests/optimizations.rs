//! Integration tests for the §5.1 training optimizations: all four modes
//! must be *numerically equivalent* (same losses, same resulting models)
//! and differ only in arrangement of computation.

use qpp::net::{OptMode, QppConfig, QppNet};
use qpp::plansim::prelude::*;

fn fit_with_mode(ds: &Dataset, mode: OptMode) -> (f64, Vec<f64>) {
    let cfg = QppConfig {
        epochs: 2,
        batch_size: 16,
        opt_mode: mode,
        momentum: 0.0,
        ..QppConfig::tiny()
    };
    let plans = ds.select(&(0..ds.len()).collect::<Vec<_>>());
    let mut model = QppNet::new(cfg, &ds.catalog);
    let history = model.fit(&plans);
    (history.train_loss[0], model.predict_batch(&plans))
}

#[test]
fn opt_modes_agree_on_tpcds() {
    // TPC-DS has the most heterogeneous plan structures — the strongest
    // test of equivalence-class handling.
    let ds = Dataset::generate(Workload::TpcDs, 1.0, 24, 77);
    let (base_loss, base_preds) = fit_with_mode(&ds, OptMode::None);
    for mode in [OptMode::Batching, OptMode::InfoSharing, OptMode::Both] {
        let (loss, preds) = fit_with_mode(&ds, mode);
        let rel = (loss - base_loss).abs() / base_loss.max(1e-12);
        assert!(rel < 1e-3, "{mode:?}: first-epoch loss {loss} vs {base_loss}");
        for (a, b) in preds.iter().zip(&base_preds) {
            let rel = (a - b).abs() / (1.0 + b.abs());
            assert!(rel < 2e-2, "{mode:?}: prediction {a} vs {b}");
        }
    }
}

#[test]
fn vectorized_training_is_not_slower_per_epoch() {
    // With repeated plan structures, Both should need at most as much time
    // as None for the same work (usually far less). Use enough plans that
    // equivalence classes actually repeat.
    let ds = Dataset::generate(Workload::TpcH, 1.0, 120, 5);
    let plans = ds.select(&(0..ds.len()).collect::<Vec<_>>());

    let time_mode = |mode: OptMode| {
        let cfg = QppConfig { epochs: 3, batch_size: 120, opt_mode: mode, ..QppConfig::tiny() };
        let mut model = QppNet::new(cfg, &ds.catalog);
        let h = model.fit(&plans);
        h.total_seconds()
    };

    let slow = time_mode(OptMode::None);
    let fast = time_mode(OptMode::Both);
    assert!(
        fast < slow,
        "Both ({fast:.3}s) should be faster than None ({slow:.3}s)"
    );
}

#[test]
fn info_sharing_alone_beats_none_alone() {
    let ds = Dataset::generate(Workload::TpcH, 1.0, 60, 6);
    let plans = ds.select(&(0..ds.len()).collect::<Vec<_>>());
    let time_mode = |mode: OptMode| {
        let cfg = QppConfig { epochs: 3, batch_size: 60, opt_mode: mode, ..QppConfig::tiny() };
        let mut model = QppNet::new(cfg, &ds.catalog);
        model.fit(&plans).total_seconds()
    };
    let none = time_mode(OptMode::None);
    let sharing = time_mode(OptMode::InfoSharing);
    assert!(
        sharing < none,
        "InfoSharing ({sharing:.3}s) should beat None ({none:.3}s)"
    );
}
