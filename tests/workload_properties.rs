//! Property-style integration tests over the simulated workloads: the
//! invariants the paper's experimental setup depends on.

use proptest::prelude::*;
use qpp::plansim::prelude::*;

#[test]
fn both_benchmarks_cover_every_operator_family() {
    for workload in [Workload::TpcH, Workload::TpcDs] {
        let ds = Dataset::generate(workload, 1.0, 300, 1);
        let mut seen = std::collections::HashSet::new();
        for p in &ds.plans {
            p.root.visit_postorder(&mut |n| {
                seen.insert(n.op.kind());
            });
        }
        for kind in OpKind::ALL {
            assert!(seen.contains(&kind), "{:?} never appears in {}", kind, workload.name());
        }
    }
}

#[test]
fn all_three_join_algorithms_appear() {
    use qpp::plansim::operators::{JoinAlgorithm, Operator};
    let mut seen = std::collections::HashSet::new();
    for workload in [Workload::TpcH, Workload::TpcDs] {
        let ds = Dataset::generate(workload, 1.0, 300, 8);
        for p in &ds.plans {
            p.root.visit_postorder(&mut |n| {
                if let Operator::Join { algo, .. } = &n.op {
                    seen.insert(*algo);
                }
            });
        }
    }
    for algo in [JoinAlgorithm::NestedLoop, JoinAlgorithm::Hash, JoinAlgorithm::Merge] {
        assert!(seen.contains(&algo), "{algo:?} never chosen by the optimizer");
    }
}

#[test]
fn latencies_are_inclusive_everywhere() {
    let ds = Dataset::generate(Workload::TpcDs, 1.0, 100, 2);
    for p in &ds.plans {
        p.root.visit_postorder(&mut |n| {
            let child_sum: f64 = n.children.iter().map(|c| c.actual.latency_ms).sum();
            assert!(
                n.actual.latency_ms >= child_sum - 1e-9,
                "inclusive-latency violation in template {}",
                p.template_id
            );
            assert!(n.actual.self_latency_ms >= 0.0);
        });
    }
}

#[test]
fn structural_equivalence_classes_repeat_within_templates() {
    // Plan-based batching only pays off if structures repeat; instances of
    // one template usually (not always) share a structure.
    let ds = Dataset::generate(Workload::TpcH, 1.0, 300, 3);
    let mut sigs = std::collections::HashMap::<String, usize>::new();
    for p in &ds.plans {
        *sigs.entry(p.signature()).or_default() += 1;
    }
    let repeated: usize = sigs.values().filter(|&&c| c > 1).sum();
    assert!(
        repeated as f64 > ds.len() as f64 * 0.5,
        "only {repeated}/{} plans share a structure",
        ds.len()
    );
}

#[test]
fn estimates_differ_from_actuals_but_correlate() {
    // The learning problem exists (estimates are wrong) and is solvable
    // (they still carry signal).
    let ds = Dataset::generate(Workload::TpcDs, 1.0, 200, 4);
    let mut n_wrong = 0usize;
    let mut n = 0usize;
    let mut corr_num = 0.0f64;
    let (mut sx, mut sy, mut sxx, mut syy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for p in &ds.plans {
        p.root.visit_postorder(&mut |node| {
            n += 1;
            let e = node.est.rows.max(1.0).ln();
            let a = node.actual.rows.max(1.0).ln();
            if (e - a).abs() > 0.1 {
                n_wrong += 1;
            }
            sx += e;
            sy += a;
            sxx += e * e;
            syy += a * a;
            corr_num += e * a;
        });
    }
    let nf = n as f64;
    let corr = (corr_num - sx * sy / nf)
        / ((sxx - sx * sx / nf).sqrt() * (syy - sy * sy / nf).sqrt());
    assert!(n_wrong as f64 / nf > 0.2, "estimates are suspiciously perfect");
    assert!(corr > 0.8, "estimates carry too little signal: corr {corr}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seed yields a valid, simulatable workload with positive
    /// latencies and consistent splits.
    #[test]
    fn random_seeds_generate_valid_workloads(seed in 0u64..10_000) {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 30, seed);
        prop_assert_eq!(ds.len(), 30);
        for p in &ds.plans {
            prop_assert!(p.latency_ms() > 0.0);
            prop_assert!(p.node_count() >= 1);
        }
        let split = ds.paper_split(seed);
        prop_assert_eq!(split.train.len() + split.test.len(), 30);
    }

    /// Scale factor monotonicity: bigger databases are never faster on
    /// average.
    #[test]
    fn scale_factor_monotonicity(seed in 0u64..500) {
        let small = Dataset::generate(Workload::TpcH, 1.0, 20, seed);
        let big = Dataset::generate(Workload::TpcH, 10.0, 20, seed);
        let idx: Vec<usize> = (0..20).collect();
        prop_assert!(big.mean_latency_ms(&idx) > small.mean_latency_ms(&idx));
    }
}
