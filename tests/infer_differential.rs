//! Differential tests: the compiled wavefront serving engine
//! (`PlanProgram`) against per-equivalence-class `TreeBatch` evaluation.
//!
//! The two engines share whitened features, unit weights and row-major
//! kernels; they differ only in how node rows are grouped into gemm calls.
//! Since each output row of `X·W` depends on no other row, the grouping
//! must not change any prediction: every property here holds the engines
//! to within `1e-5` relative error on every plan — unclamped and under the
//! structural envelope (`predict_roots_clamped`) — across random plan
//! forests of mixed shapes, all operator kinds (TPC-DS plans exercise the
//! full vocabulary) and batch sizes 1..64.
//!
//! Two agreement contracts are held, with different tolerances:
//!
//! * **cross-engine** (`Classes` vs `Program`): within `1e-5` relative —
//!   the engines share arithmetic per node but the SIMD serving gemm may
//!   round differently (FMA) than the scalar training path;
//! * **cross-thread-count** (`run_parallel` at 1/2/4/8 workers):
//!   **bit-identical** — DESIGN.md §7's determinism contract. The
//!   partition grain is the compile-time step, so threading changes only
//!   which worker executes a step, never its input rows or kernel.
//!
//! CI runs this suite in release mode as well (optimized gemm paths hit
//! different code than debug: LTO-inlined kernels, no debug asserts).

use proptest::prelude::*;
use qpp::net::config::{TargetCodec, TargetTransform};
use qpp::net::tree::fit_ratio_caps;
use qpp::net::{predict_plans_with, InferEngine, PlanProgram, QppConfig, QppNet, UnitSet};
use qpp::plansim::features::{Featurizer, Whitener};
use qpp::plansim::prelude::*;
use rand::SeedableRng;

const TOL: f64 = 1e-5;

fn assert_engines_agree(workload: Workload, seed: u64, batch: usize) {
    let ds = Dataset::generate(workload, 1.0, batch, seed);
    let fz = Featurizer::new(&ds.catalog);
    let wh = Whitener::fit(&fz, ds.plans.iter());
    let codec = TargetCodec::fit(TargetTransform::Log1p, ds.plans.iter().map(|p| p.latency_ms()));
    let caps = fit_ratio_caps(ds.plans.iter(), 2.0);
    // Untrained (randomly initialized) units exercise the full numeric
    // range; training only moves weights, never the data flow.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
    let units = UnitSet::new(&QppConfig::tiny(), &fz, &mut rng);

    let plans: Vec<&Plan> = ds.plans.iter().collect();
    for caps in [None, Some(&caps)] {
        let classes =
            predict_plans_with(InferEngine::Classes, &units, &fz, &wh, &codec, caps, &plans);
        let program = predict_plans_with(
            InferEngine::Program { threads: 1 },
            &units,
            &fz,
            &wh,
            &codec,
            caps,
            &plans,
        );
        assert_eq!(classes.len(), plans.len());
        for (i, (c, p)) in classes.iter().zip(&program).enumerate() {
            let rel = (c - p).abs() / (1.0 + c.abs());
            assert!(
                rel < TOL,
                "plan {i} (clamped={}): classes {c} vs program {p} (rel {rel})",
                caps.is_some()
            );
        }
    }
}

/// The thread-count invariance property (DESIGN.md §7): a compiled
/// program answers **bit-identically** on 1, 2, 4 and 8 worker threads —
/// roots, per-operator predictions, and the clamped envelope alike.
fn assert_thread_count_invariant(workload: Workload, seed: u64, batch: usize) {
    let ds = Dataset::generate(workload, 1.0, batch, seed);
    let fz = Featurizer::new(&ds.catalog);
    let wh = Whitener::fit(&fz, ds.plans.iter());
    let codec = TargetCodec::fit(TargetTransform::Log1p, ds.plans.iter().map(|p| p.latency_ms()));
    let caps = fit_ratio_caps(ds.plans.iter(), 2.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xFACE);
    let units = UnitSet::new(&QppConfig::tiny(), &fz, &mut rng);

    let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
    let mut program = PlanProgram::compile(&fz, &wh, &units, &roots);
    let base_roots = program.predict_roots_threaded(&units, &codec, 1);
    let base_all = program.predict_all_threaded(&units, &codec, 1);
    let base_clamped = program.predict_roots_clamped_threaded(&units, &codec, &caps, 1);
    for threads in [2usize, 4, 8] {
        assert_eq!(
            program.predict_roots_threaded(&units, &codec, threads),
            base_roots,
            "{threads} threads: roots diverged"
        );
        assert_eq!(
            program.predict_all_threaded(&units, &codec, threads),
            base_all,
            "{threads} threads: per-operator predictions diverged"
        );
        assert_eq!(
            program.predict_roots_clamped_threaded(&units, &codec, &caps, threads),
            base_clamped,
            "{threads} threads: clamped roots diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random TPC-H forests: mixed shapes, batch sizes 1..64.
    #[test]
    fn tpch_forests_agree_across_engines(seed in 0u64..10_000, batch in 1usize..64) {
        assert_engines_agree(Workload::TpcH, seed, batch);
    }

    /// Random TPC-DS forests: the full operator vocabulary (sorts,
    /// aggregates, materialize, limits, filters) at mixed shapes.
    #[test]
    fn tpcds_forests_agree_across_engines(seed in 0u64..10_000, batch in 1usize..64) {
        assert_engines_agree(Workload::TpcDs, seed, batch);
    }

    /// Random TPC-H forests answer bit-identically at 1/2/4/8 threads.
    #[test]
    fn tpch_forests_are_thread_count_invariant(seed in 0u64..10_000, batch in 1usize..48) {
        assert_thread_count_invariant(Workload::TpcH, seed, batch);
    }

    /// Random TPC-DS forests (full operator vocabulary) answer
    /// bit-identically at 1/2/4/8 threads.
    #[test]
    fn tpcds_forests_are_thread_count_invariant(seed in 0u64..10_000, batch in 1usize..48) {
        assert_thread_count_invariant(Workload::TpcDs, seed, batch);
    }
}

/// The facade path: a *fitted* model (envelope clamping on, as deployed)
/// answers identically through both engines, and single-plan prediction
/// agrees with the batch it is part of.
#[test]
fn fitted_model_agrees_across_engines() {
    let ds = Dataset::generate(Workload::TpcDs, 1.0, 60, 77);
    let mut model = QppNet::new(QppConfig { epochs: 5, ..QppConfig::tiny() }, &ds.catalog);
    model.fit(&ds.plans.iter().take(40).collect::<Vec<_>>());

    let plans: Vec<&Plan> = ds.plans.iter().collect();
    let program = model.predict_batch_with(&plans, InferEngine::Program { threads: 1 });
    let classes = model.predict_batch_with(&plans, InferEngine::Classes);
    for (i, (p, c)) in program.iter().zip(&classes).enumerate() {
        let rel = (p - c).abs() / (1.0 + c.abs());
        assert!(rel < TOL, "plan {i}: program {p} vs classes {c}");
    }
    for (i, plan) in ds.plans.iter().enumerate().take(10) {
        let single = model.predict(plan);
        let rel = (single - program[i]).abs() / (1.0 + single.abs());
        assert!(rel < TOL, "plan {i}: single {single} vs batched {}", program[i]);
    }
    // The deployed facade is thread-count invariant too: one-shot batches
    // and compile-once serving both answer bit-identically on workers.
    for threads in [2usize, 4, 8] {
        let threaded = model.predict_batch_with(&plans, InferEngine::Program { threads });
        assert_eq!(threaded, program, "{threads} threads diverged through the facade");
    }
    let mut compiled = model.compile_program(&plans);
    let serial = model.predict_compiled(&mut compiled);
    for threads in [2usize, 4, 8] {
        assert_eq!(
            model.predict_compiled_with(&mut compiled, threads),
            serial,
            "{threads} threads diverged on the precompiled path"
        );
    }
}
