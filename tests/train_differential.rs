//! Differential tests for the wavefront training engine: the
//! differentiable program tape (`ProgramTape`) against per-equivalence-
//! class `TreeBatch` evaluation — the arrangement the paper describes and
//! the repository's gradient oracle.
//!
//! Three contracts are held:
//!
//! * **gradient agreement** — for random mixed-shape forests, the
//!   *normalized* gradients (what the optimizer consumes: summed SSE
//!   gradients divided by the supervised-operator count) agree within
//!   `1e-5` relative, per parameter. Comparison happens after
//!   normalization because the raw SSE sums reach magnitudes where a
//!   single f32 ULP is ~1e-4 — pointwise comparison there would measure
//!   summation-order noise, not correctness.
//! * **gradcheck** — the tape's analytic gradients match central-
//!   difference estimates of the tape's own loss
//!   (`qpp_nn::gradcheck::stable_central_diff`, the shared ReLU-kink
//!   stability filter), through multi-level plans where scan gradients
//!   must flow through parent units.
//! * **trained-model parity** — full training runs (shuffling, batching,
//!   weight decay, optimizer steps) through either engine, same RNG
//!   stream and config, land on models whose held-out predictions agree
//!   within `1e-5` relative.
//!
//! CI runs this suite in release mode as well: the optimized build
//! dispatches the AVX2+FMA forward microkernel, whose rounding the
//! tolerance must absorb — debug-only agreement would not certify the
//! bench or production binaries.

use proptest::prelude::*;
use qpp::net::config::{TargetCodec, TargetTransform, TrainEngine};
use qpp::net::tree::{equivalence_classes, Supervision, TreeBatch};
use qpp::net::{ProgramTape, QppConfig, QppNet, UnitSet};
use qpp::plansim::features::{Featurizer, Whitener};
use qpp::plansim::operators::OpKind;
use qpp::plansim::prelude::*;
use rand::SeedableRng;

const TOL: f64 = 1e-5;

fn setup(workload: Workload, batch: usize, seed: u64) -> (Dataset, Featurizer, Whitener, UnitSet, TargetCodec) {
    let ds = Dataset::generate(workload, 1.0, batch, seed);
    let fz = Featurizer::new(&ds.catalog);
    let wh = Whitener::fit(&fz, ds.plans.iter());
    let codec = TargetCodec::fit(TargetTransform::Log1p, ds.plans.iter().map(|p| p.latency_ms()));
    // Untrained (randomly initialized) units exercise the full numeric
    // range; training only moves weights, never the data flow.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x6EAD);
    let units = UnitSet::new(&QppConfig::tiny(), &fz, &mut rng);
    (ds, fz, wh, units, codec)
}

/// Normalized oracle gradients: per equivalence class, one all-operator
/// `TreeBatch` pass, summed and divided by the total supervised count —
/// the legacy trainer's exact arrangement up to the optimizer step.
fn oracle_grads(
    fz: &Featurizer,
    wh: &Whitener,
    codec: &TargetCodec,
    units: &mut UnitSet,
    plans: &[&Plan],
) {
    units.zero_grad();
    let mut ops = 0usize;
    for (_, members) in equivalence_classes(plans.iter().enumerate().map(|(i, p)| (i, &p.root))) {
        let roots: Vec<&PlanNode> = members.iter().map(|&i| &plans[i].root).collect();
        let tb = TreeBatch::build(fz, wh, codec, &roots);
        let fwd = tb.forward(units);
        let (_, grads) = tb.loss(&fwd, Supervision::AllOperators);
        tb.backward(units, &fwd, grads);
        ops += tb.supervised_count(Supervision::AllOperators);
    }
    units.scale_grad(1.0 / ops.max(1) as f32);
}

fn grads_snapshot(units: &UnitSet) -> Vec<(String, Vec<f32>)> {
    OpKind::ALL
        .iter()
        .flat_map(|&k| {
            units.unit(k).layers().iter().enumerate().map(move |(l, layer)| {
                let mut v = layer.gw.as_slice().to_vec();
                v.extend_from_slice(&layer.gb);
                (format!("{k:?} layer {l}"), v)
            })
        })
        .collect()
}

fn assert_grads_agree(workload: Workload, seed: u64, batch: usize, threads: usize) {
    let (ds, fz, wh, units, codec) = setup(workload, batch, seed);
    let plans: Vec<&Plan> = ds.plans.iter().collect();

    let mut oracle_units = units.clone();
    oracle_grads(&fz, &wh, &codec, &mut oracle_units, &plans);
    let oracle = grads_snapshot(&oracle_units);

    let roots: Vec<&PlanNode> = plans.iter().map(|p| &p.root).collect();
    let mut tape = ProgramTape::compile(&fz, &wh, &codec, &units, &roots);
    let mut tape_units = units.clone();
    tape_units.zero_grad();
    tape.forward_threaded(&units, threads);
    let (_, ops) = tape.loss();
    tape.backward_threaded(&mut tape_units, threads);
    tape_units.scale_grad(1.0 / ops.max(1) as f32);
    let tape_grads = grads_snapshot(&tape_units);

    for ((name, a), (_, b)) in oracle.iter().zip(&tape_grads) {
        for (x, y) in a.iter().zip(b) {
            let rel = (x - y).abs() as f64 / (1.0 + x.abs().max(y.abs()) as f64);
            assert!(
                rel < TOL,
                "{name} ({threads} threads): oracle {x} vs tape {y} (rel {rel})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random TPC-H forests: mixed shapes, batches 2..40, sequential tape.
    #[test]
    fn tpch_gradients_match_tree_batch_oracle(seed in 0u64..10_000, batch in 2usize..40) {
        assert_grads_agree(Workload::TpcH, seed, batch, 1);
    }

    /// Random TPC-DS forests (full operator vocabulary), sequential tape.
    #[test]
    fn tpcds_gradients_match_tree_batch_oracle(seed in 0u64..10_000, batch in 2usize..40) {
        assert_grads_agree(Workload::TpcDs, seed, batch, 1);
    }

    /// The multicore sweeps (per-worker gradient accumulation, reduced
    /// after the level barriers) hold the same oracle agreement.
    #[test]
    fn threaded_gradients_match_tree_batch_oracle(seed in 0u64..10_000, batch in 2usize..32) {
        assert_grads_agree(Workload::TpcDs, seed, batch, 4);
    }
}

/// Finite-difference check through the tape: perturb weights of units at
/// every tree depth and verify the tape's loss moves as its analytic
/// gradient predicts (kink-unstable points filtered by the shared
/// step-halving filter, with a vacuous-pass guard).
#[test]
fn tape_gradients_match_finite_differences() {
    let (ds, fz, wh, mut units, codec) = setup(Workload::TpcH, 16, 23);
    let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
    let mut tape = ProgramTape::compile(&fz, &wh, &codec, &units, &roots);

    units.zero_grad();
    tape.forward(&units);
    tape.loss();
    tape.backward(&mut units);

    let mut worst: f64 = 0.0;
    let mut compared = 0usize;
    let h = 5e-3f32;
    for kind in [OpKind::Scan, OpKind::Join, OpKind::Aggregate] {
        let (rows, cols) = {
            let l0 = &units.unit(kind).layers()[0];
            (l0.w.rows(), l0.w.cols())
        };
        for (r, c) in [(0, 0), (1, 2), (rows - 1, cols - 1)] {
            let analytic = units.unit(kind).layers()[0].gw.get(r, c) as f64;
            let orig = units.unit(kind).layers()[0].w.get(r, c);
            let numeric = qpp::nn::gradcheck::stable_central_diff(
                |offset| {
                    units.unit_mut(kind).layers_mut()[0].w.set(r, c, orig + offset);
                    tape.forward(&units);
                    let (l, _) = tape.loss();
                    units.unit_mut(kind).layers_mut()[0].w.set(r, c, orig);
                    l
                },
                h,
                0.01,
            );
            let Some(numeric) = numeric else { continue };
            let denom = analytic.abs().max(numeric.abs()).max(1e-2);
            worst = worst.max((analytic - numeric).abs() / denom);
            compared += 1;
        }
    }
    // Guard against a vacuous pass: the kink filter must not have
    // discarded every sampled point.
    assert!(compared >= 5, "only {compared} of 9 points were kink-stable");
    assert!(worst < 0.05, "worst relative gradient error {worst}");
}

/// Full training runs through either engine — same config, same RNG
/// stream, same optimizer — must land on models that agree on held-out
/// predictions within `1e-5` relative. This is the end-to-end acceptance
/// contract: shuffling, mini-batching, tape reuse across epochs, weight
/// decay and momentum all sit between the engines and the comparison.
fn trained_model_parity(workload: Workload, batch_size: usize) {
    let ds = Dataset::generate(workload, 1.0, 48, 4171);
    let train: Vec<&Plan> = ds.plans.iter().take(36).collect();
    let held_out: Vec<&Plan> = ds.plans.iter().skip(36).collect();

    let run = |engine: TrainEngine| {
        let cfg = QppConfig {
            epochs: 6,
            batch_size,
            train_engine: engine,
            ..QppConfig::tiny()
        };
        let mut model = QppNet::new(cfg, &ds.catalog);
        model.fit(&train);
        model.predict_batch(&held_out)
    };
    let program = run(TrainEngine::Program);
    let classes = run(TrainEngine::Classes);
    for (i, (p, c)) in program.iter().zip(&classes).enumerate() {
        let rel = (p - c).abs() / (1.0 + c.abs());
        assert!(
            rel < TOL,
            "held-out plan {i}: wavefront-trained {p} vs class-trained {c} (rel {rel})"
        );
    }
}

/// Full-batch configuration: the tape is compiled once and reused across
/// every epoch.
#[test]
fn trained_models_agree_full_batch() {
    trained_model_parity(Workload::TpcH, 64);
}

/// Mini-batch configuration: tapes are recompiled per shuffled chunk
/// (recycling buffers), exercising a different tape per step.
#[test]
fn trained_models_agree_minibatched() {
    trained_model_parity(Workload::TpcDs, 8);
}
