//! Differential tests for the serving daemon: random admit / retire /
//! predict interleavings driven **through the socket** must produce
//! predictions **bitwise-equal** to an in-process `ProgramBuilder`
//! replaying the same sequence — at 1 and 4 wavefront threads, clamped
//! and unclamped, over TCP loopback and unix sockets.
//!
//! Why bit-equality survives the wire: the incremental/sharded engines
//! are already bit-transparent against a single builder
//! (`tests/stream_differential.rs`, `tests/executor_differential.rs`),
//! and the vendored JSON formatter prints non-integral `f64`s with
//! Rust's shortest-round-trip `Display`, which parses back to the exact
//! bits. So the only thing this suite can catch — and the thing it is
//! for — is the daemon layer itself (session maps, tenant routing,
//! micro-batch coalescing) corrupting results.

use std::sync::OnceLock;
use std::time::Duration;

use qpp::net::serve::{Client, ServeAddr, ServeConfig, Server};
use qpp::net::{PlanId, QppConfig, QppNet};
use qpp::plansim::prelude::*;
use rand::{Rng, SeedableRng};

/// Shared fixture: one dataset plus a clamped and an unclamped fitted
/// model (tiny tier, 2 epochs — learned weights are irrelevant to the
/// bit-equality contract, the data flow is what's under test).
fn fixture() -> &'static (Dataset, QppNet, QppNet) {
    static FIXTURE: OnceLock<(Dataset, QppNet, QppNet)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = Dataset::generate(Workload::TpcDs, 1.0, 20, 11);
        let train: Vec<&Plan> = ds.plans.iter().collect();
        let mut clamped = QppNet::new(
            QppConfig { epochs: 2, monotone_clamp: true, ..QppConfig::tiny() },
            &ds.catalog,
        );
        clamped.fit(&train);
        // One extra epoch so the two models' weights (and therefore
        // fingerprints — the fingerprint hashes fitted state, not
        // config flags) differ, which multi-tenancy relies on.
        let mut unclamped = QppNet::new(
            QppConfig { epochs: 3, monotone_clamp: false, ..QppConfig::tiny() },
            &ds.catalog,
        );
        unclamped.fit(&train);
        (ds, clamped, unclamped)
    })
}

/// Drives one random interleaving through a live daemon and mirrors
/// every operation on an in-process builder, asserting bitwise-equal
/// predictions at every step.
fn served_bits_match_inprocess(
    addr: &ServeAddr,
    cfg: ServeConfig,
    clamped: bool,
    seed: u64,
    ops: usize,
) {
    let (ds, clamped_model, unclamped_model) = fixture();
    let model = if clamped { clamped_model } else { unclamped_model };

    let mut server = Server::bind(addr, cfg).expect("bind");
    server.register(model);
    let addr = server.local_addr().clone();

    std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || server.run().expect("server run"));

        let mut client = Client::connect(&addr).expect("connect");
        client.set_timeout(Some(Duration::from_secs(30))).unwrap();

        // The in-process reference: a single sequential builder.
        let mut builder = model.serve_stream();
        // Parallel session maps: wire id ↔ builder PlanId.
        let mut resident: Vec<(u64, PlanId)> = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5EED5);

        for _ in 0..ops {
            match rng.gen_range(0..4u32) {
                // Admit (repeats allowed — the CSE-heavy case).
                0 => {
                    let pick = rng.gen_range(0..ds.plans.len());
                    let plan = &ds.plans[pick].root;
                    let wire = client.admit(plan).expect("admit");
                    let pid = builder.admit(plan);
                    resident.push((wire, pid));
                }
                // Retire a random resident plan.
                1 if !resident.is_empty() => {
                    let victim = rng.gen_range(0..resident.len());
                    let (wire, pid) = resident.remove(victim);
                    client.retire(wire).expect("retire");
                    builder.retire(pid);
                }
                // Predict a random resident plan: bits must match.
                2 if !resident.is_empty() => {
                    let &(wire, pid) = &resident[rng.gen_range(0..resident.len())];
                    let served = client.predict(wire).expect("predict");
                    let local = builder.predict_root(pid);
                    assert_eq!(
                        served.to_bits(),
                        local.to_bits(),
                        "seed={seed} clamped={clamped}: served {served} != local {local}"
                    );
                }
                // One-shot admit_predict (keep=false): bits must match
                // admitting/predicting/retiring on the local builder.
                _ => {
                    let pick = rng.gen_range(0..ds.plans.len());
                    let plan = &ds.plans[pick].root;
                    let (kept, served) = client.admit_predict(plan, false).expect("admit_predict");
                    assert!(kept.is_none(), "keep=false must not return an id");
                    let pid = builder.admit(plan);
                    let local = builder.predict_root(pid);
                    builder.retire(pid);
                    assert_eq!(
                        served.to_bits(),
                        local.to_bits(),
                        "seed={seed} clamped={clamped}: one-shot {served} != local {local}"
                    );
                }
            }
        }

        // Final checkpoint: every remaining resident plan, both ways.
        for &(wire, pid) in &resident {
            let served = client.predict(wire).expect("final predict");
            assert_eq!(served.to_bits(), builder.predict_root(pid).to_bits());
        }
        client.shutdown().expect("shutdown");
    });
}

#[test]
fn tcp_served_bits_match_inprocess_t1() {
    for seed in [1u64, 2, 3] {
        for clamped in [false, true] {
            let cfg = ServeConfig { threads: 1, ..ServeConfig::default() };
            let addr = ServeAddr::parse("127.0.0.1:0").unwrap();
            served_bits_match_inprocess(&addr, cfg, clamped, seed, 30);
        }
    }
}

/// The fast-path toggle is bit-transparent: the same interleavings with
/// the zero-allocation fast path forced on and forced off (overriding
/// whatever `QPP_SERVE_FAST_PATH` says) must both match the in-process
/// builder bit-for-bit.
#[test]
fn tcp_served_bits_match_with_fast_path_forced_on_and_off() {
    for fast_path in [true, false] {
        for clamped in [false, true] {
            let cfg = ServeConfig { threads: 1, fast_path, ..ServeConfig::default() };
            let addr = ServeAddr::parse("127.0.0.1:0").unwrap();
            served_bits_match_inprocess(&addr, cfg, clamped, 7, 30);
        }
    }
}

#[test]
fn tcp_served_bits_match_inprocess_t4_sharded() {
    // 4 wavefront threads + 3 shards: the full concurrent configuration
    // must still match the single sequential builder bit-for-bit.
    for seed in [4u64, 5] {
        for clamped in [false, true] {
            let cfg = ServeConfig { threads: 4, shards: 3, ..ServeConfig::default() };
            let addr = ServeAddr::parse("127.0.0.1:0").unwrap();
            served_bits_match_inprocess(&addr, cfg, clamped, seed, 30);
        }
    }
}

#[cfg(unix)]
#[test]
fn unix_socket_served_bits_match_inprocess() {
    let path = std::env::temp_dir().join(format!("qpp_serve_diff_{}.sock", std::process::id()));
    let addr = ServeAddr::Unix(path);
    let cfg = ServeConfig { threads: 4, shards: 2, ..ServeConfig::default() };
    served_bits_match_inprocess(&addr, cfg, true, 6, 30);
}

/// Multi-tenant routing: two models co-hosted on one daemon, each
/// client request explicitly targeting one tenant; every prediction
/// must match that tenant's own in-process builder.
#[test]
fn multi_tenant_served_bits_match_each_model() {
    let (ds, clamped_model, unclamped_model) = fixture();
    let mut server = Server::bind(
        &ServeAddr::parse("127.0.0.1:0").unwrap(),
        ServeConfig::default(),
    )
    .expect("bind");
    let fp_a = server.register(clamped_model);
    let fp_b = server.register(unclamped_model);
    assert_ne!(fp_a, fp_b, "distinct configs must fingerprint differently");
    let addr = server.local_addr().clone();

    std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || server.run().expect("server run"));

        let mut client = Client::connect(&addr).expect("connect");
        client.set_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut builder_a = clamped_model.serve_stream();
        let mut builder_b = unclamped_model.serve_stream();

        for (i, plan) in ds.plans.iter().take(10).enumerate() {
            let (fp, builder) =
                if i % 2 == 0 { (fp_a, &mut builder_a) } else { (fp_b, &mut builder_b) };
            let (_, served) =
                client.admit_predict_to(&plan.root, false, Some(fp)).expect("routed predict");
            let pid = builder.admit(&plan.root);
            let local = builder.predict_root(pid);
            builder.retire(pid);
            assert_eq!(
                served.to_bits(),
                local.to_bits(),
                "tenant {fp:016x} plan {i}: served {served} != local {local}"
            );
        }
        client.shutdown().expect("shutdown");
    });
}

/// Concurrent clients under burst coalescing: 4 threads fire one-shot
/// predictions simultaneously with burst=4, so requests genuinely
/// coalesce into micro-batched flushes. Coalescing is accuracy-free, so
/// every reply must carry the same bits as serving that plan alone.
#[test]
fn concurrent_burst_coalescing_is_bit_transparent() {
    let (ds, model, _) = fixture();
    let cfg = ServeConfig { burst: 4, burst_wait_us: 2_000, ..ServeConfig::default() };
    let mut server = Server::bind(&ServeAddr::parse("127.0.0.1:0").unwrap(), cfg).expect("bind");
    server.register(model);
    let addr = server.local_addr().clone();

    // Reference bits: each plan served alone on a fresh builder.
    let mut reference = Vec::new();
    for plan in ds.plans.iter().take(8) {
        let mut b = model.serve_stream();
        let pid = b.admit(&plan.root);
        reference.push(b.predict_root(pid).to_bits());
    }

    std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || server.run().expect("server run"));

        let workers: Vec<_> = (0..4usize)
            .map(|w| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                    // Each worker sends each of its 2 plans 3 times.
                    let mut got = Vec::new();
                    for round in 0..3 {
                        for k in 0..2 {
                            let idx = w * 2 + k;
                            let (_, served) = client
                                .admit_predict(&fixture().0.plans[idx].root, false)
                                .expect("burst predict");
                            got.push((idx, round, served.to_bits()));
                        }
                    }
                    got
                })
            })
            .collect();

        for h in workers {
            for (idx, round, bits) in h.join().expect("worker") {
                assert_eq!(
                    bits, reference[idx],
                    "plan {idx} round {round}: coalesced bits diverged from solo serving"
                );
            }
        }

        let mut ctl = Client::connect(&addr).expect("control");
        let stats = ctl.stats().expect("stats");
        assert_eq!(stats.batched_requests, 24, "every one-shot goes through the batcher");
        assert!(
            stats.batches < stats.batched_requests,
            "4 concurrent workers with burst=4 must coalesce at least once \
             ({} batches for {} requests)",
            stats.batches,
            stats.batched_requests
        );
        assert_eq!(stats.resident_plans, 0, "one-shots must not leak residency");
        ctl.shutdown().expect("shutdown");
    });
}
