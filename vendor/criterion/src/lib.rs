//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the builder/macro surface the QPPNet benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`] — on top of a simple wall-clock measurement loop:
//! a warm-up phase followed by timed batches, reporting the mean, best and
//! worst per-iteration time to stdout. No statistical analysis, plots or
//! baseline persistence; the numbers are honest wall-clock means over the
//! sampled batches.

#![warn(clippy::all)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed measurement, as recorded by the global store (see
/// [`take_records`]).
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark label, `group/function/parameter` style.
    pub label: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: u64,
    /// Best (minimum) sampled nanoseconds per iteration.
    pub best_ns: u64,
    /// Worst (maximum) sampled nanoseconds per iteration.
    pub worst_ns: u64,
}

static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Drains every measurement recorded so far (in execution order), so a
/// bench `main` can persist the run as machine-readable data after the
/// groups finish.
pub fn take_records() -> Vec<BenchRecord> {
    std::mem::take(&mut RECORDS.lock().expect("bench records poisoned"))
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("group {name}");
        BenchmarkGroup { _parent: self, name, sample_size }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.label(), self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under this group's name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    /// An id distinguished by parameter value only.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function: None, parameter: Some(parameter.to_string()) }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { function: Some(s.to_string()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { function: Some(s), parameter: None }
    }
}

/// Passed to the benchmark closure; runs the measured routine.
pub struct Bencher {
    sample_size: usize,
    result: Option<Sample>,
}

struct Sample {
    mean: Duration,
    best: Duration,
    worst: Duration,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures `routine`, called repeatedly in timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50ms or 3 iterations, whichever is later,
        // and derive the batch size targeting ~25ms per sample.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_iters < 3 || warmup_start.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 3 && warmup_start.elapsed() > Duration::from_millis(500) {
                break;
            }
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;
        let iters_per_sample = (Duration::from_millis(25).as_nanos()
            / per_iter.as_nanos().max(1)) as u64;
        let iters_per_sample = iters_per_sample.clamp(1, 1_000_000);

        let mut best = Duration::MAX;
        let mut worst = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed() / iters_per_sample as u32;
            best = best.min(elapsed);
            worst = worst.max(elapsed);
            total += elapsed;
        }
        self.result = Some(Sample {
            mean: total / self.sample_size as u32,
            best,
            worst,
            iters_per_sample,
        });
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { sample_size, result: None };
    f(&mut b);
    match b.result {
        Some(s) => {
            println!(
                "  {label}: mean {:?} (best {:?}, worst {:?}; {} samples x {} iters)",
                s.mean, s.best, s.worst, sample_size, s.iters_per_sample
            );
            RECORDS.lock().expect("bench records poisoned").push(BenchRecord {
                label: label.to_string(),
                mean_ns: s.mean.as_nanos() as u64,
                best_ns: s.best.as_nanos() as u64,
                worst_ns: s.worst.as_nanos() as u64,
            });
        }
        None => println!("  {label}: no measurement (Bencher::iter never called)"),
    }
}

/// Aggregates benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
