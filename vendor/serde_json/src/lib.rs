//! Offline, API-compatible subset of `serde_json`.
//!
//! Renders and parses the JSON [`Value`] tree defined by the vendored
//! `serde` crate. Covers the calls the QPPNet workspace makes:
//! [`to_string`], [`from_str`], [`to_value`], [`from_value`], plus the
//! [`Value`]/[`Map`] types with object accessors.

#![warn(clippy::all)]

pub use serde::{Error, Map, Value};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.ser_value(), &mut out)?;
    Ok(out)
}

/// Converts `value` into a JSON [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.ser_value())
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::de_value(&v)
}

/// Rebuilds a `T` from a JSON [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    T::de_value(&v)
}

// --- writer ----------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if !n.is_finite() {
                return Err(Error::custom("cannot serialize non-finite number"));
            }
            out.push_str(&serde::fmt_number(*n));
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{kw}` at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": null, "c": "x\ny", "d": true}"#).unwrap();
        let s = {
            let mut out = String::new();
            write_value(&v, &mut out).unwrap();
            out
        };
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1f64, 1.0 / 3.0, 1e-30, 123456789.123456] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
