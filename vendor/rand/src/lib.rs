//! Offline, API-compatible subset of `rand` 0.8.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the `rand` API the QPPNet reproduction actually calls:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range`, `gen_bool` and `gen`;
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`];
//! * [`seq::SliceRandom`] with `choose` and `shuffle`.
//!
//! The core generator is xoshiro256** seeded through SplitMix64 — not the
//! ChaCha12 core of upstream `StdRng`, so *streams differ from upstream*,
//! but every generator here is deterministic for a given seed, which is the
//! property the reproduction relies on.

#![warn(clippy::all)]

/// The raw 32/64-bit generator interface.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (`Rng::gen_range`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + v) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = low as f64 + (high as f64 - low as f64) * unit;
                // Guard against rounding up to `high` exactly.
                if v as $t >= high { low } else { v as $t }
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (low as f64 + (high as f64 - low as f64) * unit) as $t
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod rngs {
    //! Concrete generator implementations.
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Seeded via SplitMix64 exactly as the xoshiro reference code
    /// recommends, so every distinct `u64` seed yields a well-mixed state.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions (`choose`, `shuffle`).
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

pub use rngs::StdRng as _StdRngForDocs;

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = super::rngs::StdRng::seed_from_u64(42);
        let mut b = super::rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = super::rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let c = rng.gen_range(0u64..=4);
            assert!(c <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = super::rngs::StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = super::rngs::StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
