//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the vendored offline serde (see `vendor/serde`).
//!
//! No `syn`/`quote` are available offline, so this parses the derive input
//! token stream directly. Supported item shapes — exactly what the QPPNet
//! workspace uses:
//!
//! * structs with named fields, with optional field-level
//!   `#[serde(default)]` and `#[serde(default = "path")]`;
//! * enums with unit, newtype/tuple and struct variants (externally tagged,
//!   like upstream serde's default representation).
//!
//! Generics are not supported; deriving on a generic type is a compile
//! error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled during deserialization.
#[derive(Debug, Clone)]
enum FieldDefault {
    /// No `#[serde(default)]`: missing field is an error.
    Required,
    /// `#[serde(default)]`: `Default::default()`.
    Std,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: FieldDefault,
}

#[derive(Debug, Clone)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// --- parsing ---------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor { tokens: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes a run of `#[...]` attributes, returning the field default
    /// policy found in any `#[serde(...)]` among them.
    fn skip_attrs(&mut self) -> Result<FieldDefault, String> {
        let mut default = FieldDefault::Required;
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    match self.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            if let Some(d) = parse_serde_attr(g.stream())? {
                                default = d;
                            }
                        }
                        _ => return Err("expected [...] after #".into()),
                    }
                }
                _ => return Ok(default),
            }
        }
    }

    /// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected {what}, got {other:?}")),
        }
    }

    /// Consumes tokens of a type expression up to a top-level `,` (or end),
    /// tracking `<`/`>` nesting. The `,` itself is consumed.
    fn skip_type(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

/// Parses the inside of a `#[serde(...)]` bracket group; returns the field
/// default policy if this is a serde attribute, `None` otherwise (doc
/// comments etc.).
fn parse_serde_attr(stream: TokenStream) -> Result<Option<FieldDefault>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(None),
    }
    let group = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Err("malformed #[serde] attribute".into()),
    };
    let inner: Vec<TokenTree> = group.into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {
            if inner.len() == 1 {
                Ok(Some(FieldDefault::Std))
            } else {
                // default = "path"
                match (&inner[1], &inner[2]) {
                    (TokenTree::Punct(eq), TokenTree::Literal(lit)) if eq.as_char() == '=' => {
                        let raw = lit.to_string();
                        let path = raw.trim_matches('"').to_string();
                        Ok(Some(FieldDefault::Path(path)))
                    }
                    _ => Err("malformed #[serde(default = ...)]".into()),
                }
            }
        }
        Some(other) => Err(format!(
            "unsupported #[serde(...)] attribute `{other}` (vendored serde supports only `default`)"
        )),
        None => Err("empty #[serde()] attribute".into()),
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    cur.skip_attrs()?;
    cur.skip_visibility();
    let kw = cur.expect_ident("`struct` or `enum`")?;
    let name = cur.expect_ident("item name")?;
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generics (deriving on `{name}`)"
            ));
        }
    }
    let body = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!(
                "vendored serde_derive does not support tuple structs (deriving on `{name}`)"
            ));
        }
        other => return Err(format!("expected item body for `{name}`, got {other:?}")),
    };
    match kw.as_str() {
        "struct" => Ok(Item::Struct { name, fields: parse_fields(body)? }),
        "enum" => Ok(Item::Enum { name, variants: parse_variants(body)? }),
        other => Err(format!("cannot derive serde impls for `{other} {name}`")),
    }
}

fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let default = cur.skip_attrs()?;
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        let name = cur.expect_ident("field name")?;
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        cur.skip_type();
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.skip_attrs()?;
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident("variant name")?;
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_top_level_fields(g.stream());
                cur.next();
                VariantKind::Tuple(count)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream())?;
                cur.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Optional discriminant (`= expr`) would appear here; unit-only
        // enums with explicit discriminants are not used in this workspace.
        if let Some(TokenTree::Punct(p)) = cur.peek() {
            if p.as_char() == ',' {
                cur.next();
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

/// Counts comma-separated entries at angle-depth 0 in a tuple-variant body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut saw_tokens_since_comma = true;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
            }
            _ => saw_tokens_since_comma = true,
        }
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

// --- codegen ---------------------------------------------------------------

fn default_expr(field: &Field, ty_name: &str) -> String {
    match &field.default {
        FieldDefault::Required => format!(
            "return ::core::result::Result::Err(::serde::Error::custom(\"missing field `{}` in `{}`\"))",
            field.name, ty_name
        ),
        FieldDefault::Std => "::core::default::Default::default()".to_string(),
        FieldDefault::Path(path) => format!("{path}()"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "m.insert(::std::string::String::from({n:?}), ::serde::Serialize::ser_value(&self.{n}));\n",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn ser_value(&self) -> ::serde::Value {{\n\
                 let mut m = ::serde::Map::new();\n{inserts}\
                 ::serde::Value::Object(m)\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(::std::string::String::from({vn:?})),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(x0) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(::std::string::String::from({vn:?}), ::serde::Serialize::ser_value(x0));\n\
                             ::serde::Value::Object(m)\n}}\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let elems: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::ser_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => {{\n\
                                 let mut m = ::serde::Map::new();\n\
                                 m.insert(::std::string::String::from({vn:?}), ::serde::Value::Array(vec![{elems}]));\n\
                                 ::serde::Value::Object(m)\n}}\n",
                                binds = binders.join(", "),
                                elems = elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let inserts: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "inner.insert(::std::string::String::from({n:?}), ::serde::Serialize::ser_value({n}));\n",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{\n\
                                 let mut inner = ::serde::Map::new();\n{inserts}\
                                 let mut m = ::serde::Map::new();\n\
                                 m.insert(::std::string::String::from({vn:?}), ::serde::Value::Object(inner));\n\
                                 ::serde::Value::Object(m)\n}}\n",
                                binds = binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn ser_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let field_inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{n}: match m.get({n:?}) {{\n\
                         ::core::option::Option::Some(x) => ::serde::Deserialize::de_value(x)?,\n\
                         ::core::option::Option::None => {{ {default} }}\n}},\n",
                        n = f.name,
                        default = default_expr(f, name)
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn de_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 let m = match v {{\n\
                 ::serde::Value::Object(m) => m,\n\
                 _ => return ::core::result::Result::Err(::serde::Error::custom(\"expected object for `{name}`\")),\n}};\n\
                 ::core::result::Result::Ok({name} {{\n{field_inits}}})\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{vn:?} => ::core::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    )
                })
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => ::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::de_value(payload)?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::de_value(&arr[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let arr = match payload {{\n\
                                 ::serde::Value::Array(a) if a.len() == {n} => a,\n\
                                 _ => return ::core::result::Result::Err(::serde::Error::custom(\"expected {n}-element array for `{name}::{vn}`\")),\n}};\n\
                                 ::core::result::Result::Ok({name}::{vn}({elems}))\n}}\n",
                                elems = elems.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let field_inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{n}: match inner.get({n:?}) {{\n\
                                         ::core::option::Option::Some(x) => ::serde::Deserialize::de_value(x)?,\n\
                                         ::core::option::Option::None => {{ {default} }}\n}},\n",
                                        n = f.name,
                                        default = default_expr(f, name)
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let inner = match payload {{\n\
                                 ::serde::Value::Object(inner) => inner,\n\
                                 _ => return ::core::result::Result::Err(::serde::Error::custom(\"expected object payload for `{name}::{vn}`\")),\n}};\n\
                                 ::core::result::Result::Ok({name}::{vn} {{\n{field_inits}}})\n}}\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn de_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` of `{name}`\"))),\n}},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, payload) = m.iter().next().unwrap();\n\
                 match tag.as_str() {{\n{payload_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` of `{name}`\"))),\n}}\n}},\n\
                 _ => ::core::result::Result::Err(::serde::Error::custom(\"bad enum representation for `{name}`\")),\n}}\n}}\n}}\n"
            )
        }
    }
}
