//! Offline, API-compatible subset of `proptest`.
//!
//! Supports the surface the QPPNet test suites use: the [`proptest!`] macro
//! with optional `#![proptest_config(...)]`, range and `any::<T>()`
//! strategies, tuple strategies, `prop::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike upstream proptest there is no shrinking and no failure
//! persistence: each case draws deterministically from a per-case seed, and
//! the first failing case panics with its case number (re-runs reproduce it
//! exactly).

#![warn(clippy::all)]

/// Runtime support used by the macros; not part of the public API.
pub mod __rt {
    pub use rand;
}

pub mod test_runner {
    //! Test-runner configuration and case-level error signalling.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Upstream defaults to 256; 64 keeps the vendored runner fast
            // while still exercising a meaningful sample.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// `prop_assert!`-style failure; the test panics.
        Fail(String),
    }
}

pub mod strategy {
    //! Value-generation strategies.
    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T: SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// Types with a canonical full-range generation strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Returns the full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any { _marker: std::marker::PhantomData }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length bounds for [`vec()`].
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy generating `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors with lengths in `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! One-stop import for property tests.
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias matching upstream (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. See the crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Per-test deterministic seed: name hash x case index.
                let name_seed: u64 = {
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for b in stringify!($name).bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    h
                };
                for case in 0..config.cases {
                    use $crate::__rt::rand::SeedableRng as _;
                    let mut rng = $crate::__rt::rand::rngs::StdRng::seed_from_u64(
                        name_seed ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    );
                    let mut case_fn = || ->
                        ::core::result::Result<(), $crate::test_runner::TestCaseError>
                    {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::sample(&($strat), &mut rng);
                        )+
                        $body
                        ::core::result::Result::Ok(())
                    };
                    let result = case_fn();
                    match result {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest `{}` failed at case {}: {}",
                                stringify!($name), case, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {} == {} (left: {:?}, right: {:?})",
                    stringify!($left), stringify!($right), left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {} != {} (both: {:?})",
                    stringify!($left), stringify!($right), left
                ),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
