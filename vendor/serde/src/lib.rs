//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a serialization framework with the same *surface* the code uses —
//! `serde::{Serialize, Deserialize}` traits plus derive macros — but a much
//! simpler core: every type converts to and from a JSON [`Value`] tree.
//! `serde_json` (also vendored) renders and parses that tree.
//!
//! Differences from upstream serde, acceptable for this workspace:
//!
//! * numbers travel as `f64` (exact for integers up to 2^53 — every count,
//!   seed and index this workspace serializes fits);
//! * only JSON is supported as a format;
//! * map keys must serialize to strings or numbers (string-keyed and
//!   unit-enum-keyed maps work, like upstream serde_json).

#![warn(clippy::all)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// JSON object representation (ordered for deterministic output).
pub type Map = BTreeMap<String, Value>;

/// A parsed/serializable JSON tree — the data model of this vendored serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object.
    Object(Map),
}

impl Value {
    /// Returns the backing object map, if this value is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the backing object map mutably, if this value is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the f64 payload, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string payload, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the JSON [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn ser_value(&self) -> Value;

    /// Converts `self` into a JSON object key.
    ///
    /// Works for types whose value form is a string or number (strings,
    /// integers, unit-variant enums) — the same set upstream serde_json
    /// accepts as map keys.
    fn ser_map_key(&self) -> Result<String, Error> {
        match self.ser_value() {
            Value::String(s) => Ok(s),
            Value::Number(n) => Ok(fmt_number(n)),
            Value::Bool(b) => Ok(b.to_string()),
            other => Err(Error::custom(format!(
                "map key must serialize to a string, got {other:?}"
            ))),
        }
    }
}

/// Types reconstructible from the JSON [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value tree.
    fn de_value(v: &Value) -> Result<Self, Error>;

    /// Rebuilds `Self` from a JSON object key.
    fn de_map_key(key: &str) -> Result<Self, Error> {
        Self::de_value(&Value::String(key.to_string()))
    }
}

/// Formats an `f64` the way JSON expects (integral values without `.0`).
pub fn fmt_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

// --- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn ser_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn de_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn de_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
            fn de_map_key(key: &str) -> Result<$t, Error> {
                key.parse::<f64>()
                    .map(|n| n as $t)
                    .map_err(|e| Error::custom(format!("bad numeric key `{key}`: {e}")))
            }
        }
    )*};
}
impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn ser_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn de_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn ser_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn ser_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn de_value(v: &Value) -> Result<char, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// --- container impls -------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn ser_value(&self) -> Value {
        match self {
            Some(x) => x.ser_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn de_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::de_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn de_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::de_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn ser_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn de_value(v: &Value) -> Result<[T; N], Error> {
        let items = Vec::<T>::de_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|got| Error::custom(format!("expected array of {N}, got {}", got.len())))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn ser_value(&self) -> Value {
        (**self).ser_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn de_value(v: &Value) -> Result<Box<T>, Error> {
        T::de_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser_value(&self) -> Value {
        (**self).ser_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn ser_value(&self) -> Value {
        Value::Array(vec![self.0.ser_value(), self.1.ser_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn de_value(v: &Value) -> Result<(A, B), Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::de_value(&items[0])?, B::de_value(&items[1])?))
            }
            _ => Err(Error::custom("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn ser_value(&self) -> Value {
        Value::Array(vec![
            self.0.ser_value(),
            self.1.ser_value(),
            self.2.ser_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn de_value(v: &Value) -> Result<(A, B, C), Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::de_value(&items[0])?,
                B::de_value(&items[1])?,
                C::de_value(&items[2])?,
            )),
            _ => Err(Error::custom("expected 3-element array")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn ser_value(&self) -> Value {
        let mut out = Map::new();
        for (k, v) in self {
            match k.ser_map_key() {
                Ok(key) => {
                    out.insert(key, v.ser_value());
                }
                Err(_) => return Value::Null,
            }
        }
        Value::Object(out)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn de_value(v: &Value) -> Result<BTreeMap<K, V>, Error> {
        match v {
            Value::Object(m) => {
                let mut out = BTreeMap::new();
                for (k, val) in m {
                    out.insert(K::de_map_key(k)?, V::de_value(val)?);
                }
                Ok(out)
            }
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn ser_value(&self) -> Value {
        let mut out = Map::new();
        for (k, v) in self {
            match k.ser_map_key() {
                Ok(key) => {
                    out.insert(key, v.ser_value());
                }
                Err(_) => return Value::Null,
            }
        }
        Value::Object(out)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn de_value(v: &Value) -> Result<HashMap<K, V, S>, Error> {
        match v {
            Value::Object(m) => {
                let mut out = HashMap::with_capacity_and_hasher(m.len(), S::default());
                for (k, val) in m {
                    out.insert(K::de_map_key(k)?, V::de_value(val)?);
                }
                Ok(out)
            }
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl Serialize for Value {
    fn ser_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn de_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}
