//! `qpp` — command-line interface to the QPPNet reproduction.
//!
//! Workflow:
//!
//! ```text
//! qpp generate   --workload tpch --sf 10 --queries 500 --out dataset.json
//! qpp train      --dataset dataset.json --epochs 100 --out model.json
//! qpp evaluate   --dataset dataset.json --model model.json
//! qpp predict    --dataset dataset.json --model model.json --query 3
//! qpp predict    --input plans.json --model model.json --engine program
//! qpp explain    --dataset dataset.json --query 3
//! qpp importance --dataset dataset.json --model model.json --top 15
//! qpp serve      --model model.json --addr 127.0.0.1:7878 --shards 4 --burst 8
//! ```
//!
//! `generate` writes an executed workload (plans with EXPLAIN-style
//! estimates and simulated EXPLAIN ANALYZE actuals); `train` fits a QPPNet
//! on the paper split and snapshots the model; `evaluate`/`predict`/
//! `importance` use the snapshot without retraining.
//!
//! `predict` has three modes: `--query N` scores one plan with a
//! per-operator breakdown; `--input plans.json` scores *every* plan
//! of a (possibly heterogeneous) batch through the chosen inference
//! engine — `program` (default) compiles the wavefront-batched
//! [`qpp::net::PlanProgram`], `classes` uses per-equivalence-class
//! evaluation — and reports throughput; `--input plans.json --stream W`
//! replays the batch as a **live admission stream** through the sharded
//! incremental path ([`qpp::net::ShardedStream`]): arrivals route by
//! content hash to `--shards` per-shard builders (default: the first
//! `--threads` entry), bursts of `--burst` concurrent requests coalesce
//! into one wavefront run via [`qpp::net::MicroBatcher`], and plans
//! retire once a sliding window of `W` resident plans is exceeded
//! (`--stream 0` never retires) — with per-shard
//! [`qpp::net::ProgramStats`] (CSE dedup ratio, feature-cache hit rate),
//! micro-batch coalescing stats and resident-executor pool stats
//! reported at the end. `--threads` takes a comma list of worker counts
//! (e.g. `--threads 1,2,4`; predictions use the first entry — thread
//! count never changes them), and `--repeat N` (N > 1) prints one
//! throughput table covering every engine × thread-count combination,
//! including precompiled steady-state serving and incremental admission,
//! so the README's scaling numbers reproduce with a single command.
//!
//! Extensions: `generate --max-mpl 8` produces a concurrent workload
//! (§8 future work), `train --load-aware true` exposes the system load as
//! a feature, and `train --threads N` runs both gradient sweeps across a
//! worker pool. Training runs on the differentiable wavefront engine by
//! default (one gemm per operator family per wavefront across the whole
//! shuffled batch — see DESIGN.md §9) and prints the run's
//! [`qpp::net::TrainStats`] line; `--train-engine classes` keeps the
//! per-equivalence-class arrangement (the §5.1 ablation layout and the
//! wavefront engine's differential oracle).
//!
//! `serve` turns a fitted snapshot into a long-running prediction daemon
//! ([`qpp::net::serve`]): resident [`qpp::net::ShardedStream`]s behind a
//! JSON-lines wire protocol (admit / retire / predict / admit_predict /
//! stats / shutdown) over TCP or `unix:` sockets, with `--burst W`
//! micro-batch coalescing of concurrent one-shot predictions and
//! multi-model tenancy via a comma-separated `--model` list. Drive it
//! with the `serve_load` bench bin for saturation curves.

use qpp::net::config::TrainEngine;
use qpp::net::{permutation_importance, InferEngine, QppConfig, QppNet};
use qpp::plansim::features::Featurizer;
use qpp::plansim::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage("missing subcommand");
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => return usage(&e),
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "train" => cmd_train(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "predict" => cmd_predict(&flags),
        "explain" => cmd_explain(&flags),
        "importance" => cmd_importance(&flags),
        "serve" => cmd_serve(&flags),
        "serve-stats" => cmd_serve_stats(&flags),
        other => Err(format!("unknown subcommand `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => usage(&e),
    }
}

fn usage(error: &str) -> ExitCode {
    eprintln!("error: {error}\n");
    eprintln!(
        "usage:\n\
         qpp generate   --workload tpch|tpcds --sf F --queries N --seed N --out FILE [--max-mpl N]\n\
         qpp train      --dataset FILE --out FILE [--epochs N] [--batch N] [--seed N]\n\
                        [--threads N] [--train-engine classes|program] [--load-aware true]\n\
         qpp evaluate   --dataset FILE --model FILE [--seed N]\n\
         qpp predict    --dataset FILE --model FILE --query N\n\
         qpp predict    --input FILE --model FILE [--engine classes|program]\n\
                        [--threads N[,N...]] [--repeat N] [--stream WINDOW]\n\
                        [--shards N] [--burst N]\n\
         qpp explain    --dataset FILE --query N\n\
         qpp importance --dataset FILE --model FILE [--seed N] [--top N]\n\
         qpp serve      --model FILE[,FILE...] [--addr HOST:PORT|unix:PATH]\n\
                        [--shards N] [--burst W] [--threads N] [--burst-wait-us U]\n\
                        [--fast-path 0|1] [--cache 0|1]\n\
         qpp serve-stats [--addr HOST:PORT|unix:PATH]"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{}`", args[i]))?;
        let value = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags.get(key).map(String::as_str).ok_or_else(|| format!("missing --{key}"))
}

fn get_or<'a>(flags: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or(default)
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: `{s}`"))
}

fn load_dataset(flags: &HashMap<String, String>) -> Result<Dataset, String> {
    let path = get(flags, "dataset")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))
}

fn load_model(flags: &HashMap<String, String>) -> Result<QppNet, String> {
    let path = get(flags, "model")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    QppNet::from_json(&json).map_err(|e| format!("parsing {path}: {e}"))
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let workload = match get_or(flags, "workload", "tpch") {
        "tpch" => Workload::TpcH,
        "tpcds" => Workload::TpcDs,
        other => return Err(format!("unknown workload `{other}` (tpch|tpcds)")),
    };
    let sf: f64 = parse(get_or(flags, "sf", "10"), "scale factor")?;
    let queries: usize = parse(get_or(flags, "queries", "500"), "query count")?;
    let seed: u64 = parse(get_or(flags, "seed", "42"), "seed")?;
    let max_mpl: u32 = parse(get_or(flags, "max-mpl", "1"), "max multiprogramming level")?;
    let out = get(flags, "out")?;

    eprintln!(
        "generating {queries} {} queries at sf {sf}{}...",
        workload.name(),
        if max_mpl > 1 { format!(" under MPL 1..={max_mpl}") } else { String::new() }
    );
    let ds = Dataset::generate_concurrent(workload, sf, queries, seed, max_mpl);
    let json = serde_json::to_string(&ds).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!(
        "wrote {out}: {} plans, {} operators, mean latency {:.1}s",
        ds.len(),
        ds.total_operators(),
        ds.mean_latency_ms(&(0..ds.len()).collect::<Vec<_>>()) / 1000.0
    );
    Ok(())
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = load_dataset(flags)?;
    let out = get(flags, "out")?;
    let seed: u64 = parse(get_or(flags, "seed", "42"), "seed")?;
    let mut config = QppConfig { seed, ..QppConfig::default() };
    config.epochs = parse(get_or(flags, "epochs", "100"), "epochs")?;
    config.batch_size = parse(get_or(flags, "batch", "256"), "batch size")?;
    config.threads = parse(get_or(flags, "threads", "1"), "thread count")?;
    config.train_engine = TrainEngine::parse(get_or(flags, "train-engine", "program"))
        .ok_or_else(|| "invalid --train-engine (classes|program)".to_string())?;
    let load_aware: bool = parse(get_or(flags, "load-aware", "false"), "load-aware flag")?;

    let split = ds.paper_split(seed);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);
    eprintln!("training on {} plans ({} held out)...", train.len(), test.len());

    let mut model = if load_aware {
        QppNet::with_featurizer(config, Featurizer::with_system_load(&ds.catalog))
    } else {
        QppNet::new(config, &ds.catalog)
    };
    let history = model.fit(&train);
    eprintln!(
        "trained {} epochs in {:.1}s ({} parameters, {} kernels)",
        history.train_loss.len(),
        history.total_seconds(),
        model.num_params(),
        qpp::nn::KernelTier::current()
    );
    eprintln!("{}", history.stats);

    if !test.is_empty() {
        let m = model.evaluate(&test);
        println!(
            "test metrics: relative error {:.1}%, MAE {:.2} min, R<=1.5 {:.0}%",
            m.relative_error_pct(),
            m.mae_minutes(),
            m.r_le_15 * 100.0
        );
    }

    std::fs::write(out, model.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("wrote model snapshot to {out}");
    Ok(())
}

fn cmd_evaluate(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = load_dataset(flags)?;
    let model = load_model(flags)?;
    let seed: u64 = parse(get_or(flags, "seed", "42"), "seed")?;
    let split = ds.paper_split(seed);
    let test = ds.select(&split.test);
    if test.is_empty() {
        return Err("empty test split".into());
    }
    let report = model.evaluate_stratified(&test);
    let m = &report.overall;
    println!("queries evaluated:   {}", m.count);
    println!("relative error:      {:.1}%", m.relative_error_pct());
    println!("mean absolute error: {:.2} min", m.mae_minutes());
    println!("RMSE:                {:.2} min", m.rmse_ms / 60_000.0);
    println!("R <= 1.5:            {:.0}%", m.r_le_15 * 100.0);
    println!("1.5 < R < 2:         {:.0}%", m.r_15_to_2 * 100.0);
    println!("R >= 2:              {:.0}%", m.r_ge_2 * 100.0);

    // Stratified breakdowns: a flat aggregate can hide a predictor that
    // is wrong exactly where admission control needs it (one operator
    // family, or the deep-plan stratum).
    println!("\nby operator family (descending MAE):");
    println!(
        "{:<14} {:>7} {:>12} {:>8} {:>9} {:>7} {:>8}",
        "family", "count", "MAE (ms)", "mean R", "median R", "p90 R", "R<=1.5"
    );
    for f in &report.families {
        println!(
            "{:<14} {:>7} {:>12.2} {:>8.2} {:>9.2} {:>7.2} {:>7.0}%",
            format!("{:?}", f.kind),
            f.count,
            f.mae_ms,
            f.mean_r,
            f.median_r,
            f.p90_r,
            f.r_le_15 * 100.0
        );
    }
    println!("\nby plan height (root predictions):");
    println!(
        "{:<7} {:>7} {:>12} {:>8} {:>9} {:>7} {:>8}",
        "height", "count", "MAE (min)", "mean R", "median R", "p90 R", "R<=1.5"
    );
    for h in &report.heights {
        println!(
            "{:<7} {:>7} {:>12.2} {:>8.2} {:>9.2} {:>7.2} {:>7.0}%",
            h.height,
            h.count,
            h.mae_ms / 60_000.0,
            h.mean_r,
            h.median_r,
            h.p90_r,
            h.r_le_15 * 100.0
        );
    }
    // Rank-based latency strata: equal query counts per row, so the
    // slow tail (where admission control lives) gets its own Q-error
    // instead of disappearing into the aggregate.
    println!("\nby actual-latency decile (0 = fastest tenth):");
    println!(
        "{:<7} {:>7} {:>21} {:>12} {:>8} {:>9} {:>7} {:>8}",
        "decile", "count", "latency range (s)", "MAE (min)", "mean R", "median R", "p90 R", "R<=1.5"
    );
    for d in &report.deciles {
        println!(
            "{:<7} {:>7} {:>21} {:>12.2} {:>8.2} {:>9.2} {:>7.2} {:>7.0}%",
            d.decile,
            d.count,
            format!("{:.1} - {:.1}", d.lo_ms / 1000.0, d.hi_ms / 1000.0),
            d.mae_ms / 60_000.0,
            d.mean_r,
            d.median_r,
            d.p90_r,
            d.r_le_15 * 100.0
        );
    }
    Ok(())
}

fn cmd_predict(flags: &HashMap<String, String>) -> Result<(), String> {
    if flags.contains_key("input") {
        return cmd_predict_batch(flags);
    }
    let ds = load_dataset(flags)?;
    let model = load_model(flags)?;
    let q: usize = parse(get(flags, "query")?, "query index")?;
    let plan = ds.plans.get(q).ok_or_else(|| format!("query {q} out of range"))?;
    let pred = model.predict(plan);
    println!("template:  {} q{}", plan.workload.name(), plan.template_id);
    println!("operators: {}", plan.node_count());
    println!("predicted: {:.2}s", pred / 1000.0);
    println!("actual:    {:.2}s", plan.latency_ms() / 1000.0);
    println!("R(q):      {:.2}", qpp::net::r_factor(plan.latency_ms(), pred));

    // Per-operator breakdown (post order, inclusive latencies).
    println!("\nper-operator breakdown (predicted vs actual, inclusive ms):");
    let per_op = model.predict_operators(plan);
    let nodes = plan.root.postorder();
    for (node, pred_ms) in nodes.iter().zip(&per_op) {
        println!(
            "  {:<24} {:>12.2} {:>12.2}",
            node.op.display_name(),
            pred_ms,
            node.actual.latency_ms
        );
    }
    Ok(())
}

/// `predict --input plans.json`: score a whole (heterogeneous) plan batch
/// through the chosen inference engine and report throughput.
fn cmd_predict_batch(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = get(flags, "input")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let ds: Dataset = serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))?;
    if ds.plans.is_empty() {
        return Err(format!("{path} contains no plans"));
    }
    let model = load_model(flags)?;
    let engine_flag = flags.get("engine").map(String::as_str);
    let engine = InferEngine::parse(engine_flag.unwrap_or("program"))
        .ok_or_else(|| "invalid --engine (classes|program)".to_string())?;
    let threads: Vec<usize> = get_or(flags, "threads", "1")
        .split(',')
        .map(|t| parse::<usize>(t, "thread count").and_then(|n| {
            if n == 0 { Err("invalid thread count: `0`".into()) } else { Ok(n) }
        }))
        .collect::<Result<_, _>>()?;
    let repeat: usize = parse(get_or(flags, "repeat", "1"), "repeat count")?;
    let repeat = repeat.max(1);
    // Predictions are printed once, from the requested engine at the first
    // thread count — by the engine's determinism contract every other row
    // of the throughput table produces the same numbers.
    let engine = engine.with_threads(threads[0]);

    // Structural validation up front: the input is user-supplied JSON, and
    // a malformed tree (wrong child count for an operator family) should
    // be a clean CLI error, not a library panic mid-compile.
    for plan in &ds.plans {
        let mut bad = None;
        plan.root.visit_postorder(&mut |n| {
            if n.children.len() != n.op.kind().arity() && bad.is_none() {
                bad = Some(format!(
                    "{:?} node with {} children (expected {})",
                    n.op.kind(),
                    n.children.len(),
                    n.op.kind().arity()
                ));
            }
        });
        if let Some(why) = bad {
            return Err(format!("{path}: malformed plan #{}: {why}", plan.query_id));
        }
    }

    if let Some(w) = flags.get("stream") {
        if engine_flag == Some("classes") {
            return Err("--stream uses the incremental program engine; drop --engine classes".into());
        }
        let window: usize = parse(w, "stream window")?;
        let shards: usize = parse(get_or(flags, "shards", &threads[0].to_string()), "shard count")?;
        if shards == 0 {
            return Err("invalid shard count: `0`".into());
        }
        let burst: usize = parse(get_or(flags, "burst", "1"), "burst width")?;
        if burst == 0 {
            return Err("invalid burst width: `0`".into());
        }
        return cmd_predict_stream(&ds, &model, window, threads[0], shards, burst, repeat);
    }

    let plans: Vec<&Plan> = ds.plans.iter().collect();
    let start = std::time::Instant::now();
    let preds = model.predict_batch_with(&plans, engine);
    let first_run = start.elapsed().as_secs_f64();
    for (plan, pred) in plans.iter().zip(&preds) {
        println!(
            "{} q{} #{}: predicted {:.2}s actual {:.2}s",
            plan.workload.name(),
            plan.template_id,
            plan.query_id,
            pred / 1000.0,
            plan.latency_ms() / 1000.0
        );
    }
    let shapes: std::collections::HashSet<String> =
        plans.iter().map(|p| p.signature()).collect();

    // Mean seconds per run of `f`, over `repeat` runs.
    let time = |f: &mut dyn FnMut()| {
        let start = std::time::Instant::now();
        for _ in 0..repeat {
            f();
        }
        start.elapsed().as_secs_f64() / repeat as f64
    };

    if repeat == 1 {
        // One-shot mode: report the timing of the run already printed
        // above — no extra pipeline pass just to hold a stopwatch.
        let elapsed = first_run;
        eprintln!(
            "engine {} ({} thread{}, {} kernels): {} plans ({} distinct shapes) in {:.2} ms -> {:.0} plans/s",
            engine.name(),
            engine.threads(),
            if engine.threads() == 1 { "" } else { "s" },
            qpp::nn::KernelTier::current(),
            plans.len(),
            shapes.len(),
            elapsed * 1e3,
            plans.len() as f64 / elapsed
        );
        return Ok(());
    }

    // `--repeat N` (N > 1): one table covering every engine × thread-count
    // combination (plus precompiled steady-state serving), so scaling
    // numbers reproduce with a single command. An explicit --engine flag
    // restricts the table to that engine.
    eprintln!(
        "\nthroughput, mean over {repeat} runs ({} plans, {} distinct shapes, {} kernels):",
        plans.len(),
        shapes.len(),
        qpp::nn::KernelTier::current()
    );
    eprintln!("{:<22} {:>7} {:>12} {:>10} {:>8}", "engine", "threads", "ms/batch", "plans/s", "vs 1st");
    let mut baseline = None;
    let mut report = |label: &str, t: usize, secs: f64| {
        let base = *baseline.get_or_insert(secs);
        eprintln!(
            "{:<22} {:>7} {:>12.2} {:>10.0} {:>7.2}x",
            label,
            t,
            secs * 1e3,
            plans.len() as f64 / secs,
            base / secs
        );
    };
    let only = engine_flag.map(|_| engine.name());
    if only.is_none() || only == Some("classes") {
        let secs = time(&mut || {
            let _ = model.predict_batch_with(&plans, InferEngine::Classes);
        });
        report("classes", 1, secs);
    }
    if only.is_none() || only == Some("program") {
        for &t in &threads {
            let secs = time(&mut || {
                let _ = model.predict_batch_with(&plans, InferEngine::Program { threads: t });
            });
            report("program", t, secs);
        }
        let mut compiled = model.compile_program(&plans);
        for &t in &threads {
            let secs = time(&mut || {
                let _ = model.predict_compiled_with(&mut compiled, t);
            });
            report("program precompiled", t, secs);
        }
        // Incremental admission churn: admit the whole batch into a
        // persistent streaming session, score it, retire it. Later
        // repeats run against a warm feature cache — exactly a live
        // stream's steady state.
        let mut stream = model.serve_stream();
        let mut ids = Vec::with_capacity(plans.len());
        for &t in &threads {
            let secs = time(&mut || {
                for plan in &plans {
                    ids.push(stream.admit(&plan.root));
                }
                let _ = stream.predict_roots_threaded(t);
                for id in ids.drain(..) {
                    stream.retire(id);
                }
            });
            report("program incremental", t, secs);
        }
        eprintln!("\nstream stats after churn: {}", stream.stats());
    }
    Ok(())
}

/// `predict --input plans.json --stream W`: replay the batch as a live
/// admission stream through the **sharded** serving path
/// ([`qpp::net::ShardedStream`]): arrivals are grouped into bursts of
/// `--burst` concurrent requests, each burst is admitted in parallel
/// across `--shards` per-shard builders (routed by plan content hash) and
/// scored in **one** coalesced wavefront run via the micro-batching front
/// door ([`qpp::net::MicroBatcher`]), then plans are retired once the
/// sliding window of `W` resident plans is exceeded (`W = 0` never
/// retires). `--repeat N` replays the stream N times against the same
/// session: the per-shard feature caches stay warm across passes, exactly
/// as they would across a long-lived server. Reports per-shard
/// [`qpp::net::ProgramStats`], micro-batch coalescing stats and the
/// resident executor's pool stats.
fn cmd_predict_stream(
    ds: &Dataset,
    model: &QppNet,
    window: usize,
    threads: usize,
    shards: usize,
    burst: usize,
    repeat: usize,
) -> Result<(), String> {
    let mut stream = model.serve_sharded(shards);
    let mut front = qpp::net::MicroBatcher::new();
    let mut resident = std::collections::VecDeque::new();
    let mut per_pass = Vec::with_capacity(repeat);
    let mut first_pass_preds = Vec::new();
    for pass in 0..repeat {
        let start = std::time::Instant::now();
        for chunk in ds.plans.chunks(burst) {
            for plan in chunk {
                front.submit(&plan.root);
            }
            let (ids, preds) = front.flush_resident(&mut stream, threads);
            if pass == 0 {
                // Collected and printed after the stopwatch — stdout must
                // not skew the per-arrival timing this mode exists to
                // report.
                first_pass_preds.extend(preds);
            }
            resident.extend(ids);
            while window > 0 && resident.len() > window {
                stream.retire(resident.pop_front().expect("window non-empty"));
            }
        }
        per_pass.push(start.elapsed().as_secs_f64());
        if pass == 0 {
            for (plan, pred) in ds.plans.iter().zip(first_pass_preds.drain(..)) {
                println!(
                    "{} q{} #{}: predicted {:.2}s actual {:.2}s",
                    plan.workload.name(),
                    plan.template_id,
                    plan.query_id,
                    pred / 1000.0,
                    plan.latency_ms() / 1000.0
                );
            }
        }
        if pass + 1 < repeat {
            // Drain the window so every pass replays the same arrivals
            // (the feature caches deliberately persist).
            while let Some(id) = resident.pop_front() {
                stream.retire(id);
            }
        }
    }
    let mean = per_pass.iter().sum::<f64>() / per_pass.len() as f64;
    eprintln!(
        "stream ({} thread{}, {} shard{}, burst {}, window {}): {} arrivals in {:.2} ms \
         -> {:.0} admissions/s{}",
        threads,
        if threads == 1 { "" } else { "s" },
        shards,
        if shards == 1 { "" } else { "s" },
        burst,
        window,
        ds.plans.len(),
        mean * 1e3,
        ds.plans.len() as f64 / mean,
        if repeat > 1 { format!(" (mean over {repeat} passes)") } else { String::new() }
    );
    for (i, st) in stream.shard_stats().iter().enumerate() {
        eprintln!("shard {i}: {st}");
    }
    eprintln!("aggregate: {}", stream.stats());
    eprintln!("micro-batch: {}", front.stats());
    eprintln!("executor pool: {}", qpp::nn::Executor::global().stats());
    Ok(())
}

fn cmd_importance(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = load_dataset(flags)?;
    let model = load_model(flags)?;
    let seed: u64 = parse(get_or(flags, "seed", "42"), "seed")?;
    let top: usize = parse(get_or(flags, "top", "15"), "top count")?;
    let split = ds.paper_split(seed);
    let test = ds.select(&split.test);
    if test.is_empty() {
        return Err("empty test split".into());
    }
    let imp = permutation_importance(&model, &test, seed);
    println!("{:<12} {:<36} {:>12}", "operator", "feature", "dMAE (ms)");
    for f in imp.iter().take(top) {
        println!("{:<12} {:<36} {:>12.2}", format!("{:?}", f.kind), f.label, f.delta_mae_ms);
    }
    Ok(())
}

fn cmd_explain(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = load_dataset(flags)?;
    let q: usize = parse(get(flags, "query")?, "query index")?;
    let plan = ds.plans.get(q).ok_or_else(|| format!("query {q} out of range"))?;
    println!("template:  {} q{} (query #{})", plan.workload.name(), plan.template_id, plan.query_id);
    println!("signature: {}", plan.signature());
    println!("{}", plan.explain());
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    use qpp::net::serve::{ServeAddr, ServeConfig, Server};

    let addr = ServeAddr::parse(get_or(flags, "addr", "127.0.0.1:7878"))?;
    let env_default = ServeConfig::default();
    let cfg = ServeConfig {
        shards: parse(get_or(flags, "shards", "1"), "shard count")?,
        threads: parse(get_or(flags, "threads", "1"), "thread count")?,
        burst: parse(get_or(flags, "burst", "1"), "burst width")?,
        burst_wait_us: parse(get_or(flags, "burst-wait-us", "200"), "burst wait")?,
        // --fast-path overrides the QPP_SERVE_FAST_PATH env default.
        fast_path: match flags.get("fast-path").map(String::as_str) {
            None => env_default.fast_path,
            Some("0") => false,
            Some("1") => true,
            Some(other) => return Err(format!("invalid --fast-path: `{other}` (want 0|1)")),
        },
        // --cache overrides the QPP_SERVE_CACHE env default.
        cache: match flags.get("cache").map(String::as_str) {
            None => env_default.cache,
            Some("0") => false,
            Some("1") => true,
            Some(other) => return Err(format!("invalid --cache: `{other}` (want 0|1)")),
        },
        ..env_default
    };
    if cfg.shards == 0 || cfg.threads == 0 || cfg.burst == 0 {
        return Err("--shards/--threads/--burst must be >= 1".into());
    }

    // One or more fitted model snapshots; the first is the default
    // tenant, the rest are addressable by fingerprint.
    let mut models = Vec::new();
    for path in get(flags, "model")?.split(',') {
        let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let model = QppNet::from_json(&json).map_err(|e| format!("parsing {path}: {e}"))?;
        if !model.is_fitted() {
            return Err(format!("{path}: model is not fitted"));
        }
        models.push((path.to_string(), model));
    }

    let mut server =
        Server::bind(&addr, cfg.clone()).map_err(|e| format!("binding {addr}: {e}"))?;
    for (path, model) in &models {
        let fp = server.register(model);
        println!("tenant {fp:016x} <- {path}");
    }
    println!(
        "qpp serve: listening on {} ({} shards, {} threads, burst {})",
        server.local_addr(),
        cfg.shards,
        cfg.threads,
        cfg.burst
    );
    println!(
        "kernel tier: {}; fast path: {}; prediction cache: {}",
        qpp::nn::KernelTier::current(),
        if cfg.fast_path && cfg.burst <= 1 {
            "on (zero-allocation one-shot predicts)"
        } else if cfg.fast_path {
            "off (burst coalescing takes precedence)"
        } else {
            "off"
        },
        if cfg.cache { "on (whole-plan memo)" } else { "off" }
    );
    println!("protocol: one JSON object per line; send {{\"v\":1,\"op\":\"shutdown\"}} to stop");
    server.run().map_err(|e| format!("serve loop failed: {e}"))
}

/// Connects to a running daemon, fetches the `stats` verb, and renders
/// the counters — including the fast path's per-phase latency breakdown
/// and the steady-state allocation counter.
fn cmd_serve_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    use qpp::net::serve::{Client, ServeAddr};

    let addr = ServeAddr::parse(get_or(flags, "addr", "127.0.0.1:7878"))?;
    let mut client = Client::connect(&addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    client
        .set_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    let s = client.stats().map_err(|e| format!("stats request failed: {e}"))?;

    println!("server:   {} connections, {} requests, {} errors", s.connections, s.requests, s.errors);
    println!(
        "plans:    {} admitted, {} retired, {} predicted ({} batches / {} batched requests)",
        s.admitted, s.retired, s.predicted, s.batches, s.batched_requests
    );
    println!(
        "resident: {} tenants, {} plans, {} logical nodes, {} shared rows",
        s.tenants, s.resident_plans, s.logical_nodes, s.shared_rows
    );
    println!("fast path: {} one-shot predicts served", s.fast_path_predicted);
    if s.fast_path_predicted > 0 {
        let per = |ns: u64| ns as f64 / s.fast_path_predicted as f64 / 1_000.0;
        println!(
            "  per-request: parse {:.1}us, featurize {:.1}us, run {:.1}us, serialize {:.1}us",
            per(s.parse_ns),
            per(s.featurize_ns),
            per(s.run_ns),
            per(s.serialize_ns)
        );
        println!("  steady-state allocations: {}", s.steady_allocs);
    }
    let probes = s.cache_hits + s.cache_misses;
    println!(
        "cache:    {} hits / {} misses ({:.0}% hit), {} entries, {} evicted",
        s.cache_hits,
        s.cache_misses,
        if probes == 0 { 0.0 } else { s.cache_hits as f64 / probes as f64 * 100.0 },
        s.cache_entries,
        s.cache_evictions
    );
    if s.cache_hits > 0 {
        println!(
            "  per-hit probe: {:.1}us",
            s.cache_hit_ns as f64 / s.cache_hits as f64 / 1_000.0
        );
    }
    Ok(())
}
