//! # qpp — facade crate for the QPPNet reproduction
//!
//! Re-exports the public API of the workspace crates so examples and
//! downstream users need a single dependency:
//!
//! * [`nn`] — dense neural-network substrate ([`qpp_nn`]).
//! * [`plansim`] — plan generator, optimizer-estimate model, latency
//!   simulator and TPC-H / TPC-DS style workloads ([`qpp_plansim`]).
//! * [`net`] — the paper's plan-structured neural network ([`qppnet`]).
//! * [`baselines`] — TAM / SVM / RBF comparators ([`qpp_baselines`]).
//! * [`ablation`] — the paper's §3 strawman architectures as working
//!   models ([`qpp_ablation`]).
//!
//! See `examples/quickstart.rs` for a 60-second tour and `DESIGN.md` for the
//! system inventory.

pub use qpp_ablation as ablation;
pub use qpp_baselines as baselines;
pub use qpp_nn as nn;
pub use qpp_plansim as plansim;
pub use qppnet as net;
