//! Compare QPPNet against the paper's three baselines (TAM, SVM, RBF) on a
//! TPC-H-style workload — a miniature of the paper's Figure 7a.
//!
//! ```text
//! cargo run --release --example compare_models
//! ```

use qpp::baselines::rbf::RbfModel;
use qpp::baselines::svm::SvmModel;
use qpp::baselines::tam::TamModel;
use qpp::baselines::LatencyModel;
use qpp::net::{evaluate, QppConfig, QppNet};
use qpp::plansim::prelude::*;

fn main() {
    let ds = Dataset::generate(Workload::TpcH, 10.0, 400, 1234);
    let split = ds.paper_split(5);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);
    let actual: Vec<f64> = test.iter().map(|p| p.latency_ms()).collect();
    println!("train: {} queries, test: {} queries\n", train.len(), test.len());

    println!(
        "{:>8}  {:>12}  {:>10}  {:>9}  {:>9}",
        "model", "rel. error", "MAE (min)", "R<=1.5", "train (s)"
    );

    // The three prior approaches, with their papers' feature access rules.
    let report = |name: &str, preds: Vec<f64>, secs: f64| {
        let m = evaluate(&actual, &preds);
        println!(
            "{:>8}  {:>11.1}%  {:>10.2}  {:>8.0}%  {:>9.2}",
            name,
            m.relative_error_pct(),
            m.mae_minutes(),
            m.r_le_15 * 100.0,
            secs
        );
    };

    let t = std::time::Instant::now();
    let mut tam = TamModel::new();
    tam.fit(&train);
    report("TAM", tam.predict_batch(&test), t.elapsed().as_secs_f64());

    let t = std::time::Instant::now();
    let mut svm = SvmModel::new(9);
    svm.fit(&train);
    report("SVM", svm.predict_batch(&test), t.elapsed().as_secs_f64());

    let t = std::time::Instant::now();
    let mut rbf = RbfModel::new();
    rbf.fit(&train);
    report("RBF", rbf.predict_batch(&test), t.elapsed().as_secs_f64());

    let t = std::time::Instant::now();
    let mut qpp = QppNet::new(
        QppConfig { epochs: 120, batch_size: 64, ..QppConfig::default() },
        &ds.catalog,
    );
    qpp.fit(&train);
    report("QPP Net", qpp.predict_batch(&test), t.elapsed().as_secs_f64());

    println!(
        "\nQPP Net trades training time for accuracy: it learns per-relation\n\
         effects and operator interactions that the hand-engineered feature\n\
         sets of the baselines cannot express (paper Section 6.1)."
    );
}
