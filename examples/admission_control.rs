//! Admission control with predicted latencies — the paper's opening
//! motivation (§1: "an important primitive for … admission control [51]").
//!
//! A database front end must reject queries that would miss a latency SLA.
//! With a perfect oracle it rejects exactly the SLA-violating queries; with
//! QPPNet it rejects queries whose *predicted* latency exceeds the SLA.
//! This example measures how close the learned policy gets to the oracle.
//!
//! ```text
//! cargo run --release --example admission_control
//! ```

use qpp::net::{QppConfig, QppNet};
use qpp::plansim::prelude::*;

fn main() {
    // Train on historical workload...
    let ds = Dataset::generate(Workload::TpcDs, 10.0, 500, 2024);
    let split = ds.split_random(0.3, 3);
    let train = ds.select(&split.train);
    let incoming = ds.select(&split.test);

    let mut model = QppNet::new(
        QppConfig { epochs: 100, batch_size: 64, ..QppConfig::default() },
        &ds.catalog,
    );
    println!("training admission controller on {} historical queries...", train.len());
    model.fit(&train);

    // ...then gate incoming queries on an SLA at the 75th percentile of
    // historical latency.
    let mut historical: Vec<f64> = train.iter().map(|p| p.latency_ms()).collect();
    historical.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let sla_ms = historical[historical.len() * 3 / 4];
    println!("SLA: {:.1}s ({}th percentile of history)\n", sla_ms / 1000.0, 75);

    let mut true_pos = 0usize; // correctly rejected
    let mut false_pos = 0usize; // wrongly rejected (lost work)
    let mut false_neg = 0usize; // wrongly admitted (SLA miss)
    let mut true_neg = 0usize; // correctly admitted
    for q in &incoming {
        let predicted = model.predict(q);
        let violates = q.latency_ms() > sla_ms;
        let rejected = predicted > sla_ms;
        match (violates, rejected) {
            (true, true) => true_pos += 1,
            (false, true) => false_pos += 1,
            (true, false) => false_neg += 1,
            (false, false) => true_neg += 1,
        }
    }

    let n = incoming.len() as f64;
    println!("admission decisions over {} incoming queries:", incoming.len());
    println!("  correctly rejected (SLA saves): {true_pos}");
    println!("  correctly admitted:             {true_neg}");
    println!("  false rejections (lost work):   {false_pos}");
    println!("  SLA misses let through:         {false_neg}");
    println!("  decision accuracy: {:.1}%", (true_pos + true_neg) as f64 / n * 100.0);

    // Compare against the naive policy of admitting everything.
    let violators = true_pos + false_neg;
    println!(
        "\nwithout prediction, all {} SLA-violating queries would have been\n\
         admitted; the QPPNet-gated policy caught {} of them ({:.0}%).",
        violators,
        true_pos,
        true_pos as f64 / (violators.max(1)) as f64 * 100.0
    );
}
