//! Architecture ablation: why *plan-structured* networks?
//!
//! ```text
//! cargo run --release --example ablation_comparison
//! ```
//!
//! Section 3 of the paper argues that three simpler neural designs fail at
//! query performance prediction: a flat plan-level DNN, a sparse
//! shared-unit DNN, and tree-structured recurrent networks from NLP. This
//! example trains all three (the `qpp-ablation` crate) next to QPP Net on
//! the same workload and prints the comparison, so the paper's argument
//! can be checked in about a minute.

use qpp::ablation::{AblationConfig, FlatDnn, SparseUnitDnn, TreeLstm};
use qpp::baselines::LatencyModel;
use qpp::net::{QppConfig, QppNet};
use qpp::plansim::prelude::*;

fn main() {
    println!("generating workload...");
    let ds = Dataset::generate(Workload::TpcH, 10.0, 400, 42);
    let split = ds.paper_split(7);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);
    let actuals: Vec<f64> = test.iter().map(|p| p.latency_ms()).collect();

    // Shared small-scale hyper-parameters so the example finishes quickly;
    // the `ablation` bench binary runs the full-size comparison.
    let ab = AblationConfig {
        hidden_units: 64,
        hidden_layers: 3,
        data_size: 16,
        epochs: 60,
        batch_size: 64,
        ..AblationConfig::default()
    };
    let qpp_cfg = QppConfig {
        hidden_units: 64,
        hidden_layers: 3,
        data_size: 16,
        epochs: 60,
        batch_size: 64,
        ..QppConfig::default()
    };

    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "model", "rel err (%)", "MAE (min)", "R≤1.5 (%)"
    );

    let report = |name: &str, preds: Vec<f64>| {
        let m = qpp::net::evaluate(&actuals, &preds);
        println!(
            "{:<22} {:>12.1} {:>12.2} {:>10.0}",
            name,
            m.relative_error_pct(),
            m.mae_ms / 60_000.0,
            m.r_le_15 * 100.0
        );
    };

    let mut flat = FlatDnn::new(ab.clone());
    flat.fit(&train);
    report("Flat DNN (§3)", flat.predict_batch(&test));

    let mut lstm = TreeLstm::new(ab.clone(), &ds.catalog);
    lstm.fit(&train);
    report("Tree-LSTM (§3/[49])", lstm.predict_batch(&test));

    let mut sparse = SparseUnitDnn::new(ab, &ds.catalog);
    sparse.fit(&train);
    report("Sparse shared unit", sparse.predict_batch(&test));

    let mut qpp = QppNet::new(qpp_cfg, &ds.catalog);
    qpp.fit(&train);
    report("QPP Net", qpp.predict_batch(&test));

    println!(
        "\nThe gaps isolate the paper's design choices: flat → no tree\n\
         structure; Tree-LSTM → branch-mixing recurrence; sparse unit →\n\
         no per-family weights. QPP Net keeps all three properties."
    );
}
