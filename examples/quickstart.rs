//! Quickstart: generate a workload, train QPPNet, predict query latencies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The pipeline mirrors the paper's experimental setup end to end:
//! 1. execute a TPC-H-style workload (simulated; see `qpp-plansim`),
//! 2. split train/test the way the paper does,
//! 3. fit a plan-structured neural network,
//! 4. predict latencies for unseen queries and report the paper's metrics.

use qpp::net::{QppConfig, QppNet};
use qpp::plansim::prelude::*;

fn main() {
    // 1. "Execute" 300 TPC-H queries at scale factor 10 from a cold cache.
    //    Every plan carries EXPLAIN-style estimates (model inputs) and
    //    EXPLAIN ANALYZE-style actuals (training targets).
    println!("generating workload...");
    let ds = Dataset::generate(Workload::TpcH, 10.0, 300, 42);
    println!(
        "  {} queries, {} operators total, mean latency {:.1}s",
        ds.len(),
        ds.total_operators(),
        ds.mean_latency_ms(&(0..ds.len()).collect::<Vec<_>>()) / 1000.0
    );

    // 2. The paper's TPC-H protocol: hold out 10% of queries.
    let split = ds.paper_split(7);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);

    // 3. Train a QPPNet. `QppConfig::default()` is the paper's
    //    architecture (5 hidden layers x 128 neurons per neural unit,
    //    d = 32, SGD lr 0.001 momentum 0.9) with a laptop-scale epoch
    //    count; `QppConfig::paper()` uses the full 1000 epochs.
    let config = QppConfig { epochs: 80, batch_size: 64, ..QppConfig::default() };
    let mut model = QppNet::new(config, &ds.catalog);
    println!("training on {} plans...", train.len());
    let history = model.fit(&train);
    println!(
        "  {} epochs in {:.1}s; {} trainable parameters",
        history.train_loss.len(),
        history.total_seconds(),
        model.num_params()
    );

    // 4. Predict latencies of unseen queries.
    println!("\nsample predictions (test set):");
    println!("{:>10} {:>12} {:>12} {:>8}", "query", "actual (s)", "predicted (s)", "R(q)");
    for plan in test.iter().take(8) {
        let predicted = model.predict(plan);
        let actual = plan.latency_ms();
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>8.2}",
            format!("q{}#{}", plan.template_id, plan.query_id),
            actual / 1000.0,
            predicted / 1000.0,
            qpp::net::r_factor(actual, predicted),
        );
    }

    let metrics = model.evaluate(&test);
    println!("\ntest metrics over {} queries:", metrics.count);
    println!("  relative error: {:.1}%", metrics.relative_error_pct());
    println!("  mean absolute error: {:.2} min", metrics.mae_minutes());
    println!(
        "  within factor 1.5 of truth: {:.0}% of queries",
        metrics.r_le_15 * 100.0
    );
}
