//! Concurrent-query prediction (the paper's §8 future work).
//!
//! ```text
//! cargo run --release --example concurrent_queries
//! ```
//!
//! Queries rarely run alone. This example generates a workload whose
//! queries execute under multiprogramming levels 1–8 (contended I/O,
//! polluted caches, a shrinking share of working memory) and shows that:
//!
//! 1. the paper's load-blind QPP Net degrades under load variance, and
//! 2. exposing the multiprogramming level as one extra feature per
//!    operator (`Featurizer::with_system_load`) recovers most of the gap —
//!    the integration style the paper suggests for external signals.

use qpp::net::{QppConfig, QppNet};
use qpp::plansim::features::Featurizer;
use qpp::plansim::prelude::*;

fn main() {
    println!("generating concurrent workload (MPL 1..=8)...");
    let ds = Dataset::generate_concurrent(Workload::TpcH, 10.0, 400, 42, 8);
    let split = ds.paper_split(7);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);

    // How much does load matter? Group mean latency by MPL.
    println!("\nmean latency by multiprogramming level:");
    let mut by_mpl: std::collections::BTreeMap<u64, (f64, usize)> = Default::default();
    for p in &ds.plans {
        let e = by_mpl.entry(p.root.concurrency as u64).or_insert((0.0, 0));
        e.0 += p.latency_ms();
        e.1 += 1;
    }
    for (mpl, (sum, n)) in &by_mpl {
        println!("  MPL {mpl}: {:>8.1}s over {n} queries", sum / *n as f64 / 1000.0);
    }

    let cfg = QppConfig { epochs: 80, batch_size: 64, ..QppConfig::default() };

    println!("\ntraining load-blind QPP Net (the paper's model)...");
    let mut blind = QppNet::new(cfg.clone(), &ds.catalog);
    blind.fit(&train);
    let blind_m = blind.evaluate(&test);

    println!("training load-aware QPP Net (+1 system-load feature per operator)...");
    let mut aware =
        QppNet::with_featurizer(cfg, Featurizer::with_system_load(&ds.catalog));
    aware.fit(&train);
    let aware_m = aware.evaluate(&test);

    println!("\n{:<22} {:>12} {:>12} {:>10}", "model", "rel err (%)", "MAE (min)", "R≤1.5 (%)");
    for (name, m) in [("QPP Net (load-blind)", &blind_m), ("QPP Net (load-aware)", &aware_m)] {
        println!(
            "{:<22} {:>12.1} {:>12.2} {:>10.0}",
            name,
            m.relative_error_pct(),
            m.mae_minutes(),
            m.r_le_15 * 100.0
        );
    }

    println!(
        "\nOne feature closes most of the gap: the network learns per-operator\n\
         interference (I/O-bound operators slow more, memory-hungry operators\n\
         start spilling) without any hand-built contention model."
    );
}
