//! Inspect what the model sees: EXPLAIN ANALYZE-style plan dumps, Table-2
//! feature vectors, and per-operator latency predictions.
//!
//! ```text
//! cargo run --release --example explain_plan
//! ```

use qpp::net::{QppConfig, QppNet};
use qpp::plansim::prelude::*;

fn main() {
    let ds = Dataset::generate(Workload::TpcH, 1.0, 120, 3);

    // Train a small model so per-operator predictions mean something.
    let train = ds.select(&(0..100).collect::<Vec<_>>());
    let mut model = QppNet::new(
        QppConfig { epochs: 60, batch_size: 32, ..QppConfig::default() },
        &ds.catalog,
    );
    model.fit(&train);

    // Pick a plan with a join for an interesting tree.
    let plan = ds.plans[100..]
        .iter()
        .find(|p| p.node_count() >= 6)
        .expect("a non-trivial plan");

    println!("template: TPC-H q{} (query #{})", plan.template_id, plan.query_id);
    println!("structure signature: {}\n", plan.signature());
    println!("EXPLAIN ANALYZE (simulated):\n{}", plan.explain());

    // Per-operator predictions vs. actuals, in post order.
    let per_op = model.predict_operators(plan);
    let nodes = plan.root.postorder();
    println!("per-operator predictions (post order):");
    println!("{:>4}  {:<22} {:>12} {:>12}", "#", "operator", "actual (ms)", "pred (ms)");
    for (i, (node, pred)) in nodes.iter().zip(&per_op).enumerate() {
        println!(
            "{i:>4}  {:<22} {:>12.2} {:>12.2}",
            node.op.display_name(),
            node.actual.latency_ms,
            pred
        );
    }

    // Raw Table-2 features of the root.
    let fz = Featurizer::new(&ds.catalog);
    let feats = fz.featurize(&plan.root);
    println!(
        "\nroot operator ({}) feature vector ({} values, {} numeric):",
        plan.root.op.display_name(),
        feats.len(),
        fz.numeric_mask(plan.root.op.kind()).iter().filter(|m| **m).count()
    );
    println!("{feats:.3?}");
}
