//! Where does a trained model's error live?
//!
//! ```text
//! cargo run --release --example error_analysis
//! ```
//!
//! Aggregate metrics (relative error, MAE) say *how much* a predictor is
//! wrong; production use needs *where*: which operator's neural unit
//! misses, and whether the model is calibrated across the five orders of
//! magnitude query latencies span. Plan-structured models expose
//! per-operator predictions, so both questions are answerable — this
//! example runs `qpp::net::analysis` and the permutation-importance
//! report on a freshly trained model.

use qpp::net::{calibration, error_by_family, permutation_importance, QppConfig, QppNet};
use qpp::plansim::prelude::*;

fn main() {
    println!("generating workload + training...");
    let ds = Dataset::generate(Workload::TpcH, 10.0, 300, 42);
    let split = ds.paper_split(7);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);

    let mut model = QppNet::new(
        QppConfig { epochs: 80, batch_size: 64, ..QppConfig::default() },
        &ds.catalog,
    );
    model.fit(&train);
    let m = model.evaluate(&test);
    println!(
        "test: relative error {:.1}%, MAE {:.2} min, median R {:.2}\n",
        m.relative_error_pct(),
        m.mae_minutes(),
        m.median_r
    );

    // 1. Which neural unit carries the error?
    println!("error by operator family (inclusive latency predictions):");
    println!("{:<12} {:>9} {:>11} {:>8} {:>7}", "family", "instances", "MAE (min)", "mean R", "R<=1.5");
    for f in error_by_family(&model, &test) {
        println!(
            "{:<12} {:>9} {:>11.2} {:>8.2} {:>6.0}%",
            format!("{:?}", f.kind),
            f.count,
            f.mae_ms / 60_000.0,
            f.mean_r,
            f.r_le_15 * 100.0
        );
    }

    // 2. Is the model calibrated across latency magnitudes?
    println!("\ncalibration by actual-latency decade (bias > 1 = over-prediction):");
    println!("{:<14} {:>5} {:>14} {:>13} {:>6}", "actual range", "n", "mean actual", "mean pred", "bias");
    for b in calibration(&model, &test) {
        println!(
            "{:<14} {:>5} {:>12.1}min {:>11.1}min {:>6.2}",
            format!("{:.0}..{:.0}s", b.lo_ms / 1000.0, b.hi_ms / 1000.0),
            b.count,
            b.mean_actual_ms / 60_000.0,
            b.mean_predicted_ms / 60_000.0,
            b.mean_bias
        );
    }

    // 3. Which inputs does the network actually use?
    println!("\ntop-10 features by permutation importance:");
    for f in permutation_importance(&model, &test, 1).iter().take(10) {
        println!(
            "  {:<10} {:<34} ΔMAE {:+.2} min",
            format!("{:?}", f.kind),
            f.label,
            f.delta_mae_ms / 60_000.0
        );
    }
}
