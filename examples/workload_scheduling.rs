//! Shortest-job-first scheduling with predicted latencies — the paper's
//! resource-management motivation (§1: "resource management [48],
//! maintaining SLAs [8, 31]").
//!
//! Mean *waiting time* on a single execution queue is minimized by running
//! short queries first — but the scheduler only knows latencies *after*
//! running the queries, unless it can predict them. This example compares
//! total waiting time under four policies: arrival order (FIFO), random,
//! QPPNet-predicted SJF, and oracle SJF.
//!
//! ```text
//! cargo run --release --example workload_scheduling
//! ```

use qpp::net::{QppConfig, QppNet};
use qpp::plansim::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Mean waiting time (seconds) if queries run in the given order.
fn mean_wait_s(order: &[usize], latency_ms: &[f64]) -> f64 {
    let mut clock = 0.0;
    let mut total_wait = 0.0;
    for &q in order {
        total_wait += clock;
        clock += latency_ms[q];
    }
    total_wait / order.len() as f64 / 1000.0
}

fn main() {
    let ds = Dataset::generate(Workload::TpcH, 10.0, 400, 77);
    let split = ds.split_random(0.2, 9);
    let train = ds.select(&split.train);
    let queue = ds.select(&split.test);
    let latencies: Vec<f64> = queue.iter().map(|p| p.latency_ms()).collect();

    println!("training latency predictor on {} historical queries...", train.len());
    let mut model = QppNet::new(
        QppConfig { epochs: 100, batch_size: 64, ..QppConfig::default() },
        &ds.catalog,
    );
    model.fit(&train);
    let predicted = model.predict_batch(&queue);

    let n = queue.len();
    let fifo: Vec<usize> = (0..n).collect();

    let mut random = fifo.clone();
    random.shuffle(&mut rand::rngs::StdRng::seed_from_u64(1));

    let mut sjf_predicted = fifo.clone();
    sjf_predicted.sort_by(|&a, &b| predicted[a].partial_cmp(&predicted[b]).unwrap());

    let mut sjf_oracle = fifo.clone();
    sjf_oracle.sort_by(|&a, &b| latencies[a].partial_cmp(&latencies[b]).unwrap());

    let fifo_wait = mean_wait_s(&fifo, &latencies);
    let random_wait = mean_wait_s(&random, &latencies);
    let pred_wait = mean_wait_s(&sjf_predicted, &latencies);
    let oracle_wait = mean_wait_s(&sjf_oracle, &latencies);

    println!("\nmean waiting time over a queue of {n} queries:");
    println!("  FIFO (arrival order):   {fifo_wait:>9.1}s");
    println!("  random order:           {random_wait:>9.1}s");
    println!("  SJF on QPPNet estimate: {pred_wait:>9.1}s");
    println!("  SJF oracle (true time): {oracle_wait:>9.1}s");

    let captured = (fifo_wait - pred_wait) / (fifo_wait - oracle_wait) * 100.0;
    println!(
        "\nQPPNet-driven scheduling captures {captured:.0}% of the oracle's\n\
         improvement over FIFO without executing a single query in advance."
    );
    assert!(pred_wait <= fifo_wait, "predicted SJF should beat FIFO");
}
