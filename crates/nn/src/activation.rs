//! Activation functions and their derivatives.
//!
//! The paper uses rectified linear units (ReLU, Glorot et al. \[12\]) inside
//! every neural unit. The other activations are provided for ablations and
//! for the baselines' internals.

use serde::{Deserialize, Serialize};

/// Slope of the negative branch of [`Activation::LeakyRelu`].
pub const LEAKY_SLOPE: f32 = 0.01;

/// A differentiable elementwise nonlinearity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, z)` — the paper's choice for all hidden layers.
    Relu,
    /// `max(0.01·z, z)`; avoids dead units in very deep stacks.
    LeakyRelu,
    /// Logistic sigmoid `1 / (1 + e^{-z})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (used by output layers producing unconstrained latencies).
    Identity,
}

impl Activation {
    /// Applies the activation to a pre-activation value.
    #[inline]
    pub fn apply(self, z: f32) -> f32 {
        match self {
            Activation::Relu => z.max(0.0),
            Activation::LeakyRelu => {
                if z >= 0.0 {
                    z
                } else {
                    LEAKY_SLOPE * z
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-z).exp()),
            Activation::Tanh => z.tanh(),
            Activation::Identity => z,
        }
    }

    /// Derivative with respect to the pre-activation `z`.
    #[inline]
    pub fn derivative(self, z: f32) -> f32 {
        match self {
            Activation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if z >= 0.0 {
                    1.0
                } else {
                    LEAKY_SLOPE
                }
            }
            Activation::Sigmoid => {
                let s = self.apply(z);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = z.tanh();
                1.0 - t * t
            }
            Activation::Identity => 1.0,
        }
    }

    /// Derivative with respect to the pre-activation, computed **from the
    /// activation output** `a = apply(z)` instead of `z`.
    ///
    /// Every activation in this crate admits this form (ReLU-family
    /// outputs preserve the sign information the derivative needs; sigmoid
    /// and tanh derivatives are textbook functions of their output), and
    /// it is what lets the wavefront training tape record only layer
    /// *activations* — halving tape memory versus caching pre-activations
    /// alongside. For ReLU and Identity (the units' activations) this
    /// agrees with [`Activation::derivative`] **exactly everywhere**,
    /// kink included: `a > 0 ⟺ z > 0`. For LeakyRelu the agreement has
    /// one unreachable-in-practice hole: a negative `z` tiny enough that
    /// `0.01·z` underflows to `-0.0` (|z| below ~7e-44, deep subnormal
    /// territory) is indistinguishable from `z = -0.0` in the output, and
    /// this function returns the `z = -0.0` answer (slope 1).
    #[inline]
    pub fn derivative_from_output(self, a: f32) -> f32 {
        match self {
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            // Negative pre-activations map to negative outputs (slope
            // 0.01 preserves sign down to the subnormal-underflow hole
            // documented above); `±0.0 >= 0.0` is true for both zeros,
            // matching `derivative`'s `z >= 0.0` at `z = ±0.0`.
            Activation::LeakyRelu => {
                if a >= 0.0 {
                    1.0
                } else {
                    LEAKY_SLOPE
                }
            }
            Activation::Sigmoid => a * (1.0 - a),
            Activation::Tanh => 1.0 - a * a,
            Activation::Identity => 1.0,
        }
    }
}

/// Fused activation backward: `d ⊙= act'(z)` computed from the recorded
/// *activations* `a` (see [`Activation::derivative_from_output`]) — the
/// reverse-mode mirror of the fused serving forward
/// [`crate::Matrix::matmul_bias_act_into`], which never materializes
/// pre-activations either. Identity is a no-op (no pass over `d` at all).
///
/// # Panics
/// Panics on shape mismatch, naming both shapes.
pub fn activation_backward_inplace(d: &mut crate::Matrix, a: &crate::Matrix, act: Activation) {
    // Shape-check before the Identity fast path: identity output layers
    // are the most common call site, and a mis-paired gradient buffer
    // must fail here with named shapes, not downstream in a gemm.
    assert!(
        d.rows() == a.rows() && d.cols() == a.cols(),
        "activation backward shape mismatch: grads {}x{}, activations {}x{}",
        d.rows(),
        d.cols(),
        a.rows(),
        a.cols()
    );
    if act == Activation::Identity {
        return;
    }
    for (dv, &av) in d.as_mut_slice().iter_mut().zip(a.as_slice()) {
        *dv *= act.derivative_from_output(av);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relu_clamps_negative_values() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
    }

    #[test]
    fn sigmoid_is_centered_at_half() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn identity_derivative_is_one() {
        assert_eq!(Activation::Identity.derivative(123.0), 1.0);
    }

    /// Central-difference check of every activation derivative.
    fn numeric_derivative(act: Activation, z: f32) -> f32 {
        let h = 1e-3;
        (act.apply(z + h) - act.apply(z - h)) / (2.0 * h)
    }

    proptest! {
        /// `derivative_from_output(apply(z))` must agree with
        /// `derivative(z)` at every representable point of this range —
        /// including ReLU-family kinks — or the tape backward (which
        /// records activations only) would silently diverge from the
        /// cached-preactivation backward. (LeakyRelu's documented
        /// subnormal-underflow hole sits ~40 orders of magnitude below
        /// this sample range.)
        #[test]
        fn derivative_from_output_matches_derivative(
            z in -4.0f32..4.0,
            which in 0usize..5,
        ) {
            let act = [
                Activation::Relu,
                Activation::LeakyRelu,
                Activation::Sigmoid,
                Activation::Tanh,
                Activation::Identity,
            ][which];
            let from_z = act.derivative(z);
            let from_a = act.derivative_from_output(act.apply(z));
            // Sigmoid/tanh recompute through their output; allow rounding.
            prop_assert!((from_z - from_a).abs() <= 1e-6 * (1.0 + from_z.abs()),
                "{act:?} at {z}: from z {from_z} vs from output {from_a}");
        }

        #[test]
        fn derivatives_match_numeric(
            z in -4.0f32..4.0,
            which in 0usize..5,
        ) {
            let act = [
                Activation::Relu,
                Activation::LeakyRelu,
                Activation::Sigmoid,
                Activation::Tanh,
                Activation::Identity,
            ][which];
            // ReLU-family derivatives are discontinuous at 0; skip the kink.
            prop_assume!(z.abs() > 1e-2);
            let analytic = act.derivative(z);
            let numeric = numeric_derivative(act, z);
            prop_assert!((analytic - numeric).abs() < 1e-2,
                "{act:?} at {z}: analytic {analytic} vs numeric {numeric}");
        }
    }
}
