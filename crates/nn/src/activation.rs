//! Activation functions and their derivatives.
//!
//! The paper uses rectified linear units (ReLU, Glorot et al. \[12\]) inside
//! every neural unit. The other activations are provided for ablations and
//! for the baselines' internals.

use serde::{Deserialize, Serialize};

/// Slope of the negative branch of [`Activation::LeakyRelu`].
pub const LEAKY_SLOPE: f32 = 0.01;

/// A differentiable elementwise nonlinearity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, z)` — the paper's choice for all hidden layers.
    Relu,
    /// `max(0.01·z, z)`; avoids dead units in very deep stacks.
    LeakyRelu,
    /// Logistic sigmoid `1 / (1 + e^{-z})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (used by output layers producing unconstrained latencies).
    Identity,
}

impl Activation {
    /// Applies the activation to a pre-activation value.
    #[inline]
    pub fn apply(self, z: f32) -> f32 {
        match self {
            Activation::Relu => z.max(0.0),
            Activation::LeakyRelu => {
                if z >= 0.0 {
                    z
                } else {
                    LEAKY_SLOPE * z
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-z).exp()),
            Activation::Tanh => z.tanh(),
            Activation::Identity => z,
        }
    }

    /// Derivative with respect to the pre-activation `z`.
    #[inline]
    pub fn derivative(self, z: f32) -> f32 {
        match self {
            Activation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if z >= 0.0 {
                    1.0
                } else {
                    LEAKY_SLOPE
                }
            }
            Activation::Sigmoid => {
                let s = self.apply(z);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = z.tanh();
                1.0 - t * t
            }
            Activation::Identity => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relu_clamps_negative_values() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
    }

    #[test]
    fn sigmoid_is_centered_at_half() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn identity_derivative_is_one() {
        assert_eq!(Activation::Identity.derivative(123.0), 1.0);
    }

    /// Central-difference check of every activation derivative.
    fn numeric_derivative(act: Activation, z: f32) -> f32 {
        let h = 1e-3;
        (act.apply(z + h) - act.apply(z - h)) / (2.0 * h)
    }

    proptest! {
        #[test]
        fn derivatives_match_numeric(
            z in -4.0f32..4.0,
            which in 0usize..5,
        ) {
            let act = [
                Activation::Relu,
                Activation::LeakyRelu,
                Activation::Sigmoid,
                Activation::Tanh,
                Activation::Identity,
            ][which];
            // ReLU-family derivatives are discontinuous at 0; skip the kink.
            prop_assume!(z.abs() > 1e-2);
            let analytic = act.derivative(z);
            let numeric = numeric_derivative(act, z);
            prop_assert!((analytic - numeric).abs() < 1e-2,
                "{act:?} at {z}: analytic {analytic} vs numeric {numeric}");
        }
    }
}
