//! Row-major `f32` matrices with the kernels reverse-mode autodiff needs.
//!
//! The QPPNet training loop spends essentially all of its time in four
//! kernels: `X·W` (forward), `dZ·Wᵀ` (input gradient), `Xᵀ·dZ` (weight
//! gradient) and horizontal concatenation / column slicing (assembling and
//! splitting neural-unit inputs). Each is implemented directly on the
//! row-major buffer with loop orders chosen for sequential access, following
//! the usual `ikj` blocking advice.

use serde::{Deserialize, Serialize};

/// A dense row-major `f32` matrix.
///
/// Rows are samples (batch dimension) and columns are features throughout
/// this workspace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match dimensions");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices (all rows must share a length).
    ///
    /// # Panics
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Creates a single-row matrix from a slice.
    pub fn from_row(row: &[f32]) -> Self {
        Matrix { rows: 1, cols: row.len(), data: row.to_vec() }
    }

    /// Creates a single-column matrix from a slice.
    pub fn from_col(col: &[f32]) -> Self {
        Matrix { rows: col.len(), cols: 1, data: col.to_vec() }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element count (`rows * cols`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Writes element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrows row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrows the whole row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the whole row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Extracts column `j` as an owned vector.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(j < self.cols, "column out of range");
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Matrix product `self · other` (`n×k · k×m = n×m`).
    ///
    /// Loop order is `ikj`, so both the `other` row and the output row are
    /// traversed sequentially; zero left-operands (common after ReLU) are
    /// skipped.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let oc = other.cols;
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * oc..(i + 1) * oc];
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * oc..(k + 1) * oc];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` (`n×k · m×k = n×m`) without materializing a transpose.
    ///
    /// Used for the input gradient `dX = dZ · Wᵀ` when weights are stored
    /// `in×out`.
    pub fn matmul_a_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_a_bt dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// `selfᵀ · other` (`n×r`ᵀ `· n×c = r×c`) without materializing a
    /// transpose; accumulates into `out` (callers reuse gradient buffers).
    ///
    /// Used for the weight gradient `dW += Xᵀ · dZ`.
    pub fn matmul_at_b_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "matmul_at_b row mismatch");
        assert_eq!(out.rows, self.cols, "matmul_at_b out rows mismatch");
        assert_eq!(out.cols, other.cols, "matmul_at_b out cols mismatch");
        let oc = other.cols;
        for n in 0..self.rows {
            let arow = self.row(n);
            let brow = &other.data[n * oc..(n + 1) * oc];
            for (r, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[r * oc..(r + 1) * oc];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
    }

    /// `selfᵀ · other`, allocating the output.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_at_b_into(other, &mut out);
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Adds `row` to every row in place (bias broadcast).
    pub fn add_row_inplace(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "broadcast row length mismatch");
        for i in 0..self.rows {
            for (o, &b) in self.row_mut(i).iter_mut().zip(row) {
                *o += b;
            }
        }
    }

    /// Column sums (used for bias gradients), accumulated into `out`.
    pub fn col_sum_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "col_sum output length mismatch");
        for i in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
    }

    /// `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(self.rows, other.rows, "add_scaled shape mismatch");
        assert_eq!(self.cols, other.cols, "add_scaled shape mismatch");
        for (o, &v) in self.data.iter_mut().zip(&other.data) {
            *o += scale * v;
        }
    }

    /// Element-wise (Hadamard) product: `self ⊙ other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul_elem(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "mul_elem shape mismatch");
        assert_eq!(self.cols, other.cols, "mul_elem shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise product in place: `self ⊙= other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul_elem_inplace(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "mul_elem shape mismatch");
        assert_eq!(self.cols, other.cols, "mul_elem shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale_inplace(&mut self, scale: f32) {
        for v in &mut self.data {
            *v *= scale;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Horizontally concatenates matrices that share a row count.
    ///
    /// # Panics
    /// Panics if `parts` is empty or row counts differ.
    pub fn hcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hcat of zero matrices");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let orow = out.row_mut(i);
            let mut off = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hcat row count mismatch");
                orow[off..off + p.cols].copy_from_slice(p.row(i));
                off += p.cols;
            }
        }
        out
    }

    /// Copies columns `[start, start+width)` into a new matrix.
    pub fn slice_cols(&self, start: usize, width: usize) -> Matrix {
        assert!(start + width <= self.cols, "column slice out of range");
        let mut out = Matrix::zeros(self.rows, width);
        for i in 0..self.rows {
            let src = &self.row(i)[start..start + width];
            out.row_mut(i).copy_from_slice(src);
        }
        out
    }

    /// Gathers the given rows into a new matrix (row `k` of the output is
    /// row `indices[k]` of `self`).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            assert!(i < self.rows, "gather_rows index out of range");
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn zeros_has_expected_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_round_trips_elements() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.5, -2.0, 0.25], &[0.0, 3.0, 9.0]]);
        let id = Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hcat_concatenates_columns() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = Matrix::hcat(&[&a, &b]);
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_cols_inverts_hcat() {
        let a = Matrix::from_rows(&[&[1.0, 9.0], &[2.0, 8.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[5.0]]);
        let c = Matrix::hcat(&[&a, &b]);
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 1), b);
    }

    #[test]
    fn gather_rows_picks_rows_in_order() {
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.col(0), vec![2.0, 0.0, 2.0]);
    }

    #[test]
    fn add_row_broadcasts_bias() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_inplace(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn col_sum_accumulates() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut out = vec![10.0, 0.0];
        a.col_sum_into(&mut out);
        assert_eq!(out, vec![14.0, 6.0]);
    }

    proptest! {
        #[test]
        fn matmul_matches_naive(
            n in 1usize..6, k in 1usize..6, m in 1usize..6,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Matrix::from_fn(n, k, |_, _| rng.gen_range(-2.0..2.0));
            let b = Matrix::from_fn(k, m, |_, _| rng.gen_range(-2.0..2.0));
            prop_assert!(approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-5));
        }

        #[test]
        fn matmul_a_bt_matches_explicit_transpose(
            n in 1usize..6, k in 1usize..6, m in 1usize..6,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Matrix::from_fn(n, k, |_, _| rng.gen_range(-2.0..2.0));
            let b = Matrix::from_fn(m, k, |_, _| rng.gen_range(-2.0..2.0));
            prop_assert!(approx_eq(&a.matmul_a_bt(&b), &a.matmul(&b.transpose()), 1e-4));
        }

        #[test]
        fn matmul_at_b_matches_explicit_transpose(
            n in 1usize..6, r in 1usize..6, c in 1usize..6,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Matrix::from_fn(n, r, |_, _| rng.gen_range(-2.0..2.0));
            let b = Matrix::from_fn(n, c, |_, _| rng.gen_range(-2.0..2.0));
            prop_assert!(approx_eq(&a.matmul_at_b(&b), &a.transpose().matmul(&b), 1e-4));
        }

        #[test]
        fn hcat_then_slice_round_trips(
            rows in 1usize..5, c1 in 1usize..5, c2 in 1usize..5,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Matrix::from_fn(rows, c1, |_, _| rng.gen_range(-1.0..1.0));
            let b = Matrix::from_fn(rows, c2, |_, _| rng.gen_range(-1.0..1.0));
            let cat = Matrix::hcat(&[&a, &b]);
            prop_assert_eq!(cat.slice_cols(0, c1), a);
            prop_assert_eq!(cat.slice_cols(c1, c2), b);
        }
    }
}
