//! Row-major `f32` matrices with the kernels reverse-mode autodiff needs.
//!
//! The QPPNet training loop spends essentially all of its time in four
//! kernels: `X·W` (forward), `dZ·Wᵀ` (input gradient), `Xᵀ·dZ` (weight
//! gradient) and horizontal concatenation / column slicing (assembling and
//! splitting neural-unit inputs). Each is implemented directly on the
//! row-major buffer with loop orders chosen for sequential access, following
//! the usual `ikj` blocking advice.

use serde::{Deserialize, Serialize};

/// A dense row-major `f32` matrix.
///
/// Rows are samples (batch dimension) and columns are features throughout
/// this workspace.
///
/// # Bounds-checking contract
///
/// Every method checks its preconditions, in one of two tiers:
///
/// * **element/row accessors** (`get`, `set`, `row`, `row_mut`) are on the
///   innermost hot path and `debug_assert!` their bounds with messages that
///   name the offending index and dimension; release builds fall back to
///   the underlying slice's bounds check (still a panic, never UB);
/// * **shape-checked kernels** (`matmul*`, `hcat`, `slice_cols`,
///   `gather_rows*`, `scatter_rows_into`, `add_scaled`, …) `assert!` their
///   shape preconditions unconditionally, with messages that name both
///   operand shapes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match dimensions");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices (all rows must share a length).
    ///
    /// # Panics
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Creates a single-row matrix from a slice.
    pub fn from_row(row: &[f32]) -> Self {
        Matrix { rows: 1, cols: row.len(), data: row.to_vec() }
    }

    /// Creates a single-column matrix from a slice.
    pub fn from_col(col: &[f32]) -> Self {
        Matrix { rows: col.len(), cols: 1, data: col.to_vec() }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element count (`rows * cols`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `(i, j)`.
    ///
    /// # Panics
    /// Debug-asserted bounds (hot path); release builds panic via the slice
    /// index without the named message.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "element ({i}, {j}) out of range for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[i * self.cols + j]
    }

    /// Writes element `(i, j)`.
    ///
    /// # Panics
    /// Debug-asserted bounds (hot path); release builds panic via the slice
    /// index without the named message.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(
            i < self.rows && j < self.cols,
            "element ({i}, {j}) out of range for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[i * self.cols + j] = v;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    /// Debug-asserted bounds (hot path); release builds panic via the range
    /// slice without the named message.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows, "row {i} out of range for {}x{} matrix", self.rows, self.cols);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    ///
    /// # Panics
    /// Debug-asserted bounds (hot path); release builds panic via the range
    /// slice without the named message.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows, "row {i} out of range for {}x{} matrix", self.rows, self.cols);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrows the whole row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the whole row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Extracts column `j` as an owned vector.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(j < self.cols, "column out of range");
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Matrix product `self · other` (`n×k · k×m = n×m`).
    ///
    /// Loop order is `ikj`, so both the `other` row and the output row are
    /// traversed sequentially; zero left-operands (common after ReLU) are
    /// skipped.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.assert_matmul_shapes(other);
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_accumulate(other, &mut out);
        out
    }

    /// Matrix product `self · other`, written into `out` (overwritten, not
    /// accumulated). The allocation-free twin of [`Matrix::matmul`] for
    /// callers that reuse buffers (the serving forward uses the fused
    /// [`Matrix::matmul_bias_act_into`] instead, which also folds in bias
    /// and activation).
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows` or `out` is not
    /// `self.rows × other.cols`, naming the offending shapes.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        self.assert_matmul_shapes(other);
        assert!(
            out.rows == self.rows && out.cols == other.cols,
            "matmul output shape mismatch: got {}x{}, need {}x{}",
            out.rows,
            out.cols,
            self.rows,
            other.cols
        );
        out.fill_zero();
        self.matmul_accumulate(other, out);
    }

    #[inline]
    fn assert_matmul_shapes(&self, other: &Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
    }

    /// The shared `ikj` accumulation core: `out += self · other`, assuming
    /// shapes already checked and `out` already initialized (zeros for a
    /// plain product). Skips zero left-operands (common after ReLU).
    fn matmul_accumulate(&self, other: &Matrix, out: &mut Matrix) {
        let oc = other.cols;
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * oc..(i + 1) * oc];
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * oc..(k + 1) * oc];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
    }

    /// Fused dense-layer forward: `out = act(self · w + bias)`, written
    /// into `out` (overwritten). Each output row is *initialized with the
    /// bias* instead of zero, accumulated, then activated in place — one
    /// pass fewer over `out` than `matmul_into` + broadcast + map.
    ///
    /// This is the serving-engine gemm: when the CPU supports AVX2+FMA
    /// (checked once at runtime; the build stays portable baseline
    /// x86-64) a register-blocked 4-row microkernel is used — the
    /// wavefront scheduler exists precisely to assemble such multi-row
    /// batches, which the per-class path's tiny per-position gemms cannot
    /// exploit. Results may differ from the scalar path by FMA rounding
    /// (≤ a few ULP per accumulation chain); the differential suite bounds
    /// the end-to-end effect at `1e-5` relative.
    ///
    /// **Row invariance:** within one process, a given input row produces
    /// bit-identical output no matter how many other rows share the batch
    /// or where in the batch it sits. The 4-row block and the single-row
    /// remainder kernel execute the *same per-row operation sequence*
    /// (same column tiling, same ascending-`k` FMA chain), so splitting,
    /// merging or reordering batch rows never changes any row's bits. The
    /// incremental serving engine (`qppnet::stream`) relies on this to
    /// keep admit/retire re-chunking bit-identical to a fresh compile; a
    /// property test below pins it down. Two caveats, both unreachable
    /// with healthy models: a bias lane of literal `-0.0` could flip to
    /// `+0.0` on an all-zero input row in the blocked path (initializers
    /// and optimizer steps only ever produce `+0.0`), and weights must be
    /// finite — the block skips a `k` only when all four lanes are zero,
    /// so a zero input against an `Inf`/`NaN` weight would contribute
    /// `NaN` in a block but be skipped alone.
    ///
    /// `act` is applied per element; pass the identity closure for linear
    /// output layers.
    ///
    /// # Panics
    /// Panics on any shape mismatch, naming the offending shapes.
    pub fn matmul_bias_act_into(
        &self,
        w: &Matrix,
        bias: &[f32],
        act: impl Fn(f32) -> f32,
        out: &mut Matrix,
    ) {
        assert_eq!(
            self.cols, w.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, w.rows, w.cols
        );
        assert!(
            out.rows == self.rows && out.cols == w.cols,
            "matmul output shape mismatch: got {}x{}, need {}x{}",
            out.rows,
            out.cols,
            self.rows,
            w.cols
        );
        assert_eq!(
            bias.len(),
            w.cols,
            "bias length mismatch: {} for {}x{} weights",
            bias.len(),
            w.rows,
            w.cols
        );
        #[cfg(target_arch = "x86_64")]
        if crate::tier::KernelTier::current().simd() {
            // SAFETY: the tier ladder verified avx2+fma at runtime. The
            // unpacked kernels keep their AVX2 bodies under the Avx512f
            // tier too — they are the bitwise reference the packed-panel
            // kernels (crate::packed) are tested against.
            unsafe { simd::matmul_bias_avx2(self, w, bias, out) };
            for i in 0..out.rows {
                for o in out.row_mut(i).iter_mut() {
                    *o = act(*o);
                }
            }
            return;
        }
        self.matmul_bias_act_scalar(w, bias, act, out);
    }

    /// Portable scalar implementation of [`Matrix::matmul_bias_act_into`]
    /// (also the row/column remainder kernel of the SIMD path).
    fn matmul_bias_act_scalar(
        &self,
        w: &Matrix,
        bias: &[f32],
        act: impl Fn(f32) -> f32,
        out: &mut Matrix,
    ) {
        let oc = w.cols;
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let orow = &mut out.data[i * oc..(i + 1) * oc];
            orow.copy_from_slice(bias);
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &w.data[k * oc..(k + 1) * oc];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
            for o in orow.iter_mut() {
                *o = act(*o);
            }
        }
    }

    /// `self · otherᵀ` (`n×k · m×k = n×m`) without materializing a transpose.
    ///
    /// Used for the input gradient `dX = dZ · Wᵀ` when weights are stored
    /// `in×out`.
    pub fn matmul_a_bt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_a_bt_into(other, &mut out);
        out
    }

    /// `self · otherᵀ` written into `out` (overwritten, not accumulated) —
    /// the allocation-free twin of [`Matrix::matmul_a_bt`] for the
    /// wavefront training backward, which ping-pongs the running input
    /// gradient `dX = dZ · Wᵀ` through pooled buffers.
    ///
    /// # Panics
    /// Panics if `self.cols != other.cols` or `out` is not
    /// `self.rows × other.rows`, naming the offending shapes.
    pub fn matmul_a_bt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_a_bt dimension mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        assert!(
            out.rows == self.rows && out.cols == other.rows,
            "matmul_a_bt output shape mismatch: got {}x{}, need {}x{}",
            out.rows,
            out.cols,
            self.rows,
            other.rows
        );
        #[cfg(target_arch = "x86_64")]
        if crate::tier::KernelTier::current().simd() {
            // SAFETY: the tier ladder verified avx2+fma at runtime.
            unsafe { simd::matmul_a_bt_avx2(self, other, out) };
            return;
        }
        self.matmul_a_bt_scalar(other, out);
    }

    /// Portable scalar implementation of [`Matrix::matmul_a_bt_into`]
    /// (shapes already checked by the dispatching caller).
    fn matmul_a_bt_scalar(&self, other: &Matrix, out: &mut Matrix) {
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let orow = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
    }

    /// `selfᵀ · other` (`n×r`ᵀ `· n×c = r×c`) without materializing a
    /// transpose; accumulates into `out` (callers reuse gradient buffers).
    ///
    /// Used for the weight gradient `dW += Xᵀ · dZ`. Zero left-operands
    /// (one-hot feature columns, post-ReLU activations) are skipped.
    pub fn matmul_at_b_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_at_b row mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert!(
            out.rows == self.cols && out.cols == other.cols,
            "matmul_at_b output shape mismatch: got {}x{}, need {}x{}",
            out.rows,
            out.cols,
            self.cols,
            other.cols
        );
        #[cfg(target_arch = "x86_64")]
        if crate::tier::KernelTier::current().simd() {
            // SAFETY: the tier ladder verified avx2+fma at runtime.
            unsafe { simd::matmul_at_b_avx2(self, other, out) };
            return;
        }
        self.matmul_at_b_scalar(other, out);
    }

    /// Portable scalar implementation of [`Matrix::matmul_at_b_into`]
    /// (shapes already checked by the dispatching caller).
    fn matmul_at_b_scalar(&self, other: &Matrix, out: &mut Matrix) {
        let oc = other.cols;
        for n in 0..self.rows {
            let arow = self.row(n);
            let brow = &other.data[n * oc..(n + 1) * oc];
            for (r, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[r * oc..(r + 1) * oc];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
    }

    /// `selfᵀ · other`, allocating the output.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_at_b_into(other, &mut out);
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Adds `row` to every row in place (bias broadcast).
    pub fn add_row_inplace(&mut self, row: &[f32]) {
        assert_eq!(
            row.len(),
            self.cols,
            "broadcast row length mismatch: row has {} elements, matrix is {}x{}",
            row.len(),
            self.rows,
            self.cols
        );
        for i in 0..self.rows {
            for (o, &b) in self.row_mut(i).iter_mut().zip(row) {
                *o += b;
            }
        }
    }

    /// Column sums (used for bias gradients), accumulated into `out`.
    pub fn col_sum_into(&self, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            self.cols,
            "col_sum output length mismatch: output has {} slots, matrix is {}x{}",
            out.len(),
            self.rows,
            self.cols
        );
        for i in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
    }

    /// `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert!(
            self.rows == other.rows && self.cols == other.cols,
            "add_scaled shape mismatch: {}x{} += {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        for (o, &v) in self.data.iter_mut().zip(&other.data) {
            *o += scale * v;
        }
    }

    /// Element-wise (Hadamard) product: `self ⊙ other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul_elem(&self, other: &Matrix) -> Matrix {
        assert!(
            self.rows == other.rows && self.cols == other.cols,
            "mul_elem shape mismatch: {}x{} ⊙ {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise product in place: `self ⊙= other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul_elem_inplace(&mut self, other: &Matrix) {
        assert!(
            self.rows == other.rows && self.cols == other.cols,
            "mul_elem shape mismatch: {}x{} ⊙ {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale_inplace(&mut self, scale: f32) {
        for v in &mut self.data {
            *v *= scale;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Horizontally concatenates matrices that share a row count.
    ///
    /// # Panics
    /// Panics if `parts` is empty or row counts differ.
    pub fn hcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hcat of zero matrices");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let orow = out.row_mut(i);
            let mut off = 0;
            for p in parts {
                assert_eq!(
                    p.rows, rows,
                    "hcat row count mismatch: part is {}x{}, expected {rows} rows",
                    p.rows, p.cols
                );
                orow[off..off + p.cols].copy_from_slice(p.row(i));
                off += p.cols;
            }
        }
        out
    }

    /// Copies columns `[start, start+width)` into a new matrix.
    ///
    /// # Panics
    /// Panics if the slice exceeds the column count, naming the range.
    pub fn slice_cols(&self, start: usize, width: usize) -> Matrix {
        assert!(
            start + width <= self.cols,
            "column slice [{start}, {}) out of range for {}x{} matrix",
            start + width,
            self.rows,
            self.cols
        );
        let mut out = Matrix::zeros(self.rows, width);
        for i in 0..self.rows {
            let src = &self.row(i)[start..start + width];
            out.row_mut(i).copy_from_slice(src);
        }
        out
    }

    /// Gathers the given rows into a new matrix (row `k` of the output is
    /// row `indices[k]` of `self`).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// Gathers the given rows into `out` (row `k` of `out` becomes row
    /// `indices[k]` of `self`). The allocation-free twin of
    /// [`Matrix::gather_rows`]; the inverse routing of
    /// [`Matrix::scatter_rows_into`], which the inference engine uses to
    /// write wavefront results (child-column gathers copy sub-row slices,
    /// so they use `row`/`row_mut` directly).
    ///
    /// # Panics
    /// Panics if `out` is not `indices.len() × self.cols` or an index is out
    /// of range, naming the offending shapes/index.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        assert!(
            out.rows == indices.len() && out.cols == self.cols,
            "gather_rows output shape mismatch: got {}x{}, need {}x{}",
            out.rows,
            out.cols,
            indices.len(),
            self.cols
        );
        for (k, &i) in indices.iter().enumerate() {
            assert!(
                i < self.rows,
                "gather_rows index {i} out of range for {}x{} matrix",
                self.rows,
                self.cols
            );
            out.row_mut(k).copy_from_slice(self.row(i));
        }
    }

    /// Scatters this matrix's rows into `out`: row `k` of `self` overwrites
    /// row `indices[k]` of `out`. The inverse routing of
    /// [`Matrix::gather_rows_into`]; later duplicates win.
    ///
    /// # Panics
    /// Panics if `indices.len() != self.rows`, the column counts differ, or
    /// an index is out of range, naming the offending shapes/index.
    pub fn scatter_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        assert_eq!(
            indices.len(),
            self.rows,
            "scatter_rows index count mismatch: {} indices for {}x{} matrix",
            indices.len(),
            self.rows,
            self.cols
        );
        assert_eq!(
            self.cols, out.cols,
            "scatter_rows column mismatch: source is {}x{}, target is {}x{}",
            self.rows, self.cols, out.rows, out.cols
        );
        for (k, &i) in indices.iter().enumerate() {
            assert!(
                i < out.rows,
                "scatter_rows index {i} out of range for {}x{} target",
                out.rows,
                out.cols
            );
            out.row_mut(i).copy_from_slice(self.row(k));
        }
    }

    /// Adds this matrix's rows into rows of `out`: row `k` of `self` is
    /// **accumulated** into row `indices[k]` of `out` — the adjoint of
    /// [`Matrix::gather_rows_into`] (a gather reads each source row into
    /// one output slot; its transpose sums every slot's gradient back into
    /// the source row). Unlike [`Matrix::scatter_rows_into`], duplicate
    /// indices accumulate instead of last-write-wins — exactly what a
    /// gradient scatter needs when several gathered rows alias one source.
    ///
    /// # Panics
    /// Panics if `indices.len() != self.rows`, the column counts differ, or
    /// an index is out of range, naming the offending shapes/index.
    pub fn scatter_add_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        assert_eq!(
            self.cols, out.cols,
            "scatter_add_rows column mismatch: source is {}x{}, target is {}x{}",
            self.rows, self.cols, out.rows, out.cols
        );
        self.scatter_add_cols_into(0, indices, out);
    }

    /// Adds an `out.cols()`-wide column block of `self` (starting at column
    /// `start`) into the given rows of `out`:
    /// `out.row(indices[k]) += self[k, start..start + out.cols()]`.
    ///
    /// This is the adjoint of the serving/training engines' *child-column
    /// gather* (which copies whole child-output rows into column blocks of
    /// a wavefront step's input): the backward pass routes each member's
    /// input-gradient block back onto its child's output-gradient row.
    /// Duplicate indices accumulate.
    ///
    /// # Panics
    /// Panics if `indices.len() != self.rows`, the block exceeds `self`'s
    /// columns, or an index is out of range, naming the offending
    /// shapes/index.
    pub fn scatter_add_cols_into(&self, start: usize, indices: &[usize], out: &mut Matrix) {
        let width = out.cols;
        assert_eq!(
            indices.len(),
            self.rows,
            "scatter_add index count mismatch: {} indices for {}x{} matrix",
            indices.len(),
            self.rows,
            self.cols
        );
        assert!(
            start + width <= self.cols,
            "scatter_add column block [{start}, {}) out of range for {}x{} matrix",
            start + width,
            self.rows,
            self.cols
        );
        for (k, &i) in indices.iter().enumerate() {
            assert!(
                i < out.rows,
                "scatter_add index {i} out of range for {}x{} target",
                out.rows,
                out.cols
            );
            let src = &self.data[k * self.cols + start..k * self.cols + start + width];
            let dst = &mut out.data[i * width..(i + 1) * width];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }

    /// Reshapes the matrix to `rows × cols`, reusing the existing
    /// allocation when it is large enough. Contents are reset to zero.
    /// See [`Matrix::resize_for_overwrite`] for the memset-free variant
    /// the buffer pool uses.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Like [`Matrix::resize_zeroed`] but leaves existing element values
    /// **unspecified** (only newly grown elements are zeroed) — for
    /// callers that overwrite every element anyway, skipping the memset.
    ///
    /// This is the resize primitive behind [`crate::pool::BufferPool`]:
    /// repeated inference passes with varying batch sizes never reallocate
    /// (or redundantly zero) once a buffer has grown to its high-water
    /// mark.
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        let n = rows * cols;
        self.rows = rows;
        self.cols = cols;
        if self.data.len() > n {
            self.data.truncate(n);
        } else {
            self.data.resize(n, 0.0);
        }
    }

    /// An empty (`0 × cols`) matrix whose buffer is pre-reserved for
    /// `row_capacity` rows, so up to that many [`Matrix::push_zero_row`]s
    /// never reallocate. The incremental serving engine sizes each
    /// wavefront chunk's input this way (capacity = chunk size) so
    /// admitting a plan touches no allocator in steady state.
    pub fn with_row_capacity(row_capacity: usize, cols: usize) -> Matrix {
        Matrix { rows: 0, cols, data: Vec::with_capacity(row_capacity * cols) }
    }

    /// Ensures the buffer can hold at least `rows` total rows at the
    /// current column width without reallocating — the in-place analogue
    /// of [`Matrix::with_row_capacity`] for recycled buffers whose shape
    /// changed.
    pub fn reserve_row_capacity(&mut self, rows: usize) {
        let want = rows * self.cols;
        if want > self.data.len() {
            self.data.reserve(want - self.data.len());
        }
    }

    /// Appends one zeroed row, returning its index.
    pub fn push_zero_row(&mut self) -> usize {
        self.data.resize(self.data.len() + self.cols, 0.0);
        self.rows += 1;
        self.rows - 1
    }

    /// Removes row `i` by moving the last row into its place (order is not
    /// preserved), shrinking the matrix by one row. The serving engine's
    /// retire path compacts wavefront chunks with this — O(cols), no
    /// reallocation.
    ///
    /// # Panics
    /// Panics (debug-asserted, like the row accessors) if `i` is out of
    /// range.
    pub fn swap_remove_row(&mut self, i: usize) {
        debug_assert!(i < self.rows, "row {i} out of range for {}x{} matrix", self.rows, self.cols);
        let last = self.rows - 1;
        if i != last {
            let (head, tail) = self.data.split_at_mut(last * self.cols);
            head[i * self.cols..(i + 1) * self.cols].copy_from_slice(tail);
        }
        self.data.truncate(last * self.cols);
        self.rows = last;
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

/// Runtime-dispatched AVX2+FMA microkernel for the serving-path fused
/// forward. The build stays portable (baseline x86-64); the wide path is
/// selected per process via `is_x86_feature_detected!`.
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::Matrix;
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    /// One-time CPUID check for AVX2 + FMA. Dispatch now goes through the
    /// tier ladder (`crate::tier::KernelTier`), which also honours the
    /// forced-tier override; this raw hardware check remains for tests
    /// that compare SIMD bodies against scalar references directly.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn avx2_fma_available() -> bool {
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL
            .get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }

    /// `out = a · w + bias` with a 4-row × 16-column register-blocked
    /// FMA kernel (accumulators live in YMM registers; `w`'s row chunk is
    /// loaded once per 4 input rows instead of once per row). Remainder
    /// rows run through [`row_kernel_avx2`], which executes the **same
    /// per-row operation sequence** as the block (same column tiling, same
    /// ascending-`k` FMA chain), so a row's output bits never depend on
    /// its position in the batch or on the batch size — the row-invariance
    /// contract the incremental serving engine rests on. Columns past the
    /// widest vector tile fall back to scalar identically in both paths.
    /// No activation — the caller applies it in a separate (cache-hot)
    /// pass.
    ///
    /// # Safety
    /// Caller must ensure AVX2 and FMA are available (see
    /// [`avx2_fma_available`]) and that the shapes agree:
    /// `a: n×k`, `w: k×m`, `bias: m`, `out: n×m`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_bias_avx2(a: &Matrix, w: &Matrix, bias: &[f32], out: &mut Matrix) {
        let (n, kd, m) = (a.rows, a.cols, w.cols);
        let ad = a.data.as_ptr();
        let wd = w.data.as_ptr();
        let od = out.data.as_mut_ptr();
        let bp = bias.as_ptr();

        let mut ib = 0usize;
        while ib + 4 <= n {
            let a0p = ad.add(ib * kd);
            let a1p = ad.add((ib + 1) * kd);
            let a2p = ad.add((ib + 2) * kd);
            let a3p = ad.add((ib + 3) * kd);

            let mut jb = 0usize;
            // 16-column tiles: 8 YMM accumulators (4 rows × 2 vectors).
            while jb + 16 <= m {
                let binit0 = _mm256_loadu_ps(bp.add(jb));
                let binit1 = _mm256_loadu_ps(bp.add(jb + 8));
                let mut acc = [[binit0, binit1]; 4];
                for k in 0..kd {
                    let (x0, x1, x2, x3) =
                        (*a0p.add(k), *a1p.add(k), *a2p.add(k), *a3p.add(k));
                    // ReLU activations and one-hot features are mostly
                    // zero; skipping a fully-zero column of the row block
                    // skips two W loads and eight FMAs.
                    if x0 == 0.0 && x1 == 0.0 && x2 == 0.0 && x3 == 0.0 {
                        continue;
                    }
                    let w0 = _mm256_loadu_ps(wd.add(k * m + jb));
                    let w1 = _mm256_loadu_ps(wd.add(k * m + jb + 8));
                    let v0 = _mm256_set1_ps(x0);
                    acc[0][0] = _mm256_fmadd_ps(v0, w0, acc[0][0]);
                    acc[0][1] = _mm256_fmadd_ps(v0, w1, acc[0][1]);
                    let v1 = _mm256_set1_ps(x1);
                    acc[1][0] = _mm256_fmadd_ps(v1, w0, acc[1][0]);
                    acc[1][1] = _mm256_fmadd_ps(v1, w1, acc[1][1]);
                    let v2 = _mm256_set1_ps(x2);
                    acc[2][0] = _mm256_fmadd_ps(v2, w0, acc[2][0]);
                    acc[2][1] = _mm256_fmadd_ps(v2, w1, acc[2][1]);
                    let v3 = _mm256_set1_ps(x3);
                    acc[3][0] = _mm256_fmadd_ps(v3, w0, acc[3][0]);
                    acc[3][1] = _mm256_fmadd_ps(v3, w1, acc[3][1]);
                }
                for (r, row_acc) in acc.iter().enumerate() {
                    _mm256_storeu_ps(od.add((ib + r) * m + jb), row_acc[0]);
                    _mm256_storeu_ps(od.add((ib + r) * m + jb + 8), row_acc[1]);
                }
                jb += 16;
            }
            // 8-column tile (narrow output layers, e.g. `d + 1`).
            while jb + 8 <= m {
                let binit = _mm256_loadu_ps(bp.add(jb));
                let mut acc = [binit; 4];
                for k in 0..kd {
                    let (x0, x1, x2, x3) =
                        (*a0p.add(k), *a1p.add(k), *a2p.add(k), *a3p.add(k));
                    if x0 == 0.0 && x1 == 0.0 && x2 == 0.0 && x3 == 0.0 {
                        continue;
                    }
                    let w0 = _mm256_loadu_ps(wd.add(k * m + jb));
                    acc[0] = _mm256_fmadd_ps(_mm256_set1_ps(x0), w0, acc[0]);
                    acc[1] = _mm256_fmadd_ps(_mm256_set1_ps(x1), w0, acc[1]);
                    acc[2] = _mm256_fmadd_ps(_mm256_set1_ps(x2), w0, acc[2]);
                    acc[3] = _mm256_fmadd_ps(_mm256_set1_ps(x3), w0, acc[3]);
                }
                for (r, row_acc) in acc.iter().enumerate() {
                    _mm256_storeu_ps(od.add((ib + r) * m + jb), *row_acc);
                }
                jb += 8;
            }
            // Column remainder: scalar over the 4 rows. `mul_add` keeps
            // these chains fused like the vector tiles, so the
            // packed-panel kernels (pure-FMA lanes everywhere) stay
            // bitwise-equal to this dispatch.
            if jb < m {
                for r in 0..4 {
                    let arow = ad.add((ib + r) * kd);
                    for j in jb..m {
                        let mut s = *bp.add(j);
                        for k in 0..kd {
                            let x = *arow.add(k);
                            if x != 0.0 {
                                s = f32::mul_add(x, *wd.add(k * m + j), s);
                            }
                        }
                        *od.add((ib + r) * m + j) = s;
                    }
                }
            }
            ib += 4;
        }
        // Row remainder: the single-row kernel (identical per-row op
        // sequence to the 4-row block — see the row-invariance contract).
        for i in ib..n {
            row_kernel_avx2(ad.add(i * kd), kd, wd, m, bp, od.add(i * m));
        }
    }

    /// `out = a · bᵀ` as row-pair dot products: for each output element,
    /// a 16-lane (2 × YMM) FMA accumulation over the shared `k` axis with
    /// a horizontal reduction at the end. This is the **training
    /// backward's input-gradient gemm** `dX = dZ · Wᵀ` — both operand
    /// rows are contiguous, so the dot formulation streams them without
    /// materializing a transpose. Accumulation order differs from the
    /// scalar path (lane-parallel then horizontal), so results may differ
    /// by FMA/reassociation rounding — the backward makes no bitwise
    /// promise; the gradient differential suite bounds the effect.
    ///
    /// # Safety
    /// Caller must ensure AVX2 and FMA are available (see
    /// [`avx2_fma_available`]) and that the shapes agree:
    /// `a: n×k`, `b: m×k`, `out: n×m`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_a_bt_avx2(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        let (n, kd, m) = (a.rows, a.cols, b.rows);
        let ad = a.data.as_ptr();
        let bd = b.data.as_ptr();
        let od = out.data.as_mut_ptr();

        /// Horizontal sum of one YMM accumulator.
        #[inline(always)]
        unsafe fn hsum(acc: __m256) -> f32 {
            let lo = _mm256_castps256_ps128(acc);
            let hi = _mm256_extractf128_ps(acc, 1);
            let q = _mm_add_ps(lo, hi);
            let q = _mm_add_ps(q, _mm_movehl_ps(q, q));
            let q = _mm_add_ss(q, _mm_shuffle_ps(q, q, 1));
            _mm_cvtss_f32(q)
        }

        for i in 0..n {
            let arow = ad.add(i * kd);
            let orow = od.add(i * m);
            // 4 output columns per block: each `a`-row tile is loaded once
            // and feeds four FMA chains against four `b` rows (the dot
            // loop is load-bound, so sharing the left operand is the win).
            let mut jb = 0usize;
            while jb + 4 <= m {
                let b0 = bd.add(jb * kd);
                let b1 = bd.add((jb + 1) * kd);
                let b2 = bd.add((jb + 2) * kd);
                let b3 = bd.add((jb + 3) * kd);
                let mut acc = [_mm256_setzero_ps(); 4];
                let mut k = 0usize;
                while k + 8 <= kd {
                    let av = _mm256_loadu_ps(arow.add(k));
                    acc[0] = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0.add(k)), acc[0]);
                    acc[1] = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1.add(k)), acc[1]);
                    acc[2] = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2.add(k)), acc[2]);
                    acc[3] = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3.add(k)), acc[3]);
                    k += 8;
                }
                let mut s = [hsum(acc[0]), hsum(acc[1]), hsum(acc[2]), hsum(acc[3])];
                for kk in k..kd {
                    let x = *arow.add(kk);
                    s[0] += x * *b0.add(kk);
                    s[1] += x * *b1.add(kk);
                    s[2] += x * *b2.add(kk);
                    s[3] += x * *b3.add(kk);
                }
                for (r, &v) in s.iter().enumerate() {
                    *orow.add(jb + r) = v;
                }
                jb += 4;
            }
            // Column remainder: single dots.
            for j in jb..m {
                let brow = bd.add(j * kd);
                let mut acc = _mm256_setzero_ps();
                let mut k = 0usize;
                while k + 8 <= kd {
                    acc = _mm256_fmadd_ps(
                        _mm256_loadu_ps(arow.add(k)),
                        _mm256_loadu_ps(brow.add(k)),
                        acc,
                    );
                    k += 8;
                }
                let mut s = hsum(acc);
                for kk in k..kd {
                    s += *arow.add(kk) * *brow.add(kk);
                }
                *orow.add(j) = s;
            }
        }
    }

    /// `out += aᵀ · b` register-blocked over the contraction dimension:
    /// rows of `a`/`b` are consumed **four at a time**, so each touched
    /// 8-lane output tile `out[r, j..j+8]` is loaded and stored once per
    /// block instead of once per contributing row — the broadcast-FMA
    /// kernel's load/store round-trip per `(n, r)` pair was the remaining
    /// memory traffic in the training backward's weight-gradient gemm
    /// `dW += Xᵀ · dZ`. The per-lane zero-skip is preserved exactly
    /// (`x` is post-ReLU activations or one-hot-heavy feature rows, and
    /// substituting an FMA with a `±0` multiplicand is *not* bit-safe
    /// under `-0.0` accumulators or `±Inf`/`NaN` operands).
    ///
    /// **Bitwise contract against [`matmul_at_b_avx2_broadcast`]**: for
    /// every output element `out[r, j]`, both kernels apply the identical
    /// chain of operations — one FMA (vector lanes) or one mul-then-add
    /// (scalar tail) per nonzero `a[n, r]`, in ascending `n` — so blocking
    /// only moves the accumulator from memory round-trips into a register
    /// and the results are bit-identical (property-tested). The row
    /// remainder (`n % 4`) runs the broadcast form itself. As for
    /// [`matmul_a_bt_avx2`], no bitwise contract is made *against the
    /// scalar fallback* (FMA contraction rounds once, not twice).
    ///
    /// # Safety
    /// Caller must ensure AVX2 and FMA are available (see
    /// [`avx2_fma_available`]) and that the shapes agree:
    /// `a: n×r`, `b: n×c`, `out: r×c`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_at_b_avx2(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        let (n, rd, oc) = (a.rows, a.cols, b.cols);
        let ad = a.data.as_ptr();
        let bd = b.data.as_ptr();
        let od = out.data.as_mut_ptr();
        let nb_end = n - n % 4;
        let mut nn = 0usize;
        while nn < nb_end {
            let arows =
                [ad.add(nn * rd), ad.add((nn + 1) * rd), ad.add((nn + 2) * rd), ad.add((nn + 3) * rd)];
            let brows =
                [bd.add(nn * oc), bd.add((nn + 1) * oc), bd.add((nn + 2) * oc), bd.add((nn + 3) * oc)];
            for r in 0..rd {
                let xs = [
                    *arows[0].add(r),
                    *arows[1].add(r),
                    *arows[2].add(r),
                    *arows[3].add(r),
                ];
                if xs.iter().all(|&x| x == 0.0) {
                    continue;
                }
                let orow = od.add(r * oc);
                let mut j = 0usize;
                while j + 8 <= oc {
                    let mut o = _mm256_loadu_ps(orow.add(j));
                    for (l, &x) in xs.iter().enumerate() {
                        if x == 0.0 {
                            continue;
                        }
                        o = _mm256_fmadd_ps(
                            _mm256_set1_ps(x),
                            _mm256_loadu_ps(brows[l].add(j)),
                            o,
                        );
                    }
                    _mm256_storeu_ps(orow.add(j), o);
                    j += 8;
                }
                for jj in j..oc {
                    let mut s = *orow.add(jj);
                    for (l, &x) in xs.iter().enumerate() {
                        if x == 0.0 {
                            continue;
                        }
                        s += x * *brows[l].add(jj);
                    }
                    *orow.add(jj) = s;
                }
            }
            nn += 4;
        }
        if nb_end < n {
            matmul_at_b_rows_broadcast(a, b, out, nb_end, n);
        }
    }

    /// `out += aᵀ · b` as broadcast-FMA row updates: for each nonzero
    /// `a[n, r]`, `out.row(r) += a[n, r] · b.row(n)` across 8-lane tiles.
    /// This was the shipping kernel before the register-blocked
    /// [`matmul_at_b_avx2`]; it stays as (a) the row-remainder path of the
    /// blocked kernel and (b) the bitwise reference its differential
    /// property test runs against.
    ///
    /// # Safety
    /// As [`matmul_at_b_avx2`].
    #[cfg_attr(not(test), allow(dead_code))]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_at_b_avx2_broadcast(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        matmul_at_b_rows_broadcast(a, b, out, 0, a.rows);
    }

    /// The broadcast-FMA update restricted to rows `n0..n1` of the
    /// contraction dimension (shared by [`matmul_at_b_avx2`]'s remainder
    /// and the reference kernel).
    ///
    /// # Safety
    /// As [`matmul_at_b_avx2`]; additionally `n1 <= a.rows`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn matmul_at_b_rows_broadcast(
        a: &Matrix,
        b: &Matrix,
        out: &mut Matrix,
        n0: usize,
        n1: usize,
    ) {
        let (rd, oc) = (a.cols, b.cols);
        let ad = a.data.as_ptr();
        let bd = b.data.as_ptr();
        let od = out.data.as_mut_ptr();
        for nn in n0..n1 {
            let arow = ad.add(nn * rd);
            let brow = bd.add(nn * oc);
            for r in 0..rd {
                let x = *arow.add(r);
                if x == 0.0 {
                    continue;
                }
                let orow = od.add(r * oc);
                let v = _mm256_set1_ps(x);
                let mut j = 0usize;
                while j + 8 <= oc {
                    let o = _mm256_loadu_ps(orow.add(j));
                    let bvec = _mm256_loadu_ps(brow.add(j));
                    _mm256_storeu_ps(orow.add(j), _mm256_fmadd_ps(v, bvec, o));
                    j += 8;
                }
                for jj in j..oc {
                    *orow.add(jj) += x * *brow.add(jj);
                }
            }
        }
    }

    /// One row of the fused forward, with exactly the per-row operation
    /// sequence of the 4-row block in [`matmul_bias_avx2`]: 16-column FMA
    /// tiles, then an 8-column tile, then scalar mul-add columns, always
    /// accumulating over `k` ascending. Skipping `x == 0` matches the
    /// block's all-zero skip bit for bit: an FMA with a `±0` multiplicand
    /// leaves any `+0`-or-nonzero accumulator unchanged, and accumulators
    /// start from the bias, which is never `-0.0` (see the caveat on
    /// [`Matrix::matmul_bias_act_into`]).
    ///
    /// # Safety
    /// As [`matmul_bias_avx2`]; `arow` must point at `k` readable floats
    /// and `orow` at `m` writable floats.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn row_kernel_avx2(
        arow: *const f32,
        kd: usize,
        wd: *const f32,
        m: usize,
        bp: *const f32,
        orow: *mut f32,
    ) {
        let mut jb = 0usize;
        while jb + 16 <= m {
            let mut acc0 = _mm256_loadu_ps(bp.add(jb));
            let mut acc1 = _mm256_loadu_ps(bp.add(jb + 8));
            for k in 0..kd {
                let x = *arow.add(k);
                if x == 0.0 {
                    continue;
                }
                let v = _mm256_set1_ps(x);
                acc0 = _mm256_fmadd_ps(v, _mm256_loadu_ps(wd.add(k * m + jb)), acc0);
                acc1 = _mm256_fmadd_ps(v, _mm256_loadu_ps(wd.add(k * m + jb + 8)), acc1);
            }
            _mm256_storeu_ps(orow.add(jb), acc0);
            _mm256_storeu_ps(orow.add(jb + 8), acc1);
            jb += 16;
        }
        while jb + 8 <= m {
            let mut acc = _mm256_loadu_ps(bp.add(jb));
            for k in 0..kd {
                let x = *arow.add(k);
                if x == 0.0 {
                    continue;
                }
                acc = _mm256_fmadd_ps(_mm256_set1_ps(x), _mm256_loadu_ps(wd.add(k * m + jb)), acc);
            }
            _mm256_storeu_ps(orow.add(jb), acc);
            jb += 8;
        }
        // Column remainder: `mul_add` keeps the chains fused like the
        // vector tiles (bitwise contract with the packed-panel kernels).
        for j in jb..m {
            let mut s = *bp.add(j);
            for k in 0..kd {
                let x = *arow.add(k);
                if x != 0.0 {
                    s = f32::mul_add(x, *wd.add(k * m + j), s);
                }
            }
            *orow.add(j) = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn zeros_has_expected_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_round_trips_elements() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.5, -2.0, 0.25], &[0.0, 3.0, 9.0]]);
        let id = Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hcat_concatenates_columns() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = Matrix::hcat(&[&a, &b]);
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_cols_inverts_hcat() {
        let a = Matrix::from_rows(&[&[1.0, 9.0], &[2.0, 8.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[5.0]]);
        let c = Matrix::hcat(&[&a, &b]);
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 1), b);
    }

    #[test]
    fn gather_rows_picks_rows_in_order() {
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.col(0), vec![2.0, 0.0, 2.0]);
    }

    #[test]
    fn scatter_inverts_gather() {
        let a = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]);
        let idx = [2usize, 0];
        let g = a.gather_rows(&idx);
        let mut back = Matrix::zeros(3, 2);
        g.scatter_rows_into(&idx, &mut back);
        assert_eq!(back.row(0), a.row(0));
        assert_eq!(back.row(2), a.row(2));
        assert_eq!(back.row(1), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "scatter_rows index 5 out of range")]
    fn scatter_rejects_out_of_range_index() {
        let a = Matrix::from_rows(&[&[1.0]]);
        let mut out = Matrix::zeros(2, 1);
        a.scatter_rows_into(&[5], &mut out);
    }

    #[test]
    fn scatter_add_accumulates_duplicates_and_inverts_gather() {
        let a = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[4.0, 40.0]]);
        // Duplicate target rows must sum, not overwrite.
        let mut out = Matrix::zeros(2, 2);
        a.scatter_add_rows_into(&[1, 0, 1], &mut out);
        assert_eq!(out.row(0), &[2.0, 20.0]);
        assert_eq!(out.row(1), &[5.0, 50.0]);
        // Adjoint property: for a duplicate-free gather, scatter-add of the
        // gathered rows into zeros restores them in place.
        let idx = [2usize, 0];
        let g = a.gather_rows(&idx);
        let mut back = Matrix::zeros(3, 2);
        g.scatter_add_rows_into(&idx, &mut back);
        assert_eq!(back.row(0), a.row(0));
        assert_eq!(back.row(2), a.row(2));
        assert_eq!(back.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn scatter_add_cols_routes_a_column_block() {
        // Rows hold [feat | child block]; only the child block (cols 1..3)
        // is routed back.
        let d_in = Matrix::from_rows(&[&[9.0, 1.0, 2.0], &[9.0, 3.0, 4.0]]);
        let mut out = Matrix::from_rows(&[&[0.5, 0.5], &[0.0, 0.0], &[0.0, 0.0]]);
        d_in.scatter_add_cols_into(1, &[0, 2], &mut out);
        assert_eq!(out.row(0), &[1.5, 2.5]);
        assert_eq!(out.row(1), &[0.0, 0.0]);
        assert_eq!(out.row(2), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "scatter_add index 7 out of range")]
    fn scatter_add_rejects_out_of_range_index() {
        let a = Matrix::from_rows(&[&[1.0]]);
        let mut out = Matrix::zeros(2, 1);
        a.scatter_add_rows_into(&[7], &mut out);
    }

    #[test]
    fn matmul_a_bt_into_matches_allocating_version() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, -1.0, 0.5]]);
        let b = Matrix::from_rows(&[&[2.0, 0.0, 1.0], &[1.0, 1.0, 1.0], &[0.0, 3.0, -2.0], &[4.0, 0.5, 0.25]]);
        let mut out = Matrix::from_fn(2, 4, |_, _| 55.0); // stale contents
        a.matmul_a_bt_into(&b, &mut out);
        assert_eq!(out, a.matmul_a_bt(&b));
    }

    #[test]
    fn matmul_into_matches_matmul_and_overwrites() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut out = Matrix::from_fn(2, 2, |_, _| 99.0); // stale contents
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn fused_layer_kernel_matches_unfused_pipeline() {
        let x = Matrix::from_rows(&[&[1.0, -2.0, 0.0], &[0.5, 0.25, -1.0]]);
        let w = Matrix::from_fn(3, 4, |i, j| (i as f32 - j as f32) * 0.3);
        let bias = [0.1, -0.2, 0.3, -0.4];
        let relu = |v: f32| v.max(0.0);

        let mut unfused = x.matmul(&w);
        unfused.add_row_inplace(&bias);
        unfused.map_inplace(relu);

        let mut fused = Matrix::from_fn(2, 4, |_, _| 77.0); // stale contents
        x.matmul_bias_act_into(&w, &bias, relu, &mut fused);
        assert_eq!(fused, unfused);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch: 2x2 · 3x1")]
    fn matmul_names_shapes_on_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 1);
        let _ = a.matmul(&b);
    }

    #[test]
    fn resize_zeroed_reuses_capacity_and_clears() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let cap = m.data.capacity();
        m.resize_zeroed(3, 2);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(m.data.capacity(), cap, "shrinking must not reallocate");
    }

    #[test]
    fn row_capacity_push_and_swap_remove() {
        let mut m = Matrix::with_row_capacity(4, 3);
        assert_eq!((m.rows(), m.cols()), (0, 3));
        let cap = m.data.capacity();
        for v in 0..4 {
            let i = m.push_zero_row();
            assert_eq!(i, v);
            m.row_mut(i).fill(v as f32);
        }
        assert_eq!(m.data.capacity(), cap, "pushes within capacity must not reallocate");
        // Remove row 1: row 3 moves into its slot.
        m.swap_remove_row(1);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.row(0), &[0.0; 3]);
        assert_eq!(m.row(1), &[3.0; 3]);
        assert_eq!(m.row(2), &[2.0; 3]);
        // Removing the last row is a plain truncate.
        m.swap_remove_row(2);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(1), &[3.0; 3]);
        // Freed capacity is reusable without reallocation.
        m.push_zero_row();
        m.push_zero_row();
        assert_eq!(m.data.capacity(), cap);
    }

    #[test]
    fn add_row_broadcasts_bias() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_inplace(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn col_sum_accumulates() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut out = vec![10.0, 0.0];
        a.col_sum_into(&mut out);
        assert_eq!(out, vec![14.0, 6.0]);
    }

    proptest! {
        #[test]
        fn matmul_matches_naive(
            n in 1usize..6, k in 1usize..6, m in 1usize..6,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Matrix::from_fn(n, k, |_, _| rng.gen_range(-2.0..2.0));
            let b = Matrix::from_fn(k, m, |_, _| rng.gen_range(-2.0..2.0));
            prop_assert!(approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-5));
        }

        #[test]
        fn matmul_a_bt_matches_explicit_transpose(
            n in 1usize..6, k in 1usize..6, m in 1usize..6,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Matrix::from_fn(n, k, |_, _| rng.gen_range(-2.0..2.0));
            let b = Matrix::from_fn(m, k, |_, _| rng.gen_range(-2.0..2.0));
            prop_assert!(approx_eq(&a.matmul_a_bt(&b), &a.matmul(&b.transpose()), 1e-4));
        }

        #[test]
        fn matmul_at_b_matches_explicit_transpose(
            n in 1usize..6, r in 1usize..6, c in 1usize..6,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Matrix::from_fn(n, r, |_, _| rng.gen_range(-2.0..2.0));
            let b = Matrix::from_fn(n, c, |_, _| rng.gen_range(-2.0..2.0));
            prop_assert!(approx_eq(&a.matmul_at_b(&b), &a.transpose().matmul(&b), 1e-4));
        }

        /// The fused serving kernel must agree with the scalar reference
        /// across every row/column remainder combination (the SIMD path
        /// tiles 4 rows × 16/8 columns with scalar tails) and under
        /// realistic sparsity, to FMA-rounding tolerance.
        #[test]
        fn fused_kernel_dispatch_matches_scalar_reference(
            n in 1usize..14, k in 1usize..40, m in 1usize..40,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Matrix::from_fn(n, k, |_, _| {
                if rng.gen_range(0.0..1.0) < 0.4 { 0.0 } else { rng.gen_range(-2.0..2.0) }
            });
            let w = Matrix::from_fn(k, m, |_, _| rng.gen_range(-1.0..1.0));
            let bias: Vec<f32> = (0..m).map(|_| rng.gen_range(-0.5..0.5)).collect();
            let relu = |v: f32| v.max(0.0);
            let mut dispatched = Matrix::zeros(n, m);
            a.matmul_bias_act_into(&w, &bias, relu, &mut dispatched);
            let mut scalar = Matrix::zeros(n, m);
            a.matmul_bias_act_scalar(&w, &bias, relu, &mut scalar);
            prop_assert!(approx_eq(&dispatched, &scalar, 1e-5));
        }

        /// The row-invariance contract of the fused kernel: a row's output
        /// bits depend only on that row's input (and `w`/`bias`), never on
        /// the batch size or the row's position in it. The incremental
        /// serving engine re-chunks wavefront rows on admit/retire and
        /// promises predictions bit-identical to a fresh compile — which
        /// is exactly this property, batched. Exercised across block/
        /// remainder row positions (n up to 14) and all column-tile
        /// remainders, with realistic sparsity.
        #[test]
        fn fused_kernel_rows_are_bitwise_position_invariant(
            n in 1usize..14, k in 1usize..40, m in 1usize..40,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Matrix::from_fn(n, k, |_, _| {
                if rng.gen_range(0.0..1.0) < 0.4 { 0.0 } else { rng.gen_range(-2.0..2.0) }
            });
            let w = Matrix::from_fn(k, m, |_, _| rng.gen_range(-1.0..1.0));
            let bias: Vec<f32> = (0..m).map(|_| rng.gen_range(-0.5..0.5)).collect();
            let relu = |v: f32| v.max(0.0);
            let mut full = Matrix::zeros(n, m);
            a.matmul_bias_act_into(&w, &bias, relu, &mut full);
            // Each row alone must reproduce its slice of the batch, bit
            // for bit.
            for i in 0..n {
                let single = Matrix::from_row(a.row(i));
                let mut out = Matrix::zeros(1, m);
                single.matmul_bias_act_into(&w, &bias, relu, &mut out);
                let got: Vec<u32> = out.row(0).iter().map(|v| v.to_bits()).collect();
                let want: Vec<u32> = full.row(i).iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(got, want, "row {} diverges from its batched bits", i);
            }
            // And any prefix/suffix re-chunking reproduces the same bits.
            let split = n / 2;
            if split > 0 {
                let lo = Matrix::from_fn(split, k, |i, j| a.get(i, j));
                let mut lo_out = Matrix::zeros(split, m);
                lo.matmul_bias_act_into(&w, &bias, relu, &mut lo_out);
                for i in 0..split {
                    prop_assert_eq!(lo_out.row(i), full.row(i), "re-chunked row {} diverges", i);
                }
            }
        }

        /// The backward gemm dispatch (AVX2 dots / broadcast-FMA when
        /// available) must agree with the scalar reference across every
        /// lane-remainder combination and under realistic sparsity, to
        /// FMA-rounding tolerance.
        #[test]
        fn backward_kernel_dispatch_matches_scalar_reference(
            n in 1usize..10, k in 1usize..40, m in 1usize..40,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let sparse = |rng: &mut rand::rngs::StdRng| {
                if rng.gen_range(0.0..1.0) < 0.4 { 0.0 } else { rng.gen_range(-2.0..2.0) }
            };
            // dX = dZ · Wᵀ
            let dz = Matrix::from_fn(n, k, |_, _| sparse(&mut rng));
            let w = Matrix::from_fn(m, k, |_, _| rng.gen_range(-1.0..1.0));
            let mut dispatched = Matrix::zeros(n, m);
            dz.matmul_a_bt_into(&w, &mut dispatched);
            let mut scalar = Matrix::zeros(n, m);
            dz.matmul_a_bt_scalar(&w, &mut scalar);
            prop_assert!(approx_eq(&dispatched, &scalar, 1e-5));
            // dW += Xᵀ · dZ, accumulating onto non-zero contents.
            let x = Matrix::from_fn(n, m, |_, _| sparse(&mut rng));
            let dz2 = Matrix::from_fn(n, k, |_, _| rng.gen_range(-1.0..1.0));
            let mut acc_d = Matrix::from_fn(m, k, |i, j| ((i + j) % 3) as f32 * 0.25);
            let mut acc_s = acc_d.clone();
            x.matmul_at_b_into(&dz2, &mut acc_d);
            x.matmul_at_b_scalar(&dz2, &mut acc_s);
            prop_assert!(approx_eq(&acc_d, &acc_s, 1e-5));
        }

        /// The register-blocked `aᵀ·b` kernel promises **bit-identical**
        /// results to the broadcast-FMA kernel it replaced (same per-
        /// element FMA/mul-add chain, ascending `n` — blocking only keeps
        /// the accumulator in a register). Exercised across 4-row-block
        /// remainders (`n % 4`), every 8-lane column remainder, realistic
        /// sparsity (the per-lane zero-skip is the delicate part) and
        /// non-zero accumulator contents.
        #[test]
        fn blocked_at_b_kernel_is_bitwise_equal_to_broadcast(
            n in 1usize..14, r in 1usize..12, c in 1usize..40,
            seed in any::<u64>(),
        ) {
            #[cfg(target_arch = "x86_64")]
            if simd::avx2_fma_available() {
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let sparse = |rng: &mut rand::rngs::StdRng| {
                    if rng.gen_range(0.0..1.0) < 0.4 { 0.0 } else { rng.gen_range(-2.0..2.0) }
                };
                let a = Matrix::from_fn(n, r, |_, _| sparse(&mut rng));
                let b = Matrix::from_fn(n, c, |_, _| rng.gen_range(-1.0..1.0));
                let mut acc_new = Matrix::from_fn(r, c, |i, j| ((i * 7 + j) % 5) as f32 * 0.125);
                let mut acc_ref = acc_new.clone();
                // SAFETY: availability checked above; shapes agree by
                // construction.
                unsafe {
                    simd::matmul_at_b_avx2(&a, &b, &mut acc_new);
                    simd::matmul_at_b_avx2_broadcast(&a, &b, &mut acc_ref);
                }
                let got: Vec<u32> = acc_new.as_slice().iter().map(|v| v.to_bits()).collect();
                let want: Vec<u32> = acc_ref.as_slice().iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(got, want, "blocked kernel diverges from broadcast reference");
            }
        }

        #[test]
        fn hcat_then_slice_round_trips(
            rows in 1usize..5, c1 in 1usize..5, c2 in 1usize..5,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Matrix::from_fn(rows, c1, |_, _| rng.gen_range(-1.0..1.0));
            let b = Matrix::from_fn(rows, c2, |_, _| rng.gen_range(-1.0..1.0));
            let cat = Matrix::hcat(&[&a, &b]);
            prop_assert_eq!(cat.slice_cols(0, c1), a);
            prop_assert_eq!(cat.slice_cols(c1, c2), b);
        }
    }
}
