//! Loss functions and their gradients.
//!
//! The paper's training objective (Equation 7) is the L2 error over the
//! latency prediction of *every operator* in the training plans. We optimize
//! mean squared error — which has the same minimizer and, unlike the square
//! root form, decomposes linearly over the equivalence classes of the
//! plan-based batching optimization (§5.1.1) — and report RMSE/MAE.

use crate::matrix::Matrix;

/// Mean squared error and its gradient w.r.t. `pred`.
///
/// Returns `(mse, d_pred)` where `d_pred[i] = 2·(pred[i] − target[i]) / n`.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.rows(), target.rows(), "loss shape mismatch");
    assert_eq!(pred.cols(), target.cols(), "loss shape mismatch");
    let n = pred.len() as f32;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut total = 0.0f64;
    for ((g, &p), &t) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(pred.as_slice())
        .zip(target.as_slice())
    {
        let e = p - t;
        total += (e as f64) * (e as f64);
        *g = 2.0 * e / n;
    }
    ((total / n as f64) as f32, grad)
}

/// Sum of squared errors and its (un-normalized) gradient.
///
/// The plan-batch trainer accumulates SSE gradients across equivalence
/// classes and normalizes once by the total operator count, which is exactly
/// the unbiased recombination of §5.1.1.
pub fn sse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.rows(), target.rows(), "loss shape mismatch");
    assert_eq!(pred.cols(), target.cols(), "loss shape mismatch");
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut total = 0.0f64;
    for ((g, &p), &t) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(pred.as_slice())
        .zip(target.as_slice())
    {
        let e = p - t;
        total += (e as f64) * (e as f64);
        *g = 2.0 * e;
    }
    (total as f32, grad)
}

/// Mean absolute error (reporting metric; also usable as a training loss).
pub fn mae(pred: &Matrix, target: &Matrix) -> f32 {
    assert_eq!(pred.len(), target.len(), "loss shape mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let total: f64 = pred
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&p, &t)| (p - t).abs() as f64)
        .sum();
    (total / pred.len() as f64) as f32
}

/// Root mean squared error (the paper's Equation 3 form, for reporting).
pub fn rmse(pred: &Matrix, target: &Matrix) -> f32 {
    let (m, _) = mse(pred, target);
    m.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_zero_loss() {
        let p = Matrix::from_row(&[1.0, 2.0, 3.0]);
        let (l, g) = mse(&p, &p);
        assert_eq!(l, 0.0);
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(mae(&p, &p), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_row(&[0.0, 0.0]);
        let t = Matrix::from_row(&[2.0, -2.0]);
        let (l, g) = mse(&p, &t);
        assert!((l - 4.0).abs() < 1e-6);
        // d/dp of mean((p-t)^2) at p=0: 2*(0-2)/2 = -2 and 2*(0+2)/2 = 2
        assert!((g.get(0, 0) + 2.0).abs() < 1e-6);
        assert!((g.get(0, 1) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sse_is_n_times_mse() {
        let p = Matrix::from_row(&[1.0, 3.0, -1.0, 0.5]);
        let t = Matrix::from_row(&[0.0, 1.0, 2.0, 0.5]);
        let (l_mse, _) = mse(&p, &t);
        let (l_sse, _) = sse(&p, &t);
        assert!((l_sse - 4.0 * l_mse).abs() < 1e-5);
    }

    #[test]
    fn rmse_is_sqrt_of_mse() {
        let p = Matrix::from_row(&[3.0]);
        let t = Matrix::from_row(&[0.0]);
        assert!((rmse(&p, &t) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn mae_symmetric_in_sign() {
        let p = Matrix::from_row(&[1.0, -1.0]);
        let t = Matrix::from_row(&[0.0, 0.0]);
        assert!((mae(&p, &t) - 1.0).abs() < 1e-6);
    }
}
