//! A tiny buffer pool for allocation-free inference hot paths.
//!
//! The wavefront inference engine (`qppnet::infer`) evaluates hundreds of
//! small matmuls per batch; allocating every layer activation would put the
//! allocator on the critical path (exactly what profiling shows for the
//! training-time [`crate::MlpCache`] when it is reused for serving). A
//! [`BufferPool`] keeps returned [`Matrix`] buffers and hands them back
//! resized, so steady-state serving performs zero heap allocation once
//! every buffer has grown to its high-water mark.
//!
//! ```
//! use qpp_nn::{BufferPool, Matrix};
//!
//! let mut pool = BufferPool::new();
//! let a = pool.take(4, 8);          // fresh allocation (pool is empty)
//! pool.give(a);                     // return it for reuse
//! let b = pool.take(2, 16);         // same allocation, reshaped — no malloc
//! assert_eq!((b.rows(), b.cols()), (2, 16));
//! ```
//!
//! # Threading
//!
//! A pool is deliberately **not** shared between threads — no locks, no
//! atomics. Multicore serving gives each worker thread its *own* pool
//! (`BufferPool` is [`Send`], as the compile-time assertion below pins
//! down), which keeps the hot path lock-free and each worker's buffers
//! warm in its core's cache. Sharing one pool behind a mutex would
//! serialize exactly the allocations the pool exists to avoid.

use crate::matrix::Matrix;

/// A last-in-first-out pool of reusable [`Matrix`] buffers.
///
/// `take` pops the most recently returned buffer (warm in cache) and
/// [`Matrix::resize_for_overwrite`]s it to the requested shape, growing
/// its allocation only when the new shape exceeds the high-water mark;
/// `give` returns a buffer for reuse. Buffers are plain `Matrix` values —
/// leaking one (by never calling `give`) is safe, just a lost reuse
/// opportunity.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Matrix>,
}

// The multicore serving engine moves pools (and the matrices inside them)
// into scoped worker threads, and shares `&Mlp`/`&Matrix` across workers.
// Pin those auto-trait facts at compile time so a future field addition
// (e.g. an Rc-cached statistic) cannot silently break `Send`-cleanliness.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<BufferPool>();
    assert_send::<Matrix>();
    assert_sync::<Matrix>();
    assert_sync::<crate::mlp::Mlp>();
};

impl BufferPool {
    /// An empty pool.
    pub fn new() -> BufferPool {
        BufferPool { free: Vec::new() }
    }

    /// Takes a `rows × cols` buffer with **unspecified contents** (the
    /// caller must overwrite every element it reads back — every write
    /// kernel in this crate's forward paths does). Reuses a pooled
    /// allocation when one is available; a fresh buffer is zeroed by
    /// construction.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        match self.free.pop() {
            Some(mut m) => {
                m.resize_for_overwrite(rows, cols);
                m
            }
            None => Matrix::zeros(rows, cols),
        }
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn give(&mut self, m: Matrix) {
        self.free.push(m);
    }

    /// Number of buffers currently available for reuse.
    pub fn available(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_buffers() {
        let mut pool = BufferPool::new();
        let a = pool.take(4, 8);
        assert_eq!((a.rows(), a.cols()), (4, 8));
        pool.give(a);
        assert_eq!(pool.available(), 1);
        let b = pool.take(2, 3);
        assert_eq!((b.rows(), b.cols()), (2, 3));
        assert_eq!(b.len(), 6, "length must track the requested shape");
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn fresh_buffers_are_zeroed_and_growth_is_zero_filled() {
        let mut pool = BufferPool::new();
        let a = pool.take(2, 2);
        assert!(a.as_slice().iter().all(|&v| v == 0.0), "fresh buffer");
        pool.give(a);
        // Growing past the high-water mark zero-fills the new tail; the
        // reused prefix is unspecified (and must not be read unwritten).
        let b = pool.take(3, 3);
        assert_eq!(b.len(), 9);
        assert!(b.as_slice()[4..].iter().all(|&v| v == 0.0), "grown tail is zeroed");
    }
}
