//! A tiny buffer pool for allocation-free inference hot paths.
//!
//! The wavefront inference engine (`qppnet::infer`) evaluates hundreds of
//! small matmuls per batch; allocating every layer activation would put the
//! allocator on the critical path (exactly what profiling shows for the
//! training-time [`crate::MlpCache`] when it is reused for serving). A
//! [`BufferPool`] keeps returned [`Matrix`] buffers and hands them back
//! resized, so steady-state serving performs zero heap allocation once
//! every buffer has grown to its high-water mark.
//!
//! ```
//! use qpp_nn::{BufferPool, Matrix};
//!
//! let mut pool = BufferPool::new();
//! let a = pool.take(4, 8);          // fresh allocation (pool is empty)
//! pool.give(a);                     // return it for reuse
//! let b = pool.take(2, 16);         // same allocation, reshaped — no malloc
//! assert_eq!((b.rows(), b.cols()), (2, 16));
//! ```
//!
//! # Threading
//!
//! A pool is deliberately **not** shared between threads — no locks, no
//! atomics. Multicore serving gives each worker thread its *own* pool
//! (`BufferPool` is [`Send`], as the compile-time assertion below pins
//! down), which keeps the hot path lock-free and each worker's buffers
//! warm in its core's cache. Sharing one pool behind a mutex would
//! serialize exactly the allocations the pool exists to avoid.
//!
//! The *owner* of those per-worker pools is the resident [`Executor`]: a
//! process-wide pool of parked worker threads, created once and reused
//! across runs, where each worker permanently owns one `BufferPool` (and
//! the caller owns worker 0's). See [`Executor`] for the park/unpark
//! protocol and the lifetime-soundness argument.

use crate::matrix::Matrix;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// A last-in-first-out pool of reusable [`Matrix`] buffers.
///
/// `take` pops the most recently returned buffer (warm in cache) and
/// [`Matrix::resize_for_overwrite`]s it to the requested shape, growing
/// its allocation only when the new shape exceeds the high-water mark;
/// `give` returns a buffer for reuse. Buffers are plain `Matrix` values —
/// leaking one (by never calling `give`) is safe, just a lost reuse
/// opportunity.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Matrix>,
}

// The multicore serving engine moves pools (and the matrices inside them)
// into scoped worker threads, and shares `&Mlp`/`&Matrix` across workers.
// Pin those auto-trait facts at compile time so a future field addition
// (e.g. an Rc-cached statistic) cannot silently break `Send`-cleanliness.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<BufferPool>();
    assert_send::<Matrix>();
    assert_sync::<Matrix>();
    assert_sync::<crate::mlp::Mlp>();
    // Packed panel state is shared by reference across the same workers
    // (serving forward) and owned per training tape.
    assert_send::<crate::packed::PackedMlp>();
    assert_sync::<crate::packed::PackedMlp>();
    assert_send::<crate::packed::PackedWeights>();
    assert_sync::<crate::packed::PackedWeights>();
    // The resident executor is handed around by shared reference (the
    // global instance) and its workers outlive any one caller.
    assert_send::<Executor>();
    assert_sync::<Executor>();
};

impl BufferPool {
    /// An empty pool.
    pub fn new() -> BufferPool {
        BufferPool { free: Vec::new() }
    }

    /// Takes a `rows × cols` buffer with **unspecified contents** (the
    /// caller must overwrite every element it reads back — every write
    /// kernel in this crate's forward paths does). Reuses a pooled
    /// allocation when one is available; a fresh buffer is zeroed by
    /// construction.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        match self.free.pop() {
            Some(mut m) => {
                m.resize_for_overwrite(rows, cols);
                m
            }
            None => Matrix::zeros(rows, cols),
        }
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn give(&mut self, m: Matrix) {
        self.free.push(m);
    }

    /// Number of buffers currently available for reuse.
    pub fn available(&self) -> usize {
        self.free.len()
    }
}

/// Locks a mutex, ignoring poison: executor state stays consistent across
/// a panicking job because every transition happens *outside* the caught
/// closure (or is a plain counter), so the poisoned flag carries no
/// information here.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A dispatched job: called once per participating worker with that
/// worker's index and its resident `BufferPool`. The `'static` lifetime is
/// a transmute-erased fiction — see the safety comment in
/// [`Executor::run`].
type Job = &'static (dyn Fn(usize, &mut BufferPool) + Sync);

/// One worker's persistent pool slot (shared with the spawned thread that
/// owns it, so callers can inspect pooled-buffer counts while the worker
/// is parked).
type PoolSlot = Arc<Mutex<BufferPool>>;

/// State shared between the executor handle and its resident workers,
/// guarded by one mutex (cold path only — job bodies never touch it).
struct ExecState {
    /// Bumped once per dispatched (multi-worker) run; workers use it to
    /// tell a fresh job from the one they already ran.
    epoch: u64,
    /// The job of the live epoch; `None` between runs.
    job: Option<Job>,
    /// Total workers enrolled in the live epoch, caller included: spawned
    /// workers with `index < participants` take part, the rest keep
    /// sleeping.
    participants: usize,
    /// Enrolled *spawned* workers that have not yet finished the live
    /// epoch; the caller waits for this to reach zero before returning.
    remaining: usize,
    /// First panic payload caught on a spawned worker this epoch,
    /// re-raised on the caller after the run completes.
    worker_panic: Option<Box<dyn std::any::Any + Send>>,
    /// Set on drop; parked workers exit instead of waiting for work.
    shutdown: bool,
}

struct ExecShared {
    state: Mutex<ExecState>,
    /// Workers park here between runs.
    work_cv: Condvar,
    /// The caller parks here until `remaining` reaches zero.
    done_cv: Condvar,
    runs: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
}

/// Observability counters for a resident [`Executor`] (see
/// [`Executor::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Total `run` calls dispatched (including single-threaded fast-path
    /// runs, which never wake a worker).
    pub runs: u64,
    /// Times a resident worker went to sleep on the work condvar. An idle
    /// pool parks each worker exactly once — the counter stays flat while
    /// no runs arrive (the idle-pool-does-not-spin contract, asserted by
    /// the differential suite).
    pub parks: u64,
    /// Times a resident worker picked up a job.
    pub unparks: u64,
    /// Resident worker threads currently spawned (the caller is worker 0
    /// and is not counted).
    pub resident_workers: usize,
}

impl std::fmt::Display for ExecutorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} runs, {} resident workers, {} parks / {} unparks",
            self.runs, self.resident_workers, self.parks, self.unparks
        )
    }
}

/// A resident pool of parked worker threads for level-barrier wavefront
/// runs — the replacement for spawn-per-run scoped threads, whose ~0.2 ms
/// per-thread spawn cost dwarfed the engine's microsecond-scale admissions.
///
/// # Lifecycle
///
/// Workers are spawned lazily (first run that needs them, or eagerly via
/// [`Executor::new`]), then **parked on a condvar** between runs; an idle
/// pool burns no CPU. Each spawned worker permanently owns one
/// [`BufferPool`], kept warm across runs, so steady-state parallel serving
/// still allocates nothing; the caller participates as worker 0 with the
/// executor's caller pool. [`Executor::global`] returns the process-wide
/// instance every serving and training path shares — multiple resident
/// models are tenants of the same pool.
///
/// # Dispatch protocol
///
/// [`Executor::run`]`(threads, job)` with `threads <= 1` calls
/// `job(0, caller_pool)` inline — no worker interaction, no condvar, just
/// one uncontended mutex acquisition (the measured dispatch floor is well
/// under the 5 µs budget). Otherwise the caller bumps the epoch, installs
/// the job, wakes the pool, runs its own share as worker 0, then sleeps
/// until the last enrolled worker checks out. Runs are serialized by the
/// caller-pool lock; nesting `run` inside a job deadlocks and is
/// forbidden.
///
/// # Panics
///
/// A panic on the caller's share is re-raised after every worker finished;
/// a panic on a spawned worker is caught (the resident thread survives),
/// parked in the shared state, and re-raised on the caller when the run
/// completes. Higher layers that interleave barriers with job bodies (the
/// wavefront executor) keep their own per-level poison protocol so no
/// worker is stranded mid-barrier — by construction those jobs never leak
/// a panic into this layer.
///
/// ```
/// use qpp_nn::Executor;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let exec = Executor::new(1); // one resident worker, parked
/// let hits = AtomicUsize::new(0);
/// exec.run(2, &|_worker, _pool| {
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 2); // caller + 1 worker
/// ```
pub struct Executor {
    shared: Arc<ExecShared>,
    /// Index 0 is the caller's pool; spawned worker `w` owns slot `w`.
    pools: Mutex<Vec<PoolSlot>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Executor {
    /// A fresh executor with `workers` resident (parked) worker threads.
    /// More are spawned on demand by [`Executor::run`]; most callers want
    /// [`Executor::global`] instead.
    pub fn new(workers: usize) -> Executor {
        let exec = Executor {
            shared: Arc::new(ExecShared {
                state: Mutex::new(ExecState {
                    epoch: 0,
                    job: None,
                    participants: 0,
                    remaining: 0,
                    worker_panic: None,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                runs: AtomicU64::new(0),
                parks: AtomicU64::new(0),
                unparks: AtomicU64::new(0),
            }),
            pools: Mutex::new(vec![Arc::new(Mutex::new(BufferPool::new()))]),
            handles: Mutex::new(Vec::new()),
        };
        exec.ensure_workers(workers);
        exec
    }

    /// The process-wide resident executor: created parked on first use,
    /// grown to the largest thread count ever requested, shared by every
    /// serving and training path (and so by every resident model — the
    /// multi-tenancy pool). Never torn down.
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| Executor::new(0))
    }

    /// Runs `job` once per worker index `0..threads`, worker 0 on the
    /// calling thread, the rest on resident workers (spawned now if the
    /// pool is smaller than `threads - 1`). Each invocation gets exclusive
    /// use of that worker's persistent [`BufferPool`]. Blocks until every
    /// enrolled worker finished. `threads <= 1` is the inline fast path.
    pub fn run(&self, threads: usize, job: &(dyn Fn(usize, &mut BufferPool) + Sync)) {
        // The caller-pool guard doubles as the run token: exactly one run
        // is in flight per executor, so the job slot below is never
        // overwritten mid-run.
        let caller_slot = lock(&self.pools)[0].clone();
        let mut caller_pool = lock(&caller_slot);
        self.shared.runs.fetch_add(1, Ordering::Relaxed);
        if threads <= 1 {
            job(0, &mut caller_pool);
            return;
        }
        self.ensure_workers(threads - 1);
        // SAFETY: the `'static` on `Job` is lifetime erasure, not a fact.
        // It is sound because this function does not return (and does not
        // clear the job slot) until `remaining == 0`, i.e. until every
        // enrolled worker has finished calling the job and can no longer
        // hold the reference; non-enrolled workers never dereference a job
        // for an epoch they are not part of.
        let job_static: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize, &mut BufferPool) + Sync), Job>(job)
        };
        {
            let mut st = lock(&self.shared.state);
            st.epoch += 1;
            st.job = Some(job_static);
            st.participants = threads;
            st.remaining = threads - 1;
            self.shared.work_cv.notify_all();
        }
        // Catch the caller's share too: unwinding past this frame while
        // workers still hold the transmuted job reference would be UB, so
        // the payload is re-raised only after the rendezvous below.
        let caller = catch_unwind(AssertUnwindSafe(|| job(0, &mut caller_pool)));
        let worker_payload = {
            let mut st = lock(&self.shared.state);
            while st.remaining > 0 {
                st = self.shared.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.job = None;
            st.worker_panic.take()
        };
        drop(caller_pool);
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_payload {
            resume_unwind(payload);
        }
    }

    /// Snapshot of the run/park/unpark counters and the resident worker
    /// count.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            runs: self.shared.runs.load(Ordering::Relaxed),
            parks: self.shared.parks.load(Ordering::Relaxed),
            unparks: self.shared.unparks.load(Ordering::Relaxed),
            resident_workers: lock(&self.handles).len(),
        }
    }

    /// Total matrices currently pooled across the caller's and every
    /// resident worker's `BufferPool` — the steady-state-allocation
    /// observable (stable across runs once every pool hit its high-water
    /// mark). Blocks briefly if a run is in flight.
    pub fn pooled_buffers(&self) -> usize {
        lock(&self.pools).iter().map(|slot| lock(slot).available()).sum()
    }

    /// Spawns resident workers until at least `want` exist.
    fn ensure_workers(&self, want: usize) {
        let mut handles = lock(&self.handles);
        if handles.len() >= want {
            return;
        }
        let mut pools = lock(&self.pools);
        while handles.len() < want {
            let index = handles.len() + 1;
            let pool: PoolSlot = Arc::new(Mutex::new(BufferPool::new()));
            pools.push(pool.clone());
            let shared = self.shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("qpp-exec-{index}"))
                .spawn(move || worker_main(&shared, index, &pool))
                .expect("spawn resident executor worker");
            handles.push(handle);
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        let handles = self.handles.get_mut().unwrap_or_else(|e| e.into_inner());
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A resident worker's main loop: park until a fresh epoch enrolls this
/// index, run the job with the worker's own pool, check out, repeat.
fn worker_main(shared: &ExecShared, index: usize, pool: &Mutex<BufferPool>) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            let mut parked = false;
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch > seen {
                    // A fresh epoch — mark it seen either way so a stale
                    // or non-enrolled epoch is examined only once.
                    seen = st.epoch;
                    if index < st.participants {
                        if let Some(job) = st.job {
                            break job;
                        }
                    }
                }
                if !parked {
                    parked = true;
                    shared.parks.fetch_add(1, Ordering::Relaxed);
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        shared.unparks.fetch_add(1, Ordering::Relaxed);
        // Catch panics so the resident thread survives a poisoned run; the
        // payload is re-raised on the caller (first panicking worker wins).
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut pool = lock(pool);
            job(index, &mut pool);
        }));
        let mut st = lock(&shared.state);
        if let Err(payload) = result {
            st.worker_panic.get_or_insert(payload);
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_buffers() {
        let mut pool = BufferPool::new();
        let a = pool.take(4, 8);
        assert_eq!((a.rows(), a.cols()), (4, 8));
        pool.give(a);
        assert_eq!(pool.available(), 1);
        let b = pool.take(2, 3);
        assert_eq!((b.rows(), b.cols()), (2, 3));
        assert_eq!(b.len(), 6, "length must track the requested shape");
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn fresh_buffers_are_zeroed_and_growth_is_zero_filled() {
        let mut pool = BufferPool::new();
        let a = pool.take(2, 2);
        assert!(a.as_slice().iter().all(|&v| v == 0.0), "fresh buffer");
        pool.give(a);
        // Growing past the high-water mark zero-fills the new tail; the
        // reused prefix is unspecified (and must not be read unwritten).
        let b = pool.take(3, 3);
        assert_eq!(b.len(), 9);
        assert!(b.as_slice()[4..].iter().all(|&v| v == 0.0), "grown tail is zeroed");
    }

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn run_visits_every_worker_index_exactly_once() {
        let exec = Executor::new(0);
        for threads in [1usize, 2, 3, 5] {
            let seen = Mutex::new(Vec::new());
            exec.run(threads, &|w, _pool| {
                seen.lock().unwrap().push(w);
            });
            let mut seen = seen.into_inner().unwrap();
            seen.sort_unstable();
            assert_eq!(seen, (0..threads).collect::<Vec<_>>(), "threads={threads}");
        }
        // Grown on demand to the high-water mark, never shrunk.
        assert_eq!(exec.stats().resident_workers, 4);
    }

    #[test]
    fn single_thread_fast_path_never_wakes_workers() {
        let exec = Executor::new(2);
        let hits = AtomicUsize::new(0);
        for _ in 0..10 {
            exec.run(1, &|w, _pool| {
                assert_eq!(w, 0, "fast path runs on the caller only");
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 10);
        let stats = exec.stats();
        assert_eq!(stats.runs, 10);
        assert_eq!(stats.unparks, 0, "t1 runs must not unpark resident workers");
    }

    #[test]
    fn worker_pools_persist_across_runs() {
        let exec = Executor::new(1);
        // First run leaves one buffer in each participant's pool.
        exec.run(2, &|_w, pool| {
            let m = pool.take(4, 4);
            pool.give(m);
        });
        let pooled = exec.pooled_buffers();
        assert_eq!(pooled, 2, "caller + 1 worker each pooled one buffer");
        // Steady state: reuse is exact, nothing grows.
        for _ in 0..3 {
            exec.run(2, &|_w, pool| {
                let m = pool.take(2, 8);
                pool.give(m);
            });
            assert_eq!(exec.pooled_buffers(), pooled, "pool grew in steady state");
        }
    }

    #[test]
    fn worker_panic_is_reraised_on_the_caller_and_pool_survives() {
        let exec = Executor::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.run(2, &|w, _pool| {
                if w == 1 {
                    panic!("boom on worker {w}");
                }
            });
        }));
        let payload = result.expect_err("worker panic must reach the caller");
        let msg = payload.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("boom on worker 1"), "got: {msg}");
        // The resident worker survived its panic and still takes jobs.
        let hits = AtomicUsize::new(0);
        exec.run(2, &|_w, _pool| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2, "pool dead after worker panic");
    }

    #[test]
    fn caller_panic_waits_for_workers_then_unwinds() {
        let exec = Executor::new(1);
        let worker_done = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.run(2, &|w, _pool| {
                if w == 0 {
                    panic!("boom on caller");
                }
                worker_done.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err(), "caller panic must propagate");
        assert_eq!(worker_done.load(Ordering::Relaxed), 1, "worker share must complete");
        // Executor is still serviceable.
        exec.run(2, &|_w, _pool| {});
    }

    #[test]
    fn idle_pool_parks_and_does_not_spin() {
        let exec = Executor::new(2);
        // Both workers park once at startup; give them a moment to get
        // there, then assert the counters stay flat across an idle window.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while exec.stats().parks < 2 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let before = exec.stats();
        assert_eq!(before.parks, 2, "both workers must park when idle");
        std::thread::sleep(std::time::Duration::from_millis(60));
        let after = exec.stats();
        assert_eq!((after.parks, after.unparks), (before.parks, before.unparks),
            "idle pool must not wake or re-park");
    }
}
