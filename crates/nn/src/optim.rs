//! Gradient-descent optimizers.
//!
//! The paper trains with plain stochastic gradient descent, learning rate
//! `0.001` and momentum `0.9` (§6, "Neural networks"); [`Sgd`] reproduces
//! that. [`Adam`] implements the §8 future-work suggestion ("using a
//! different optimizer \[16\] may prove fruitful") and is exercised by the
//! training-optimizer ablation bench.
//!
//! Optimizer state (velocities / moments) is keyed by an opaque `usize` so a
//! single optimizer can drive many separately-owned parameter tensors — one
//! per layer per neural unit — without borrowing them all at once.

use crate::matrix::Matrix;
use std::collections::HashMap;

/// A stateful gradient-descent rule applied tensor-by-tensor.
///
/// `key` identifies a parameter tensor across steps; implementations lazily
/// allocate per-key state the first time a key is seen.
pub trait Optimizer {
    /// Updates a weight matrix in place from its accumulated gradient.
    fn step_matrix(&mut self, key: usize, w: &mut Matrix, g: &Matrix);
    /// Updates a bias vector in place from its accumulated gradient.
    fn step_vec(&mut self, key: usize, b: &mut [f32], g: &[f32]);
    /// Signals that one optimization step (over all tensors) completed.
    ///
    /// Implementations that need a global step counter (Adam's bias
    /// correction) bump it here; SGD ignores it.
    fn end_step(&mut self) {}
    /// Current learning rate.
    fn learning_rate(&self) -> f32;
    /// Replaces the learning rate (for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
///
/// `v ← μ·v + g`, `w ← w − lr·v`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    vel_m: HashMap<usize, Matrix>,
    vel_v: HashMap<usize, Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer. The paper's settings are
    /// `Sgd::new(0.001, 0.9)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd { lr, momentum, vel_m: HashMap::new(), vel_v: HashMap::new() }
    }
}

impl Optimizer for Sgd {
    fn step_matrix(&mut self, key: usize, w: &mut Matrix, g: &Matrix) {
        let v = self
            .vel_m
            .entry(key)
            .or_insert_with(|| Matrix::zeros(w.rows(), w.cols()));
        debug_assert_eq!(v.rows(), w.rows());
        let mu = self.momentum;
        let lr = self.lr;
        for ((vv, &gv), wv) in v
            .as_mut_slice()
            .iter_mut()
            .zip(g.as_slice())
            .zip(w.as_mut_slice())
        {
            *vv = mu * *vv + gv;
            *wv -= lr * *vv;
        }
    }

    fn step_vec(&mut self, key: usize, b: &mut [f32], g: &[f32]) {
        let v = self.vel_v.entry(key).or_insert_with(|| vec![0.0; b.len()]);
        let mu = self.momentum;
        let lr = self.lr;
        for ((vv, &gv), bv) in v.iter_mut().zip(g).zip(b.iter_mut()) {
            *vv = mu * *vv + gv;
            *bv -= lr * *vv;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba \[16\]) with bias-corrected first/second moments.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m_m: HashMap<usize, Matrix>,
    v_m: HashMap<usize, Matrix>,
    m_v: HashMap<usize, Vec<f32>>,
    v_v: HashMap<usize, Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with the conventional β₁=0.9, β₂=0.999.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 1,
            m_m: HashMap::new(),
            v_m: HashMap::new(),
            m_v: HashMap::new(),
            v_v: HashMap::new(),
        }
    }

    #[inline]
    fn corrections(&self) -> (f32, f32) {
        let c1 = 1.0 - self.beta1.powi(self.t);
        let c2 = 1.0 - self.beta2.powi(self.t);
        (c1, c2)
    }
}

impl Optimizer for Adam {
    fn step_matrix(&mut self, key: usize, w: &mut Matrix, g: &Matrix) {
        let (c1, c2) = self.corrections();
        let (b1, b2, lr, eps) = (self.beta1, self.beta2, self.lr, self.eps);
        let m = self
            .m_m
            .entry(key)
            .or_insert_with(|| Matrix::zeros(w.rows(), w.cols()));
        let v = self
            .v_m
            .entry(key)
            .or_insert_with(|| Matrix::zeros(w.rows(), w.cols()));
        for (((mv, vv), &gv), wv) in m
            .as_mut_slice()
            .iter_mut()
            .zip(v.as_mut_slice())
            .zip(g.as_slice())
            .zip(w.as_mut_slice())
        {
            *mv = b1 * *mv + (1.0 - b1) * gv;
            *vv = b2 * *vv + (1.0 - b2) * gv * gv;
            let mhat = *mv / c1;
            let vhat = *vv / c2;
            *wv -= lr * mhat / (vhat.sqrt() + eps);
        }
    }

    fn step_vec(&mut self, key: usize, b: &mut [f32], g: &[f32]) {
        let (c1, c2) = self.corrections();
        let (b1, b2, lr, eps) = (self.beta1, self.beta2, self.lr, self.eps);
        let m = self.m_v.entry(key).or_insert_with(|| vec![0.0; b.len()]);
        let v = self.v_v.entry(key).or_insert_with(|| vec![0.0; b.len()]);
        for (((mv, vv), &gv), bv) in m.iter_mut().zip(v.iter_mut()).zip(g).zip(b.iter_mut()) {
            *mv = b1 * *mv + (1.0 - b1) * gv;
            *vv = b2 * *vv + (1.0 - b2) * gv * gv;
            let mhat = *mv / c1;
            let vhat = *vv / c2;
            *bv -= lr * mhat / (vhat.sqrt() + eps);
        }
    }

    fn end_step(&mut self) {
        self.t += 1;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_without_momentum_is_plain_descent() {
        let mut opt = Sgd::new(0.1, 0.0);
        let mut w = Matrix::from_row(&[1.0, -1.0]);
        let g = Matrix::from_row(&[0.5, -0.5]);
        opt.step_matrix(0, &mut w, &g);
        assert!((w.get(0, 0) - 0.95).abs() < 1e-6);
        assert!((w.get(0, 1) + 0.95).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_accelerates_repeated_gradients() {
        let mut opt = Sgd::new(0.1, 0.9);
        let mut w = Matrix::from_row(&[0.0]);
        let g = Matrix::from_row(&[1.0]);
        opt.step_matrix(0, &mut w, &g);
        let first_step = -w.get(0, 0);
        opt.step_matrix(0, &mut w, &g);
        let second_step = first_step - -w.get(0, 0);
        assert!(second_step.abs() > first_step.abs());
    }

    #[test]
    fn distinct_keys_have_independent_state() {
        let mut opt = Sgd::new(0.1, 0.9);
        let mut w1 = Matrix::from_row(&[0.0]);
        let mut w2 = Matrix::from_row(&[0.0]);
        let g = Matrix::from_row(&[1.0]);
        opt.step_matrix(0, &mut w1, &g);
        opt.step_matrix(0, &mut w1, &g);
        opt.step_matrix(1, &mut w2, &g);
        // w2's first step must match w1's first step, not carry w1's velocity.
        assert!((w2.get(0, 0) + 0.1).abs() < 1e-6);
        assert!(w1.get(0, 0) < -0.25);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let mut w = Matrix::from_row(&[5.0]);
        for _ in 0..300 {
            // gradient of (w-2)^2
            let g = Matrix::from_row(&[2.0 * (w.get(0, 0) - 2.0)]);
            opt.step_matrix(0, &mut w, &g);
            opt.end_step();
        }
        assert!((w.get(0, 0) - 2.0).abs() < 1e-2);
    }

    #[test]
    fn learning_rate_is_settable() {
        let mut opt = Sgd::new(0.1, 0.0);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
