//! # qpp-nn — dense neural-network substrate
//!
//! A small, dependency-light neural-network library built for the QPPNet
//! reproduction (Marcus & Papaemmanouil, *Plan-Structured Deep Neural Network
//! Models for Query Performance Prediction*, VLDB 2019). The paper trains its
//! model with PyTorch; this crate provides the equivalent building blocks in
//! pure Rust:
//!
//! * [`Matrix`] — row-major `f32` matrices with the handful of fused kernels
//!   backpropagation needs (`X·W`, `A·Bᵀ`, `Aᵀ·B`, horizontal concatenation,
//!   column slicing) plus the row-routing kernels batched inference needs
//!   (`gather_rows_into` / `scatter_rows_into`, allocation-free `matmul_into`).
//! * [`BufferPool`] — reusable matrix buffers and an inference-only
//!   [`Mlp::forward_pooled`] pass, so serving hot paths allocate nothing in
//!   steady state — plus the resident [`Executor`]: a process-wide pool of
//!   parked worker threads (each owning its `BufferPool`) that multicore
//!   serving and training dispatch onto instead of spawning threads per run.
//! * [`Dense`] / [`Mlp`] — affine layers with configurable [`Activation`]s,
//!   batched forward passes, cached activations, and exact reverse-mode
//!   gradients (including the *input* gradient, which plan-structured
//!   networks must route into child units).
//! * [`Sgd`] (momentum, the paper's optimizer) and [`Adam`] (evaluated as the
//!   paper's §8 future-work extension) behind the [`Optimizer`] trait.
//! * [`loss`] — L2/MSE and absolute-error losses with gradients.
//! * [`gradcheck`] — central-difference gradient checking used by the test
//!   suite to certify every backward pass.
//!
//! All randomness is injected through explicit [`rand::Rng`] handles so that
//! experiments are reproducible bit-for-bit.
//!
//! ```
//! use qpp_nn::{Activation, Init, Matrix, Mlp, Sgd, loss};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // 2 inputs -> 16 hidden -> 1 output, ReLU inside, identity out.
//! let mut mlp = Mlp::new(&[2, 16, 1], Activation::Relu, Activation::Identity,
//!                        Init::He, &mut rng);
//! let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
//! let target = Matrix::from_rows(&[&[1.0], &[-1.0]]);
//! let mut opt = Sgd::new(0.05, 0.9);
//! for _ in 0..200 {
//!     let cache = mlp.forward_cached(&x);
//!     let (_, dout) = loss::mse(cache.output(), &target);
//!     mlp.zero_grad();
//!     mlp.backward(&cache, &dout);
//!     mlp.apply_grads(&mut opt, 0);
//! }
//! let pred = mlp.forward(&x);
//! assert!((pred.get(0, 0) - 1.0).abs() < 0.1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod activation;
pub mod gradcheck;
pub mod init;
pub mod layer;
pub mod loss;
pub mod lstm;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod packed;
pub mod pool;
pub mod tier;

pub use activation::{activation_backward_inplace, Activation};
pub use init::Init;
pub use layer::Dense;
pub use lstm::{LstmNodeCache, TreeLstmCell};
pub use matrix::Matrix;
pub use mlp::{Mlp, MlpCache};
pub use optim::{Adam, Optimizer, Sgd};
pub use packed::{PackedBias, PackedDense, PackedMlp, PackedWeights};
pub use pool::{BufferPool, Executor, ExecutorStats};
pub use tier::KernelTier;
