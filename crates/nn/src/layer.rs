//! A single dense (affine + activation) layer with exact gradients.
//!
//! Implements Equation 1 of the paper, `t(x) = S(W·x + b)`, batched over the
//! rows of a [`Matrix`]. Weights are stored `in × out` so the forward pass is
//! a plain `X·W` and no transposes are materialized anywhere in training.

use crate::activation::Activation;
use crate::init::Init;
use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer `y = act(x·W + b)` with gradient accumulators.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Weights, `in_dim × out_dim`.
    pub w: Matrix,
    /// Bias, length `out_dim`.
    pub b: Vec<f32>,
    /// Elementwise nonlinearity.
    pub act: Activation,
    /// Accumulated weight gradient (same shape as `w`).
    pub gw: Matrix,
    /// Accumulated bias gradient (same length as `b`).
    pub gb: Vec<f32>,
}

impl Dense {
    /// Creates a layer with `init`-sampled weights and zero biases.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, init: Init, rng: &mut impl Rng) -> Self {
        Dense {
            w: init.matrix(in_dim, out_dim, rng),
            b: vec![0.0; out_dim],
            act,
            gw: Matrix::zeros(in_dim, out_dim),
            gb: vec![0.0; out_dim],
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass returning `(pre_activation, activation)`.
    ///
    /// The pre-activation is needed by [`Dense::backward`]; use
    /// [`Dense::forward`] when gradients are not required.
    pub fn forward_cached(&self, x: &Matrix) -> (Matrix, Matrix) {
        let mut z = x.matmul(&self.w);
        z.add_row_inplace(&self.b);
        let mut a = z.clone();
        let act = self.act;
        if act != Activation::Identity {
            a.map_inplace(|v| act.apply(v));
        }
        (z, a)
    }

    /// Forward pass returning only the activation.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.w);
        z.add_row_inplace(&self.b);
        let act = self.act;
        if act != Activation::Identity {
            z.map_inplace(|v| act.apply(v));
        }
        z
    }

    /// Inference-only forward pass into a preallocated output
    /// (`x.rows × out_dim`, overwritten). The allocation-free twin of
    /// [`Dense::forward`] used by the serving hot path: gemm, bias and
    /// activation are fused into one pass over the output.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        let act = self.act;
        if act == Activation::Identity {
            x.matmul_bias_act_into(&self.w, &self.b, |v| v, out);
        } else {
            x.matmul_bias_act_into(&self.w, &self.b, |v| act.apply(v), out);
        }
    }

    /// Backward pass.
    ///
    /// Given the layer input `x`, the cached pre-activation `z` and the
    /// gradient `d_out` of the loss w.r.t. this layer's *activation*,
    /// accumulates `gw`/`gb` and returns the gradient w.r.t. `x`.
    pub fn backward(&mut self, x: &Matrix, z: &Matrix, d_out: &Matrix) -> Matrix {
        debug_assert_eq!(d_out.rows(), x.rows());
        debug_assert_eq!(d_out.cols(), self.out_dim());
        // dZ = d_out ⊙ act'(z)
        let mut dz = d_out.clone();
        if self.act != Activation::Identity {
            let act = self.act;
            for (dv, &zv) in dz.as_mut_slice().iter_mut().zip(z.as_slice()) {
                *dv *= act.derivative(zv);
            }
        }
        // dW += Xᵀ·dZ ; db += colsum(dZ) ; dX = dZ·Wᵀ
        x.matmul_at_b_into(&dz, &mut self.gw);
        dz.col_sum_into(&mut self.gb);
        dz.matmul_a_bt(&self.w)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw.fill_zero();
        self.gb.fill(0.0);
    }

    /// Scales accumulated gradients (used for batch-size normalization).
    pub fn scale_grad(&mut self, s: f32) {
        self.gw.scale_inplace(s);
        for g in &mut self.gb {
            *g *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn layer() -> Dense {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        Dense::new(4, 3, Activation::Relu, Init::He, &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let l = layer();
        let x = Matrix::zeros(5, 4);
        let y = l.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 3));
    }

    #[test]
    fn forward_matches_manual_single_row() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let l = Dense::new(2, 2, Activation::Identity, Init::Xavier, &mut rng);
        let x = Matrix::from_row(&[1.0, -2.0]);
        let y = l.forward(&x);
        let want0 = l.w.get(0, 0) * 1.0 + l.w.get(1, 0) * -2.0 + l.b[0];
        let want1 = l.w.get(0, 1) * 1.0 + l.w.get(1, 1) * -2.0 + l.b[1];
        assert!((y.get(0, 0) - want0).abs() < 1e-6);
        assert!((y.get(0, 1) - want1).abs() < 1e-6);
    }

    #[test]
    fn zero_grad_resets_accumulators() {
        let mut l = layer();
        let x = Matrix::from_fn(2, 4, |i, j| (i + j) as f32 * 0.3 - 0.5);
        let (z, a) = l.forward_cached(&x);
        let d = Matrix::from_fn(2, 3, |_, _| 1.0);
        let _ = l.backward(&x, &z, &d);
        assert!(l.gw.norm() > 0.0 || a.norm() == 0.0);
        l.zero_grad();
        assert_eq!(l.gw.norm(), 0.0);
        assert!(l.gb.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn backward_accumulates_over_calls() {
        let mut l = layer();
        let x = Matrix::from_fn(2, 4, |i, j| (i * 4 + j) as f32 * 0.1);
        let (z, _a) = l.forward_cached(&x);
        let d = Matrix::from_fn(2, 3, |_, _| 0.5);
        let _ = l.backward(&x, &z, &d);
        let once = l.gw.clone();
        let _ = l.backward(&x, &z, &d);
        let mut twice = once.clone();
        twice.scale_inplace(2.0);
        for (a, b) in l.gw.as_slice().iter().zip(twice.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
