//! Packed-panel weight layout: cache-line-aligned, kernel-order column
//! panels for the wavefront gemm families.
//!
//! The unpacked serving kernel streams a row-major weight matrix with a
//! `cols × 4`-byte stride per contraction step — 512 B jumps for the
//! paper tier's 128-wide layers, so a 64 KB weight matrix is walked in a
//! pattern the L1 can't hold, and output widths that aren't a multiple
//! of the register tile (the paper tier's 33-wide output layer) fall
//! into a scalar remainder loop per row. A [`PackedWeights`] fixes both
//! at data-layout time: the matrix is repacked **once per weight
//! update** into column panels of [`LANES`] = 16 floats — one 64-byte
//! cache line, one AVX-512 register, two AVX2 registers — stored
//! contraction-major inside each panel group, so the kernel's inner loop
//! reads the panel strictly forward, 64-aligned, and the ragged last
//! group is zero-padded once instead of masked per iteration.
//!
//! Three kernel families consume the layout behind the process-wide
//! [`KernelTier`] dispatch (`Scalar | Avx2Fma | Avx512f`):
//!
//! * **forward** — `out = act(x · W + b)` via [`PackedDense::forward_into`];
//! * **input gradient** — `dX = dZ · Wᵀ` via
//!   [`PackedDense::backward_input_into`], using a second, transposed
//!   panel set packed per weight update (cheap at update granularity —
//!   the per-*sweep* `Wᵀ` materialization the ROADMAP measured as a loss
//!   paid this cost per gemm call instead) and reusing the forward
//!   kernel with a zero initializer, which also inherits its
//!   `dZ == 0` skip — ReLU backward zeros are common;
//! * **weight gradient** — `dW += Xᵀ · dZ` via
//!   [`PackedWeights::accumulate_at_b`], accumulating into a packed
//!   gradient buffer of the same panel shape as the weights it will be
//!   folded into ([`PackedWeights::add_unpacked_into`]).
//!
//! # Bitwise determinism
//!
//! The packed forward is **bit-identical** to the unpacked dispatch at
//! the same tier, by construction, and the SIMD tiers are bit-identical
//! to each other:
//!
//! * every output element is one chain `bias + Σₖ x[k]·w[k][j]` with `k`
//!   strictly ascending, one FMA per retained term — lane position
//!   (ZMM vs two YMM vs unpacked tiles) never changes a lane's chain;
//! * zero-skip decisions are free: under the crate-wide kernel caveats
//!   (biases are never `-0.0`, weights are finite) `fma(0, w, acc)`
//!   is exactly `acc`, so the block-skip granularity (4-row blocks vs
//!   single rows) cannot change results;
//! * the scalar tier replicates the unpacked scalar kernels'
//!   multiply-then-add chains instead, so forced-scalar runs
//!   ([`crate::tier::FORCE_TIER_ENV`]) stay bit-identical to the
//!   unpacked scalar reference.
//!
//! Row invariance (a row's bits don't depend on its neighbours) carries
//! over unchanged, so the serving engine's contracts — identical results
//! at any thread count, streaming admission bitwise-equal to a fresh
//! compile — survive the layout swap; property tests in this module and
//! the differential suites enforce all of it against the retained
//! unpacked kernels.
//!
//! Packed structures are **ephemeral** acceleration state: they are
//! rebuilt from the authoritative [`Dense`]/[`Mlp`] weights at
//! fit/load/compile time and are never serialized.

use crate::activation::Activation;
use crate::layer::Dense;
use crate::matrix::Matrix;
use crate::mlp::Mlp;
use crate::pool::BufferPool;
use crate::tier::KernelTier;

/// Panel width in `f32` lanes: one 64-byte cache line, one AVX-512
/// register, two AVX2 registers.
pub const LANES: usize = 16;

/// One cache-line-sized, 64-byte-aligned lane group.
#[derive(Debug, Clone, Copy)]
#[repr(C, align(64))]
struct Align64([f32; LANES]);

const ZERO_GROUP: Align64 = Align64([0.0; LANES]);

/// A matrix repacked into kernel-order column panels (see the module
/// docs): logical element `(k, j)` of a `depth × width` matrix lives in
/// group `g = j / LANES` at `data[g · depth + k]`, lane `j % LANES`;
/// lanes past `width` in the last group are zero.
#[derive(Debug, Clone)]
pub struct PackedWeights {
    /// Contraction length (rows of the logical matrix).
    depth: usize,
    /// Logical column count (lanes beyond it are zero padding).
    width: usize,
    /// `ceil(width / LANES)`.
    groups: usize,
    /// `groups × depth` lane groups, group-major.
    data: Vec<Align64>,
}

impl PackedWeights {
    /// Packs `src` (`depth = src.rows()`, `width = src.cols()`).
    pub fn pack(src: &Matrix) -> PackedWeights {
        let mut p = PackedWeights::zeros(src.rows(), src.cols());
        p.repack_from(src);
        p
    }

    /// Packs `srcᵀ` (`depth = src.cols()`, `width = src.rows()`) — the
    /// input-gradient panels for `dX = dZ · Wᵀ`.
    pub fn pack_transposed(src: &Matrix) -> PackedWeights {
        let mut p = PackedWeights::zeros(src.cols(), src.rows());
        p.repack_transposed_from(src);
        p
    }

    /// A zeroed panel set of the given logical shape (the weight-gradient
    /// accumulator layout).
    pub fn zeros(depth: usize, width: usize) -> PackedWeights {
        let groups = width.div_ceil(LANES);
        PackedWeights { depth, width, groups, data: vec![ZERO_GROUP; groups * depth] }
    }

    /// Contraction length (logical row count).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Logical column count.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Rewrites the panels from `src` without reallocating.
    ///
    /// # Panics
    /// Panics if `src`'s shape differs from the packed shape.
    pub fn repack_from(&mut self, src: &Matrix) {
        assert_eq!(
            (src.rows(), src.cols()),
            (self.depth, self.width),
            "repack shape mismatch"
        );
        self.data.fill(ZERO_GROUP);
        for k in 0..self.depth {
            let row = src.row(k);
            for g in 0..self.groups {
                let lanes = (self.width - g * LANES).min(LANES);
                let dst = &mut self.data[g * self.depth + k].0;
                dst[..lanes].copy_from_slice(&row[g * LANES..g * LANES + lanes]);
            }
        }
    }

    /// Rewrites the panels from `srcᵀ` without reallocating.
    ///
    /// # Panics
    /// Panics if `srcᵀ`'s shape differs from the packed shape.
    pub fn repack_transposed_from(&mut self, src: &Matrix) {
        assert_eq!(
            (src.cols(), src.rows()),
            (self.depth, self.width),
            "repack shape mismatch"
        );
        self.data.fill(ZERO_GROUP);
        for k in 0..self.depth {
            // Logical row k of Wᵀ is column k of W.
            for j in 0..self.width {
                self.data[(j / LANES) * self.depth + k].0[j % LANES] = src.get(j, k);
            }
        }
    }

    /// Zeroes every lane (gradient-accumulator reset, allocation kept).
    pub fn fill_zero(&mut self) {
        self.data.fill(ZERO_GROUP);
    }

    /// Logical element `(k, j)` (layout tests).
    #[cfg(test)]
    fn get(&self, k: usize, j: usize) -> f32 {
        self.data[(j / LANES) * self.depth + k].0[j % LANES]
    }

    /// Adds the logical (non-padding) contents onto `dst` — the fold of a
    /// packed gradient accumulator into a layer's unpacked `gw`.
    ///
    /// # Panics
    /// Panics if `dst`'s shape differs from the packed logical shape.
    pub fn add_unpacked_into(&self, dst: &mut Matrix) {
        assert_eq!(
            (dst.rows(), dst.cols()),
            (self.depth, self.width),
            "unpack shape mismatch"
        );
        for k in 0..self.depth {
            let drow = dst.row_mut(k);
            for g in 0..self.groups {
                let lanes = (self.width - g * LANES).min(LANES);
                let src = &self.data[g * self.depth + k].0;
                for (d, s) in drow[g * LANES..g * LANES + lanes].iter_mut().zip(src) {
                    *d += s;
                }
            }
        }
    }

    /// `out = a · P (+ bias)` — the packed twin of
    /// [`Matrix::matmul_bias_act_into`]'s gemm (the caller applies the
    /// activation, as the unpacked dispatch sites do). With `bias: None`
    /// accumulator chains start at `+0.0` — the input-gradient family
    /// `dX = dZ · Wᵀ` over transposed panels.
    ///
    /// Row-invariant and bit-identical to the unpacked dispatch at the
    /// same [`KernelTier`] (module docs).
    ///
    /// # Panics
    /// Panics on shape mismatch (same message as the unpacked kernels —
    /// the engines' mismatched-model guards key on it).
    pub fn gemm_into(&self, a: &Matrix, bias: Option<&PackedBias>, out: &mut Matrix) {
        assert_eq!(
            a.cols(),
            self.depth,
            "matmul dimension mismatch: {}x{} · {}x{}",
            a.rows(),
            a.cols(),
            self.depth,
            self.width
        );
        assert_eq!(
            (out.rows(), out.cols()),
            (a.rows(), self.width),
            "output shape mismatch"
        );
        if let Some(b) = bias {
            assert_eq!(b.len, self.width, "bias length mismatch");
        }
        #[cfg(target_arch = "x86_64")]
        {
            let tier = KernelTier::current();
            if tier.wide() {
                // SAFETY: tier detection verified avx512f at runtime.
                unsafe { self.gemm_avx512(a, bias, out) };
                return;
            }
            if tier.simd() {
                // SAFETY: tier detection verified avx2+fma at runtime.
                unsafe { self.gemm_avx2(a, bias, out) };
                return;
            }
        }
        self.gemm_scalar(a, bias, out);
    }

    /// `self += aᵀ · b` — the packed weight-gradient family
    /// (`dW += Xᵀ · dZ`), accumulating into these panels. `a` rows are
    /// zero-skipped (ReLU activations make `X` sparse). SIMD tiers are
    /// bit-identical to each other; the scalar tier matches the unpacked
    /// scalar reference's multiply-then-add chains.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn accumulate_at_b(&mut self, a: &Matrix, b: &Matrix) {
        assert_eq!(a.rows(), b.rows(), "matmul_at_b contraction mismatch");
        assert_eq!(
            (a.cols(), b.cols()),
            (self.depth, self.width),
            "matmul_at_b dimension mismatch: ({}x{})ᵀ · {}x{} into {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols(),
            self.depth,
            self.width
        );
        #[cfg(target_arch = "x86_64")]
        {
            let tier = KernelTier::current();
            if tier.wide() {
                // SAFETY: tier detection verified avx512f at runtime.
                unsafe { self.at_b_avx512(a, b) };
                return;
            }
            if tier.simd() {
                // SAFETY: tier detection verified avx2+fma at runtime.
                unsafe { self.at_b_avx2(a, b) };
                return;
            }
        }
        self.at_b_scalar(a, b);
    }

    /// Portable forward/input-gradient kernel, replicating the unpacked
    /// scalar kernel's chains exactly: initialize from the bias, then one
    /// multiply-then-add per nonzero `x[k]`, `k` ascending.
    fn gemm_scalar(&self, a: &Matrix, bias: Option<&PackedBias>, out: &mut Matrix) {
        for i in 0..a.rows() {
            let arow = a.row(i);
            for g in 0..self.groups {
                let lanes = (self.width - g * LANES).min(LANES);
                let mut acc = match bias {
                    Some(b) => b.data[g].0,
                    None => [0.0f32; LANES],
                };
                for (k, &x) in arow.iter().enumerate() {
                    if x == 0.0 {
                        continue;
                    }
                    let panel = &self.data[g * self.depth + k].0;
                    for (o, &w) in acc.iter_mut().zip(panel) {
                        *o += x * w;
                    }
                }
                out.row_mut(i)[g * LANES..g * LANES + lanes].copy_from_slice(&acc[..lanes]);
            }
        }
    }

    /// Portable weight-gradient kernel: multiply-then-add per nonzero
    /// `a[r, n]`, `r` ascending — the unpacked broadcast reference's
    /// chains.
    fn at_b_scalar(&mut self, a: &Matrix, b: &Matrix) {
        for g in 0..self.groups {
            let lanes = (self.width - g * LANES).min(LANES);
            let base = g * LANES;
            for n in 0..self.depth {
                let acc = &mut self.data[g * self.depth + n].0;
                for r in 0..a.rows() {
                    let x = a.row(r)[n];
                    if x == 0.0 {
                        continue;
                    }
                    let brow = &b.row(r)[base..base + lanes];
                    for (o, &w) in acc[..lanes].iter_mut().zip(brow) {
                        *o += x * w;
                    }
                }
            }
        }
    }

    /// AVX2+FMA forward/input-gradient kernel: per group, 4-row register
    /// blocks over two aligned 8-lane panel halves; remainder rows run
    /// the single-row variant. Chains are pure FMA, `k` ascending.
    ///
    /// # Safety
    /// Caller must verify avx2+fma at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn gemm_avx2(&self, a: &Matrix, bias: Option<&PackedBias>, out: &mut Matrix) {
        use std::arch::x86_64::*;
        let (n, kd, m) = (a.rows(), self.depth, self.width);
        let ad = a.as_slice().as_ptr();
        let od = out.as_mut_slice().as_mut_ptr();
        let nb = n - n % 4;
        for g in 0..self.groups {
            let lanes = (m - g * LANES).min(LANES);
            let pbase = self.data.as_ptr().add(g * kd) as *const f32;
            let (init_lo, init_hi) = match bias {
                Some(b) => {
                    let bp = b.data.as_ptr().add(g) as *const f32;
                    (_mm256_load_ps(bp), _mm256_load_ps(bp.add(8)))
                }
                None => (_mm256_setzero_ps(), _mm256_setzero_ps()),
            };
            let mut ib = 0;
            while ib < nb {
                let (a0, a1, a2, a3) =
                    (ad.add(ib * kd), ad.add((ib + 1) * kd), ad.add((ib + 2) * kd), ad.add((ib + 3) * kd));
                let (mut l0, mut h0) = (init_lo, init_hi);
                let (mut l1, mut h1) = (init_lo, init_hi);
                let (mut l2, mut h2) = (init_lo, init_hi);
                let (mut l3, mut h3) = (init_lo, init_hi);
                for k in 0..kd {
                    let (x0, x1, x2, x3) = (*a0.add(k), *a1.add(k), *a2.add(k), *a3.add(k));
                    if x0 == 0.0 && x1 == 0.0 && x2 == 0.0 && x3 == 0.0 {
                        continue;
                    }
                    let wl = _mm256_load_ps(pbase.add(k * LANES));
                    let wh = _mm256_load_ps(pbase.add(k * LANES + 8));
                    l0 = _mm256_fmadd_ps(_mm256_set1_ps(x0), wl, l0);
                    h0 = _mm256_fmadd_ps(_mm256_set1_ps(x0), wh, h0);
                    l1 = _mm256_fmadd_ps(_mm256_set1_ps(x1), wl, l1);
                    h1 = _mm256_fmadd_ps(_mm256_set1_ps(x1), wh, h1);
                    l2 = _mm256_fmadd_ps(_mm256_set1_ps(x2), wl, l2);
                    h2 = _mm256_fmadd_ps(_mm256_set1_ps(x2), wh, h2);
                    l3 = _mm256_fmadd_ps(_mm256_set1_ps(x3), wl, l3);
                    h3 = _mm256_fmadd_ps(_mm256_set1_ps(x3), wh, h3);
                }
                for (r, (lo, hi)) in [(l0, h0), (l1, h1), (l2, h2), (l3, h3)].into_iter().enumerate() {
                    store_group_avx2(od.add((ib + r) * m + g * LANES), lo, hi, lanes);
                }
                ib += 4;
            }
            for i in nb..n {
                let arow = ad.add(i * kd);
                let (mut lo, mut hi) = (init_lo, init_hi);
                for k in 0..kd {
                    let x = *arow.add(k);
                    if x == 0.0 {
                        continue;
                    }
                    let xv = _mm256_set1_ps(x);
                    lo = _mm256_fmadd_ps(xv, _mm256_load_ps(pbase.add(k * LANES)), lo);
                    hi = _mm256_fmadd_ps(xv, _mm256_load_ps(pbase.add(k * LANES + 8)), hi);
                }
                store_group_avx2(od.add(i * m + g * LANES), lo, hi, lanes);
            }
        }
    }

    /// AVX-512F forward/input-gradient kernel. Full 16-lane groups run
    /// in *pairs* — 8 ZMM accumulators per 4-row block, enough
    /// independent FMA chains to cover the FMA latency×throughput
    /// product, and each pass over the input matrix covers 32 output
    /// columns instead of 16. A leftover full group and the ragged tail
    /// group run the single-group variant. Chains are identical to
    /// [`PackedWeights::gemm_avx2`]'s lane for lane: the 4-row zero-skip
    /// tests the same `x` values whether one or two groups share the
    /// pass, so pairing never changes which FMAs reach a given lane.
    ///
    /// Full-group stores are deliberately unmasked: a masked store —
    /// even with an all-ones mask — blocks store-to-load forwarding
    /// into the next chained layer's scalar broadcast reads, which
    /// measured as a ~1.7x whole-MLP slowdown despite identical
    /// isolated-gemm speed.
    ///
    /// # Safety
    /// Caller must verify avx512f at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn gemm_avx512(&self, a: &Matrix, bias: Option<&PackedBias>, out: &mut Matrix) {
        use std::arch::x86_64::*;
        let (n, kd, m) = (a.rows(), self.depth, self.width);
        let ad = a.as_slice().as_ptr();
        let od = out.as_mut_slice().as_mut_ptr();
        let nb = n - n % 4;
        let full = m / LANES;
        let mut g = 0;
        while g + 2 <= full {
            let pb0 = self.data.as_ptr().add(g * kd) as *const f32;
            let pb1 = self.data.as_ptr().add((g + 1) * kd) as *const f32;
            let (init0, init1) = match bias {
                Some(b) => (
                    _mm512_load_ps(b.data.as_ptr().add(g) as *const f32),
                    _mm512_load_ps(b.data.as_ptr().add(g + 1) as *const f32),
                ),
                None => (_mm512_setzero_ps(), _mm512_setzero_ps()),
            };
            let mut ib = 0;
            while ib < nb {
                let (a0, a1, a2, a3) =
                    (ad.add(ib * kd), ad.add((ib + 1) * kd), ad.add((ib + 2) * kd), ad.add((ib + 3) * kd));
                let (mut c00, mut c10, mut c20, mut c30) = (init0, init0, init0, init0);
                let (mut c01, mut c11, mut c21, mut c31) = (init1, init1, init1, init1);
                // No zero-skip here, on purpose: with 8 accumulators the
                // FMA pipeline is saturated, so the data-dependent skip
                // branch's mispredictions cost more than the ~6% of
                // all-4-zero iterations it saves on ReLU-sparse input.
                // Skipping is arithmetically a no-op under the packing
                // caveats (finite weights, biases never -0.0): each
                // skipped lane would compute `fma(±0·w, acc) == acc`
                // bit for bit, so dropping the branch leaves every
                // lane's chain unchanged.
                for k in 0..kd {
                    let (x0, x1, x2, x3) = (*a0.add(k), *a1.add(k), *a2.add(k), *a3.add(k));
                    let w0 = _mm512_load_ps(pb0.add(k * LANES));
                    let w1 = _mm512_load_ps(pb1.add(k * LANES));
                    let v0 = _mm512_set1_ps(x0);
                    c00 = _mm512_fmadd_ps(v0, w0, c00);
                    c01 = _mm512_fmadd_ps(v0, w1, c01);
                    let v1 = _mm512_set1_ps(x1);
                    c10 = _mm512_fmadd_ps(v1, w0, c10);
                    c11 = _mm512_fmadd_ps(v1, w1, c11);
                    let v2 = _mm512_set1_ps(x2);
                    c20 = _mm512_fmadd_ps(v2, w0, c20);
                    c21 = _mm512_fmadd_ps(v2, w1, c21);
                    let v3 = _mm512_set1_ps(x3);
                    c30 = _mm512_fmadd_ps(v3, w0, c30);
                    c31 = _mm512_fmadd_ps(v3, w1, c31);
                }
                for (r, (ca, cb)) in
                    [(c00, c01), (c10, c11), (c20, c21), (c30, c31)].into_iter().enumerate()
                {
                    let dst = od.add((ib + r) * m + g * LANES);
                    _mm512_storeu_ps(dst, ca);
                    _mm512_storeu_ps(dst.add(LANES), cb);
                }
                ib += 4;
            }
            for i in nb..n {
                let arow = ad.add(i * kd);
                let (mut acc0, mut acc1) = (init0, init1);
                for k in 0..kd {
                    let x = *arow.add(k);
                    if x == 0.0 {
                        continue;
                    }
                    let xv = _mm512_set1_ps(x);
                    acc0 = _mm512_fmadd_ps(xv, _mm512_load_ps(pb0.add(k * LANES)), acc0);
                    acc1 = _mm512_fmadd_ps(xv, _mm512_load_ps(pb1.add(k * LANES)), acc1);
                }
                let dst = od.add(i * m + g * LANES);
                _mm512_storeu_ps(dst, acc0);
                _mm512_storeu_ps(dst.add(LANES), acc1);
            }
            g += 2;
        }
        while g < self.groups {
            let lanes = (m - g * LANES).min(LANES);
            let mask: __mmask16 = if lanes == LANES { !0 } else { (1u16 << lanes) - 1 };
            let pbase = self.data.as_ptr().add(g * kd) as *const f32;
            let init = match bias {
                Some(b) => _mm512_load_ps(b.data.as_ptr().add(g) as *const f32),
                None => _mm512_setzero_ps(),
            };
            let mut ib = 0;
            while ib < nb {
                let (a0, a1, a2, a3) =
                    (ad.add(ib * kd), ad.add((ib + 1) * kd), ad.add((ib + 2) * kd), ad.add((ib + 3) * kd));
                let (mut c0, mut c1, mut c2, mut c3) = (init, init, init, init);
                for k in 0..kd {
                    let (x0, x1, x2, x3) = (*a0.add(k), *a1.add(k), *a2.add(k), *a3.add(k));
                    if x0 == 0.0 && x1 == 0.0 && x2 == 0.0 && x3 == 0.0 {
                        continue;
                    }
                    let w = _mm512_load_ps(pbase.add(k * LANES));
                    c0 = _mm512_fmadd_ps(_mm512_set1_ps(x0), w, c0);
                    c1 = _mm512_fmadd_ps(_mm512_set1_ps(x1), w, c1);
                    c2 = _mm512_fmadd_ps(_mm512_set1_ps(x2), w, c2);
                    c3 = _mm512_fmadd_ps(_mm512_set1_ps(x3), w, c3);
                }
                for (r, c) in [c0, c1, c2, c3].into_iter().enumerate() {
                    let dst = od.add((ib + r) * m + g * LANES);
                    if lanes == LANES {
                        _mm512_storeu_ps(dst, c);
                    } else {
                        _mm512_mask_storeu_ps(dst, mask, c);
                    }
                }
                ib += 4;
            }
            for i in nb..n {
                let arow = ad.add(i * kd);
                let mut acc = init;
                for k in 0..kd {
                    let x = *arow.add(k);
                    if x == 0.0 {
                        continue;
                    }
                    acc = _mm512_fmadd_ps(_mm512_set1_ps(x), _mm512_load_ps(pbase.add(k * LANES)), acc);
                }
                let dst = od.add(i * m + g * LANES);
                if lanes == LANES {
                    _mm512_storeu_ps(dst, acc);
                } else {
                    _mm512_mask_storeu_ps(dst, mask, acc);
                }
            }
            g += 1;
        }
    }

    /// AVX2+FMA weight-gradient kernel. Full groups run two 8-lane FMA
    /// halves; the ragged last group runs scalar `mul_add` lanes (still
    /// FMA chains, so the SIMD tiers stay bit-identical).
    ///
    /// # Safety
    /// Caller must verify avx2+fma at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn at_b_avx2(&mut self, a: &Matrix, b: &Matrix) {
        use std::arch::x86_64::*;
        let (rows, nn, m) = (a.rows(), self.depth, self.width);
        let ad = a.as_slice().as_ptr();
        let bd = b.as_slice().as_ptr();
        for g in 0..self.groups {
            let lanes = (m - g * LANES).min(LANES);
            let base = g * LANES;
            for n in 0..nn {
                let acc = self.data.as_mut_ptr().add(g * nn + n) as *mut f32;
                if lanes == LANES {
                    let mut lo = _mm256_load_ps(acc);
                    let mut hi = _mm256_load_ps(acc.add(8));
                    for r in 0..rows {
                        let x = *ad.add(r * nn + n);
                        if x == 0.0 {
                            continue;
                        }
                        let xv = _mm256_set1_ps(x);
                        let brow = bd.add(r * m + base);
                        lo = _mm256_fmadd_ps(xv, _mm256_loadu_ps(brow), lo);
                        hi = _mm256_fmadd_ps(xv, _mm256_loadu_ps(brow.add(8)), hi);
                    }
                    _mm256_store_ps(acc, lo);
                    _mm256_store_ps(acc.add(8), hi);
                } else {
                    for r in 0..rows {
                        let x = *ad.add(r * nn + n);
                        if x == 0.0 {
                            continue;
                        }
                        let brow = bd.add(r * m + base);
                        for l in 0..lanes {
                            *acc.add(l) = f32::mul_add(x, *brow.add(l), *acc.add(l));
                        }
                    }
                }
            }
        }
    }

    /// AVX-512F weight-gradient kernel. Full groups block 4 consecutive
    /// contraction columns `n` into 4 ZMM accumulators — the `dZ` row
    /// vector loads once per `r` and feeds all four chains, and four
    /// independent chains cover the FMA latency the single-accumulator
    /// form stalled on. The blocked path is branchless for the same
    /// reason as [`PackedWeights::gemm_avx512`]'s paired path: with the
    /// pipeline saturated, the activation zero-skip's mispredictions
    /// cost more than the skipped work, and the skip is arithmetically
    /// a no-op (gradient panels start at `+0.0` and `±0` contributions
    /// can never flip an accumulator to `-0.0`). Chains remain
    /// identical to [`PackedWeights::at_b_avx2`]'s lane for lane: per
    /// `(group, n)`, ascending-`r` FMAs. Leftover columns and the
    /// ragged tail group run the single-accumulator masked variant.
    ///
    /// # Safety
    /// Caller must verify avx512f at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn at_b_avx512(&mut self, a: &Matrix, b: &Matrix) {
        use std::arch::x86_64::*;
        let (rows, nn, m) = (a.rows(), self.depth, self.width);
        let ad = a.as_slice().as_ptr();
        let bd = b.as_slice().as_ptr();
        for g in 0..self.groups {
            let lanes = (m - g * LANES).min(LANES);
            let mask: __mmask16 = if lanes == LANES { !0 } else { (1u16 << lanes) - 1 };
            let base = g * LANES;
            let mut n = 0;
            if lanes == LANES {
                while n + 4 <= nn {
                    let accp = self.data.as_mut_ptr().add(g * nn + n) as *mut f32;
                    let mut acc0 = _mm512_load_ps(accp);
                    let mut acc1 = _mm512_load_ps(accp.add(LANES));
                    let mut acc2 = _mm512_load_ps(accp.add(2 * LANES));
                    let mut acc3 = _mm512_load_ps(accp.add(3 * LANES));
                    for r in 0..rows {
                        let xp = ad.add(r * nn + n);
                        let bvec = _mm512_loadu_ps(bd.add(r * m + base));
                        acc0 = _mm512_fmadd_ps(_mm512_set1_ps(*xp), bvec, acc0);
                        acc1 = _mm512_fmadd_ps(_mm512_set1_ps(*xp.add(1)), bvec, acc1);
                        acc2 = _mm512_fmadd_ps(_mm512_set1_ps(*xp.add(2)), bvec, acc2);
                        acc3 = _mm512_fmadd_ps(_mm512_set1_ps(*xp.add(3)), bvec, acc3);
                    }
                    _mm512_store_ps(accp, acc0);
                    _mm512_store_ps(accp.add(LANES), acc1);
                    _mm512_store_ps(accp.add(2 * LANES), acc2);
                    _mm512_store_ps(accp.add(3 * LANES), acc3);
                    n += 4;
                }
            }
            while n < nn {
                let accp = self.data.as_mut_ptr().add(g * nn + n) as *mut f32;
                let mut acc = _mm512_load_ps(accp);
                for r in 0..rows {
                    let x = *ad.add(r * nn + n);
                    if x == 0.0 {
                        continue;
                    }
                    let bvec = _mm512_maskz_loadu_ps(mask, bd.add(r * m + base));
                    acc = _mm512_fmadd_ps(_mm512_set1_ps(x), bvec, acc);
                }
                _mm512_store_ps(accp, acc);
                n += 1;
            }
        }
    }
}

/// Stores one 16-lane group (two YMM halves) to an unaligned output
/// location, spilling through an aligned buffer when the group is the
/// ragged last one.
///
/// # Safety
/// `dst` must be valid for `lanes` writes; caller must verify avx2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn store_group_avx2(
    dst: *mut f32,
    lo: std::arch::x86_64::__m256,
    hi: std::arch::x86_64::__m256,
    lanes: usize,
) {
    use std::arch::x86_64::*;
    if lanes == LANES {
        _mm256_storeu_ps(dst, lo);
        _mm256_storeu_ps(dst.add(8), hi);
    } else {
        let mut tmp = ZERO_GROUP;
        _mm256_store_ps(tmp.0.as_mut_ptr(), lo);
        _mm256_store_ps(tmp.0.as_mut_ptr().add(8), hi);
        std::ptr::copy_nonoverlapping(tmp.0.as_ptr(), dst, lanes);
    }
}

/// A bias vector padded to whole lane groups with `+0.0` (never `-0.0` —
/// the kernel caveat the zero-skip argument rests on), 64-byte aligned
/// so group initializers are single aligned loads.
#[derive(Debug, Clone)]
pub struct PackedBias {
    len: usize,
    data: Vec<Align64>,
}

impl PackedBias {
    /// Packs `src` into padded lane groups.
    pub fn pack(src: &[f32]) -> PackedBias {
        let mut b = PackedBias { len: src.len(), data: vec![ZERO_GROUP; src.len().div_ceil(LANES)] };
        b.repack_from(src);
        b
    }

    /// Rewrites from `src` without reallocating.
    ///
    /// # Panics
    /// Panics if `src.len()` differs from the packed length.
    pub fn repack_from(&mut self, src: &[f32]) {
        assert_eq!(src.len(), self.len, "bias length mismatch");
        self.data.fill(ZERO_GROUP);
        for (j, &v) in src.iter().enumerate() {
            self.data[j / LANES].0[j % LANES] = v;
        }
    }
}

/// A [`Dense`] layer's packed acceleration state: forward panels, the
/// padded bias, the activation, and (when built for training) transposed
/// panels for the input-gradient gemm. Rebuilt from the authoritative
/// layer at pack/repack time; never serialized.
#[derive(Debug, Clone)]
pub struct PackedDense {
    w: PackedWeights,
    /// Transposed panels for `dX = dZ · Wᵀ`; `None` on serving-only packs.
    wt: Option<PackedWeights>,
    b: PackedBias,
    act: Activation,
}

impl PackedDense {
    /// Packs `src`; `with_backward` additionally builds the transposed
    /// panels the input-gradient gemm needs (training tapes only —
    /// serving packs skip the second copy).
    pub fn pack(src: &Dense, with_backward: bool) -> PackedDense {
        PackedDense {
            w: PackedWeights::pack(&src.w),
            wt: with_backward.then(|| PackedWeights::pack_transposed(&src.w)),
            b: PackedBias::pack(&src.b),
            act: src.act,
        }
    }

    /// Refreshes every packed buffer from `src` without reallocating
    /// (called once per weight update by the training tape).
    ///
    /// # Panics
    /// Panics if `src`'s shape differs from the packed shape.
    pub fn repack_from(&mut self, src: &Dense) {
        self.w.repack_from(&src.w);
        if let Some(wt) = &mut self.wt {
            wt.repack_transposed_from(&src.w);
        }
        self.b.repack_from(&src.b);
        self.act = src.act;
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.depth
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.width
    }

    /// The layer's activation (the tape's fused activation backward
    /// reads it from here).
    pub fn act(&self) -> Activation {
        self.act
    }

    /// `out = act(x · W + b)` — the packed twin of
    /// [`Dense::forward_into`]: panel gemm, then the same separate
    /// activation pass over the output the unpacked dispatch performs.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        self.w.gemm_into(x, Some(&self.b), out);
        if self.act != Activation::Identity {
            let act = self.act;
            for v in out.as_mut_slice() {
                *v = act.apply(*v);
            }
        }
    }

    /// `out = dz · Wᵀ` over the transposed panels (no bias, no
    /// activation): the input-gradient gemm.
    ///
    /// # Panics
    /// Panics if the layer was packed without backward panels.
    pub fn backward_input_into(&self, dz: &Matrix, out: &mut Matrix) {
        let wt = self.wt.as_ref().expect("layer packed without backward panels");
        wt.gemm_into(dz, None, out);
    }
}

/// An [`Mlp`]'s packed layers — what the serving and training engines
/// actually run their wavefront gemms against.
#[derive(Debug, Clone)]
pub struct PackedMlp {
    layers: Vec<PackedDense>,
}

impl PackedMlp {
    /// Packs every layer of `src` (see [`PackedDense::pack`]).
    pub fn pack(src: &Mlp, with_backward: bool) -> PackedMlp {
        PackedMlp { layers: src.layers().iter().map(|l| PackedDense::pack(l, with_backward)).collect() }
    }

    /// Refreshes every layer from `src` without reallocating.
    ///
    /// # Panics
    /// Panics if `src`'s layer count or shapes differ.
    pub fn repack_from(&mut self, src: &Mlp) {
        assert_eq!(self.layers.len(), src.num_layers(), "layer count mismatch");
        for (dst, l) in self.layers.iter_mut().zip(src.layers()) {
            dst.repack_from(l);
        }
    }

    /// The packed layer stack.
    pub fn layers(&self) -> &[PackedDense] {
        &self.layers
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].out_dim()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Inference forward through pooled ping-pong buffers — the packed
    /// twin of [`Mlp::forward_pooled`], used by every wavefront step.
    pub fn forward_pooled(&self, x: &Matrix, pool: &mut BufferPool) -> Matrix {
        let rows = x.rows();
        let mut cur = pool.take(rows, self.layers[0].out_dim());
        self.layers[0].forward_into(x, &mut cur);
        for layer in &self.layers[1..] {
            let mut next = pool.take(rows, layer.out_dim());
            layer.forward_into(&cur, &mut next);
            pool.give(cur);
            cur = next;
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random matrix with ~`sparsity` of entries exactly zero (the
    /// kernels' skip paths must be exercised, including `-0.0`).
    fn sparse(rows: usize, cols: usize, sparsity: f64, rng: &mut StdRng) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| {
            let r: f64 = rng.gen();
            if r < sparsity {
                if rng.gen::<f64>() < 0.1 {
                    -0.0
                } else {
                    0.0
                }
            } else {
                (rng.gen::<f32>() - 0.5) * 2.0
            }
        })
    }

    fn random_dense(in_dim: usize, out_dim: usize, act: Activation, rng: &mut StdRng) -> Dense {
        let mut d = Dense::new(in_dim, out_dim, act, Init::He, rng);
        for b in &mut d.b {
            *b = (rng.gen::<f32>() - 0.5) * 0.8;
        }
        d
    }

    #[test]
    fn pack_round_trips_every_element_and_pads_with_zero() {
        let mut rng = StdRng::seed_from_u64(11);
        for (r, c) in [(1, 1), (3, 16), (5, 17), (128, 33), (2, 40)] {
            let m = sparse(r, c, 0.3, &mut rng);
            let p = PackedWeights::pack(&m);
            assert_eq!((p.depth(), p.width()), (r, c));
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(p.get(i, j).to_bits(), m.get(i, j).to_bits());
                }
                for j in c..p.groups * LANES {
                    assert_eq!(p.data[(j / LANES) * r + i].0[j % LANES], 0.0);
                }
            }
            let t = PackedWeights::pack_transposed(&m);
            assert_eq!((t.depth(), t.width()), (c, r));
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t.get(j, i).to_bits(), m.get(i, j).to_bits());
                }
            }
        }
    }

    /// The tentpole contract: the packed forward is bit-identical to the
    /// unpacked dispatch at the process tier — across shapes that hit
    /// full groups, ragged groups, 4-row blocks and remainder rows. The
    /// forced-scalar CI leg re-runs this with the scalar tier, where both
    /// sides take the multiply-then-add scalar kernels.
    #[test]
    fn packed_forward_is_bitwise_equal_to_unpacked_dispatch() {
        let mut rng = StdRng::seed_from_u64(23);
        for (n, k, m) in [(1, 1, 1), (4, 7, 16), (5, 13, 17), (9, 128, 33), (32, 40, 24), (3, 8, 64)]
        {
            for act in [Activation::Relu, Activation::Identity] {
                let d = random_dense(k, m, act, &mut rng);
                let x = sparse(n, k, 0.4, &mut rng);
                let mut want = Matrix::zeros(n, m);
                match act {
                    Activation::Identity => x.matmul_bias_act_into(&d.w, &d.b, |v| v, &mut want),
                    a => x.matmul_bias_act_into(&d.w, &d.b, |v| a.apply(v), &mut want),
                }
                let p = PackedDense::pack(&d, false);
                let mut got = Matrix::zeros(n, m);
                p.forward_into(&x, &mut got);
                for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{n}x{k}x{m} {act:?}: {a} vs {b}");
                }
            }
        }
    }

    /// Row invariance: each output row's bits are independent of which
    /// rows surround it (single-row re-runs match the batched call) —
    /// the property thread-count invariance and streaming admission
    /// lean on.
    #[test]
    fn packed_forward_rows_are_bitwise_position_invariant() {
        let mut rng = StdRng::seed_from_u64(31);
        for (n, k, m) in [(6, 19, 33), (7, 8, 16), (5, 30, 9)] {
            let d = random_dense(k, m, Activation::Relu, &mut rng);
            let p = PackedDense::pack(&d, false);
            let x = sparse(n, k, 0.4, &mut rng);
            let mut full = Matrix::zeros(n, m);
            p.forward_into(&x, &mut full);
            for i in 0..n {
                let single = Matrix::from_rows(&[x.row(i)]);
                let mut out = Matrix::zeros(1, m);
                p.forward_into(&single, &mut out);
                for (a, b) in full.row(i).iter().zip(out.row(0)) {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {i}: {a} vs {b}");
                }
            }
        }
    }

    /// The input-gradient gemm over transposed panels must agree with the
    /// unpacked `dZ · Wᵀ` dispatch to float tolerance (the two use
    /// different, but each internally deterministic, summation orders).
    #[test]
    fn packed_backward_input_matches_unpacked_a_bt() {
        let mut rng = StdRng::seed_from_u64(41);
        for (n, kd, m) in [(4, 33, 128), (3, 16, 17), (7, 9, 40), (1, 1, 1)] {
            let d = random_dense(m, kd, Activation::Relu, &mut rng);
            let p = PackedDense::pack(&d, true);
            let dz = sparse(n, kd, 0.5, &mut rng);
            let mut want = Matrix::zeros(n, m);
            dz.matmul_a_bt_into(&d.w, &mut want);
            let mut got = Matrix::zeros(n, m);
            p.backward_input_into(&dz, &mut got);
            for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
                let rel = (a - b).abs() / (1.0 + a.abs().max(b.abs()));
                assert!(rel < 1e-5, "{n}x{kd}x{m}: {a} vs {b} (rel {rel})");
            }
        }
    }

    /// The packed weight-gradient accumulator must agree with the
    /// unpacked `Xᵀ · dZ` dispatch to float tolerance, including its
    /// accumulate-don't-overwrite contract.
    #[test]
    fn packed_at_b_accumulates_like_unpacked() {
        let mut rng = StdRng::seed_from_u64(53);
        for (rows, n, m) in [(9, 40, 33), (5, 16, 16), (12, 7, 17), (4, 128, 5)] {
            let x = sparse(rows, n, 0.5, &mut rng);
            let dz = sparse(rows, m, 0.3, &mut rng);
            let seed = sparse(n, m, 0.0, &mut rng);
            let mut want = seed.clone();
            x.matmul_at_b_into(&dz, &mut want);
            let mut packed = PackedWeights::zeros(n, m);
            let mut got = seed.clone();
            // Two half-accumulations: fold must add, not overwrite.
            packed.accumulate_at_b(&x, &dz);
            packed.add_unpacked_into(&mut got);
            for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
                let rel = (a - b).abs() / (1.0 + a.abs().max(b.abs()));
                assert!(rel < 1e-5, "{rows}x{n}x{m}: {a} vs {b} (rel {rel})");
            }
            packed.fill_zero();
            let before = got.clone();
            packed.add_unpacked_into(&mut got);
            assert_eq!(before, got, "zeroed panels must fold to a no-op");
        }
    }

    /// On hosts with both SIMD tiers, the packed kernels must be
    /// bit-identical across them (pure-FMA chains, lane position aside).
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn packed_simd_tiers_are_bitwise_identical() {
        if !(is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx2")
            && is_x86_feature_detected!("fma"))
        {
            return; // needs both tiers in hardware
        }
        let mut rng = StdRng::seed_from_u64(67);
        for (n, kd, m) in [(5, 13, 17), (9, 128, 33), (4, 16, 16), (2, 40, 64)] {
            let w = sparse(kd, m, 0.2, &mut rng);
            let p = PackedWeights::pack(&w);
            let bias = PackedBias::pack(
                &(0..m).map(|_| (rng.gen::<f32>() - 0.5) * 0.8).collect::<Vec<_>>(),
            );
            let x = sparse(n, kd, 0.4, &mut rng);
            let mut a2 = Matrix::zeros(n, m);
            let mut a5 = Matrix::zeros(n, m);
            // SAFETY: features checked above.
            unsafe {
                p.gemm_avx2(&x, Some(&bias), &mut a2);
                p.gemm_avx512(&x, Some(&bias), &mut a5);
            }
            for (a, b) in a2.as_slice().iter().zip(a5.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "gemm {n}x{kd}x{m}: {a} vs {b}");
            }

            let xt = sparse(n, kd, 0.5, &mut rng);
            let dz = sparse(n, m, 0.3, &mut rng);
            let mut g2 = PackedWeights::zeros(kd, m);
            let mut g5 = PackedWeights::zeros(kd, m);
            // SAFETY: features checked above.
            unsafe {
                g2.at_b_avx2(&xt, &dz);
                g5.at_b_avx512(&xt, &dz);
            }
            for (a, b) in g2.data.iter().zip(&g5.data) {
                for (x2, x5) in a.0.iter().zip(&b.0) {
                    assert_eq!(x2.to_bits(), x5.to_bits(), "at_b {n}x{kd}x{m}");
                }
            }
        }
    }

    #[test]
    fn packed_mlp_forward_matches_unpacked_pooled_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(71);
        let mlp = Mlp::new(&[19, 32, 33], Activation::Relu, Activation::Identity, Init::He, &mut rng);
        let packed = PackedMlp::pack(&mlp, false);
        assert_eq!((packed.in_dim(), packed.out_dim(), packed.num_layers()), (19, 33, 2));
        let x = sparse(6, 19, 0.4, &mut rng);
        let mut pool = BufferPool::new();
        let want = mlp.forward_pooled(&x, &mut pool);
        let got = packed.forward_pooled(&x, &mut pool);
        for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        pool.give(want);
        pool.give(got);
        // Steady state: a second packed pass allocates nothing new.
        let before = pool.available();
        let again = packed.forward_pooled(&x, &mut pool);
        pool.give(again);
        assert_eq!(pool.available(), before);
    }

    #[test]
    fn repack_tracks_weight_updates() {
        let mut rng = StdRng::seed_from_u64(83);
        let mut mlp =
            Mlp::new(&[9, 16, 5], Activation::Relu, Activation::Identity, Init::He, &mut rng);
        let mut packed = PackedMlp::pack(&mlp, true);
        let x = sparse(3, 9, 0.3, &mut rng);
        let mut pool = BufferPool::new();
        // Mutate weights in place (an optimizer step), then repack.
        for l in mlp.layers_mut() {
            l.w.map_inplace(|v| v * 1.5 + 0.01);
            for b in &mut l.b {
                *b -= 0.05;
            }
        }
        packed.repack_from(&mlp);
        let want = mlp.forward_pooled(&x, &mut pool);
        let got = packed.forward_pooled(&x, &mut pool);
        for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn mismatched_input_width_panics_like_the_unpacked_kernels() {
        let mut rng = StdRng::seed_from_u64(97);
        let d = random_dense(8, 4, Activation::Relu, &mut rng);
        let p = PackedDense::pack(&d, false);
        let x = Matrix::zeros(2, 9);
        let mut out = Matrix::zeros(2, 4);
        p.forward_into(&x, &mut out);
    }
}
