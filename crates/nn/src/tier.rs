//! Runtime SIMD kernel-tier detection and forced-dispatch override.
//!
//! The matrix kernels ([`crate::matrix`]) and the packed-panel kernels
//! ([`crate::packed`]) pick their implementation per process from a
//! three-level [`KernelTier`] ladder instead of the former boolean
//! AVX2-or-scalar check:
//!
//! * [`KernelTier::Scalar`] — portable Rust, no intrinsics;
//! * [`KernelTier::Avx2Fma`] — 8-lane AVX2 + FMA (the PR-2 kernels);
//! * [`KernelTier::Avx512f`] — 16-lane AVX-512F for the packed-panel
//!   kernels (one cache-line-sized panel group per register). The
//!   *unpacked* kernels keep their AVX2 bodies under this tier — the
//!   AVX-512 win comes from the panel layout, and keeping one unpacked
//!   body per family preserves the bitwise reference the packed kernels
//!   are tested against.
//!
//! Detection runs once per process ([`KernelTier::current`], a
//! `OnceLock`) and can be *lowered* — never raised past what the
//! hardware supports — through the `QPP_NN_FORCE_TIER` environment
//! variable (`scalar` | `avx2` | `avx512`). CI runs the kernel and
//! differential suites once with `QPP_NN_FORCE_TIER=scalar` so the
//! portable fallbacks cannot rot on SIMD hosts. The variable is read at
//! first use and cached for the process lifetime; setting it mid-process
//! has no effect.

use std::sync::OnceLock;

/// Environment variable that clamps the detected tier (for testing the
/// portable fallbacks on SIMD hardware). Values: `scalar`, `avx2`,
/// `avx512`; forcing a tier the hardware lacks clamps down to the
/// detected one.
pub const FORCE_TIER_ENV: &str = "QPP_NN_FORCE_TIER";

/// The SIMD dispatch tier every kernel family selects its body from,
/// detected once per process. Ordered: a greater tier strictly extends
/// the capabilities of a lesser one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelTier {
    /// Portable scalar kernels only.
    Scalar,
    /// AVX2 + FMA kernels (8-lane).
    Avx2Fma,
    /// AVX-512F packed-panel kernels (16-lane); unpacked kernels run
    /// their AVX2 bodies.
    Avx512f,
}

impl KernelTier {
    /// The process-wide tier: hardware detection clamped by
    /// [`FORCE_TIER_ENV`], computed once and cached.
    pub fn current() -> KernelTier {
        static TIER: OnceLock<KernelTier> = OnceLock::new();
        *TIER.get_or_init(|| {
            let hw = hardware_tier();
            match std::env::var(FORCE_TIER_ENV) {
                Ok(v) => parse_force(&v)
                    .unwrap_or_else(|| {
                        panic!("{FORCE_TIER_ENV}={v:?}: expected scalar | avx2 | avx512")
                    })
                    .min(hw),
                Err(_) => hw,
            }
        })
    }

    /// True when any SIMD body (AVX2 or wider) may be dispatched.
    #[inline]
    pub fn simd(self) -> bool {
        self >= KernelTier::Avx2Fma
    }

    /// True when the 16-lane AVX-512F packed kernels may be dispatched.
    #[inline]
    pub fn wide(self) -> bool {
        self >= KernelTier::Avx512f
    }

    /// Stable lowercase name (the `QPP_NN_FORCE_TIER` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Avx2Fma => "avx2+fma",
            KernelTier::Avx512f => "avx512f",
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parses a [`FORCE_TIER_ENV`] value; `None` for unknown vocabulary.
fn parse_force(value: &str) -> Option<KernelTier> {
    match value.trim().to_ascii_lowercase().as_str() {
        "scalar" => Some(KernelTier::Scalar),
        "avx2" | "avx2+fma" | "avx2fma" => Some(KernelTier::Avx2Fma),
        "avx512" | "avx512f" => Some(KernelTier::Avx512f),
        _ => None,
    }
}

/// What the hardware supports, ignoring the override. The AVX-512 tier
/// additionally requires AVX2+FMA (true on every known avx512f part, but
/// checked anyway — the unpacked kernels still dispatch AVX2 bodies
/// under it).
fn hardware_tier() -> KernelTier {
    #[cfg(target_arch = "x86_64")]
    {
        let avx2 = is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma");
        if avx2 && is_x86_feature_detected!("avx512f") {
            return KernelTier::Avx512f;
        }
        if avx2 {
            return KernelTier::Avx2Fma;
        }
    }
    KernelTier::Scalar
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_vocabulary_parses_and_rejects() {
        assert_eq!(parse_force("scalar"), Some(KernelTier::Scalar));
        assert_eq!(parse_force("AVX2"), Some(KernelTier::Avx2Fma));
        assert_eq!(parse_force(" avx512 \n"), Some(KernelTier::Avx512f));
        assert_eq!(parse_force("avx512f"), Some(KernelTier::Avx512f));
        assert_eq!(parse_force("neon"), None);
        assert_eq!(parse_force(""), None);
    }

    #[test]
    fn tiers_order_by_capability() {
        assert!(KernelTier::Scalar < KernelTier::Avx2Fma);
        assert!(KernelTier::Avx2Fma < KernelTier::Avx512f);
        // Clamping a forced tier by hardware is a plain `min`.
        assert_eq!(KernelTier::Avx512f.min(KernelTier::Avx2Fma), KernelTier::Avx2Fma);
        assert!(!KernelTier::Scalar.simd());
        assert!(KernelTier::Avx2Fma.simd() && !KernelTier::Avx2Fma.wide());
        assert!(KernelTier::Avx512f.simd() && KernelTier::Avx512f.wide());
    }

    #[test]
    fn current_is_at_most_the_hardware_tier_and_stable() {
        let t = KernelTier::current();
        assert!(t <= hardware_tier());
        // Cached: repeated calls agree (the OnceLock contract).
        assert_eq!(t, KernelTier::current());
    }

    #[test]
    fn names_round_trip_through_the_force_vocabulary() {
        for t in [KernelTier::Scalar, KernelTier::Avx2Fma, KernelTier::Avx512f] {
            assert_eq!(parse_force(t.name()), Some(t), "{t}");
            assert_eq!(t.to_string(), t.name());
        }
    }
}
