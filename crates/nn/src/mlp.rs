//! Multi-layer perceptrons (Equation 2: `N(x) = tₙ ∘ … ∘ t₁`).
//!
//! An [`Mlp`] is the body of one QPPNet *neural unit*: a stack of dense
//! layers ending in an output layer whose first column is a latency estimate
//! and whose remaining columns are the learned "data vector" (paper §4.1).
//! Nothing here is specific to query plans — the plan structure lives in the
//! `qppnet` crate, which composes MLPs and routes input gradients between
//! them.

use crate::activation::Activation;
use crate::init::Init;
use crate::layer::Dense;
use crate::matrix::Matrix;
use crate::optim::Optimizer;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A feed-forward stack of [`Dense`] layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Cached per-layer inputs and pre-activations from [`Mlp::forward_cached`],
/// consumed by [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct MlpCache {
    /// `inputs[i]` is the input to layer `i`; `inputs[0]` is the MLP input.
    inputs: Vec<Matrix>,
    /// `preacts[i]` is layer `i`'s pre-activation.
    preacts: Vec<Matrix>,
    /// Final activation of the last layer.
    output: Matrix,
}

impl MlpCache {
    /// The network output this cache was built from.
    pub fn output(&self) -> &Matrix {
        &self.output
    }

    /// The input matrix the forward pass consumed.
    pub fn input(&self) -> &Matrix {
        &self.inputs[0]
    }
}

impl Mlp {
    /// Builds an MLP with the given layer widths.
    ///
    /// `dims = [in, h1, …, out]`; hidden layers use `hidden_act`, the final
    /// layer uses `out_act`. The paper's neural units are
    /// `[input, 128 ×5, d+1]` with ReLU hidden activations and an identity
    /// output.
    ///
    /// # Panics
    /// Panics if fewer than two dims are supplied.
    pub fn new(
        dims: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        init: Init,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least input and output dims");
        let n = dims.len() - 1;
        let mut layers = Vec::with_capacity(n);
        for i in 0..n {
            let act = if i + 1 == n { out_act } else { hidden_act };
            layers.push(Dense::new(dims[i], dims[i + 1], act, init, rng));
        }
        Mlp { layers }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].out_dim()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Dense::num_params).sum()
    }

    /// Borrows the layer stack (used by tests and the gradient checker).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutably borrows the layer stack.
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Inference-only forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut cur = self.layers[0].forward(x);
        for layer in &self.layers[1..] {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Inference-only forward pass through pooled buffers.
    ///
    /// Unlike [`Mlp::forward`], which allocates one activation matrix per
    /// layer, this path takes its two ping-pong layer buffers (and the
    /// returned output) from `pool`, so a caller that `give`s the result
    /// back performs zero steady-state allocation. Unlike
    /// [`Mlp::forward_cached`] it stores nothing for a backward pass —
    /// this is the serving path, not the training path.
    pub fn forward_pooled(&self, x: &Matrix, pool: &mut crate::pool::BufferPool) -> Matrix {
        let rows = x.rows();
        let mut cur = pool.take(rows, self.layers[0].out_dim());
        self.layers[0].forward_into(x, &mut cur);
        for layer in &self.layers[1..] {
            let mut next = pool.take(rows, layer.out_dim());
            layer.forward_into(&cur, &mut next);
            pool.give(cur);
            cur = next;
        }
        cur
    }

    /// Forward pass caching everything [`Mlp::backward`] needs.
    pub fn forward_cached(&self, x: &Matrix) -> MlpCache {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut preacts = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for layer in &self.layers {
            let (z, a) = layer.forward_cached(&cur);
            inputs.push(std::mem::replace(&mut cur, a));
            preacts.push(z);
        }
        MlpCache { inputs, preacts, output: cur }
    }

    /// Reverse pass: accumulates parameter gradients and returns `∂loss/∂x`.
    ///
    /// The returned input gradient is what lets a *plan-structured* network
    /// push errors from a parent unit into the output of its children.
    pub fn backward(&mut self, cache: &MlpCache, d_out: &Matrix) -> Matrix {
        let mut grad = d_out.clone();
        for i in (0..self.layers.len()).rev() {
            grad = self.layers[i].backward(&cache.inputs[i], &cache.preacts[i], &grad);
        }
        grad
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Scales all accumulated gradients by `s`.
    pub fn scale_grad(&mut self, s: f32) {
        for l in &mut self.layers {
            l.scale_grad(s);
        }
    }

    /// Applies accumulated gradients through `opt`.
    ///
    /// `key_base` namespaces this MLP's parameters inside the optimizer's
    /// state (each layer consumes two keys); pass distinct bases for
    /// distinct units.
    pub fn apply_grads(&mut self, opt: &mut dyn Optimizer, key_base: usize) {
        for (i, l) in self.layers.iter_mut().enumerate() {
            opt.step_matrix(key_base + 2 * i, &mut l.w, &l.gw);
            opt.step_vec(key_base + 2 * i + 1, &mut l.b, &l.gb);
        }
    }

    /// Adds another MLP's accumulated gradients into this one's
    /// (`self.grad += other.grad`), leaving parameters untouched.
    ///
    /// This is the reduction step of data-parallel training: worker
    /// threads accumulate gradients into clones, which are then summed
    /// back into the master.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_grads_from(&mut self, other: &Mlp) {
        assert_eq!(self.layers.len(), other.layers.len(), "layer count mismatch");
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            dst.gw.add_scaled(&src.gw, 1.0);
            for (d, &s) in dst.gb.iter_mut().zip(&src.gb) {
                *d += s;
            }
        }
    }

    /// Copies parameters (not gradients) from another MLP of identical shape.
    ///
    /// Used by the transfer-learning warm start extension.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn copy_params_from(&mut self, other: &Mlp) {
        assert_eq!(self.layers.len(), other.layers.len(), "layer count mismatch");
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            assert_eq!(dst.w.rows(), src.w.rows(), "weight shape mismatch");
            assert_eq!(dst.w.cols(), src.w.cols(), "weight shape mismatch");
            dst.w = src.w.clone();
            dst.b = src.b.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss;
    use crate::optim::Sgd;
    use rand::SeedableRng;

    fn tiny_mlp(seed: u64) -> Mlp {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Mlp::new(&[3, 8, 8, 2], Activation::Relu, Activation::Identity, Init::He, &mut rng)
    }

    #[test]
    fn shapes_and_param_counts() {
        let m = tiny_mlp(0);
        assert_eq!(m.in_dim(), 3);
        assert_eq!(m.out_dim(), 2);
        assert_eq!(m.num_layers(), 3);
        assert_eq!(m.num_params(), (3 * 8 + 8) + (8 * 8 + 8) + (8 * 2 + 2));
    }

    #[test]
    fn forward_and_forward_cached_agree() {
        let m = tiny_mlp(1);
        let x = Matrix::from_fn(4, 3, |i, j| (i as f32 - j as f32) * 0.37);
        let plain = m.forward(&x);
        let cached = m.forward_cached(&x);
        assert_eq!(plain, *cached.output());
    }

    #[test]
    fn forward_pooled_matches_forward_and_reuses_buffers() {
        let m = tiny_mlp(3);
        let mut pool = crate::pool::BufferPool::new();
        let x = Matrix::from_fn(5, 3, |i, j| (i as f32 * 1.3 - j as f32) * 0.21);
        let plain = m.forward(&x);
        // FMA rounding on the SIMD serving kernel means agreement is to a
        // few ULP, not bit-identity, against the scalar training forward.
        let close = |a: &Matrix, b: &Matrix| {
            a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(p, q)| (p - q).abs() <= 1e-5 * (1.0 + p.abs().max(q.abs())))
        };
        let pooled = m.forward_pooled(&x, &mut pool);
        assert!(close(&plain, &pooled));
        pool.give(pooled);
        // Second pass draws entirely from the pool (ping + pong + output),
        // and the same kernel is bit-deterministic across runs.
        let before = pool.available();
        let again = m.forward_pooled(&x, &mut pool);
        assert!(close(&plain, &again));
        pool.give(again);
        assert_eq!(pool.available(), before);
    }

    #[test]
    fn training_reduces_loss_on_toy_regression() {
        let mut m = tiny_mlp(2);
        let x = Matrix::from_rows(&[&[0.0, 0.0, 1.0], &[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0]]);
        let t = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.5, 0.5]]);
        let mut opt = Sgd::new(0.05, 0.9);
        let (initial, _) = loss::mse(&m.forward(&x), &t);
        for _ in 0..300 {
            let cache = m.forward_cached(&x);
            let (_, d) = loss::mse(cache.output(), &t);
            m.zero_grad();
            m.backward(&cache, &d);
            m.apply_grads(&mut opt, 0);
        }
        let (final_, _) = loss::mse(&m.forward(&x), &t);
        assert!(final_ < initial * 0.05, "loss {initial} -> {final_}");
    }

    #[test]
    fn copy_params_from_clones_behaviour() {
        let src = tiny_mlp(5);
        let mut dst = tiny_mlp(6);
        let x = Matrix::from_fn(2, 3, |i, j| (i + j) as f32 * 0.2);
        assert_ne!(src.forward(&x), dst.forward(&x));
        dst.copy_params_from(&src);
        assert_eq!(src.forward(&x), dst.forward(&x));
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let m = tiny_mlp(7);
        let x = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f32 * 0.11 - 0.4);
        let json = serde_json::to_string(&m).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        assert_eq!(m.forward(&x), back.forward(&x));
    }
}
