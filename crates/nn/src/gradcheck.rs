//! Finite-difference gradient checking.
//!
//! The plan-structured network's correctness hinges on gradients flowing
//! correctly through concatenated child outputs; the test suites of both this
//! crate and `qppnet` certify their analytic gradients against the
//! central-difference estimates computed here.

use crate::matrix::Matrix;
use crate::mlp::Mlp;

/// Result of a gradient check: worst relative error over all parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheck {
    /// Maximum relative error between analytic and numeric gradients.
    pub max_rel_err: f32,
    /// Number of parameters compared.
    pub checked: usize,
}

/// Relative error between an analytic and a numeric derivative, with an
/// absolute floor so near-zero pairs compare absolutely.
#[inline]
pub fn rel_err(analytic: f32, numeric: f32) -> f32 {
    let denom = analytic.abs().max(numeric.abs()).max(1e-3);
    (analytic - numeric).abs() / denom
}

/// Central-difference derivative estimate with a step-halving stability
/// filter for ReLU kinks.
///
/// `loss_at` evaluates the scalar loss with the parameter under test
/// perturbed by the given offset (`loss_at(0.0)` is the unperturbed loss;
/// implementations must restore the parameter before returning). The
/// estimate `(f(+h) − f(−h)) / 2h` is computed at step sizes `h` and `h/2`;
/// when the two disagree by more than `tol` (relative, floored at `1e-2`
/// absolute), a non-differentiable kink lies inside `±h` and `None` is
/// returned — the point cannot distinguish a correct gradient from a wrong
/// one at any tolerance. An *analytically* wrong gradient disagrees at
/// every step size, so skipping unstable points keeps the check's power.
///
/// Shared by the `qpp_nn` and `qppnet` gradient-check suites (both train
/// ReLU networks, where kink crossings are routine at usable step sizes).
pub fn stable_central_diff(
    mut loss_at: impl FnMut(f32) -> f64,
    h: f32,
    tol: f64,
) -> Option<f64> {
    let mut estimate = |h: f32| (loss_at(h) - loss_at(-h)) / (2.0 * h as f64);
    let full = estimate(h);
    let half = estimate(h / 2.0);
    let denom = full.abs().max(half.abs()).max(1e-2);
    if (full - half).abs() / denom > tol {
        None
    } else {
        Some(full)
    }
}

/// Checks every parameter gradient of `mlp` for the scalar loss
/// `loss_fn(output)` on input `x` via central differences.
///
/// `loss_fn` must return `(loss, d_loss/d_output)`. This is `O(P)` forward
/// passes — keep the MLP small in tests.
pub fn check_mlp(
    mlp: &mut Mlp,
    x: &Matrix,
    loss_fn: &dyn Fn(&Matrix) -> (f32, Matrix),
    h: f32,
) -> GradCheck {
    // Analytic gradients.
    mlp.zero_grad();
    let cache = mlp.forward_cached(x);
    let (_, dout) = loss_fn(cache.output());
    let _ = mlp.backward(&cache, &dout);

    let analytic: Vec<(Matrix, Vec<f32>)> = mlp
        .layers()
        .iter()
        .map(|l| (l.gw.clone(), l.gb.clone()))
        .collect();

    let mut max_rel = 0.0f32;
    let mut checked = 0usize;

    for (li, (gw, gb)) in analytic.iter().enumerate() {
        // Weights.
        let (rows, cols) = {
            let l = &mlp.layers()[li];
            (l.w.rows(), l.w.cols())
        };
        for r in 0..rows {
            for c in 0..cols {
                let orig = mlp.layers()[li].w.get(r, c);
                mlp.layers_mut()[li].w.set(r, c, orig + h);
                let (lp, _) = loss_fn(&mlp.forward(x));
                mlp.layers_mut()[li].w.set(r, c, orig - h);
                let (lm, _) = loss_fn(&mlp.forward(x));
                mlp.layers_mut()[li].w.set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * h);
                max_rel = max_rel.max(rel_err(gw.get(r, c), numeric));
                checked += 1;
            }
        }
        // Biases.
        for (bi, &gb_bi) in gb.iter().enumerate() {
            let orig = mlp.layers()[li].b[bi];
            mlp.layers_mut()[li].b[bi] = orig + h;
            let (lp, _) = loss_fn(&mlp.forward(x));
            mlp.layers_mut()[li].b[bi] = orig - h;
            let (lm, _) = loss_fn(&mlp.forward(x));
            mlp.layers_mut()[li].b[bi] = orig;
            let numeric = (lp - lm) / (2.0 * h);
            max_rel = max_rel.max(rel_err(gb_bi, numeric));
            checked += 1;
        }
    }

    GradCheck { max_rel_err: max_rel, checked }
}

/// Checks the gradient an MLP reports for its *input* (the path by which
/// plan-structured networks push errors into child units).
pub fn check_input_grad(
    mlp: &mut Mlp,
    x: &Matrix,
    loss_fn: &dyn Fn(&Matrix) -> (f32, Matrix),
    h: f32,
) -> GradCheck {
    mlp.zero_grad();
    let cache = mlp.forward_cached(x);
    let (_, dout) = loss_fn(cache.output());
    let dx = mlp.backward(&cache, &dout);

    let mut max_rel = 0.0f32;
    let mut checked = 0usize;
    let mut xp = x.clone();
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            let orig = x.get(i, j);
            xp.set(i, j, orig + h);
            let (lp, _) = loss_fn(&mlp.forward(&xp));
            xp.set(i, j, orig - h);
            let (lm, _) = loss_fn(&mlp.forward(&xp));
            xp.set(i, j, orig);
            let numeric = (lp - lm) / (2.0 * h);
            max_rel = max_rel.max(rel_err(dx.get(i, j), numeric));
            checked += 1;
        }
    }
    GradCheck { max_rel_err: max_rel, checked }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::Init;
    use crate::loss;
    use rand::SeedableRng;

    /// Smooth activations give very tight agreement.
    #[test]
    fn tanh_mlp_passes_gradcheck() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut mlp = Mlp::new(&[4, 6, 3], Activation::Tanh, Activation::Identity, Init::Xavier, &mut rng);
        let x = Matrix::from_fn(3, 4, |i, j| ((i * 4 + j) as f32).sin());
        let t = Matrix::from_fn(3, 3, |i, j| ((i + j) as f32).cos());
        let res = check_mlp(&mut mlp, &x, &|o| loss::mse(o, &t), 1e-2);
        assert!(res.max_rel_err < 2e-2, "max rel err {}", res.max_rel_err);
        assert_eq!(res.checked, mlp.num_params());
    }

    /// ReLU (the paper's activation) also passes away from kinks.
    #[test]
    fn relu_mlp_passes_gradcheck() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut mlp = Mlp::new(&[3, 8, 2], Activation::Relu, Activation::Identity, Init::He, &mut rng);
        let x = Matrix::from_fn(4, 3, |i, j| 0.5 + 0.1 * (i as f32) + 0.2 * (j as f32));
        let t = Matrix::from_fn(4, 2, |i, _| i as f32 * 0.3);
        let res = check_mlp(&mut mlp, &x, &|o| loss::mse(o, &t), 1e-3);
        assert!(res.max_rel_err < 5e-2, "max rel err {}", res.max_rel_err);
    }

    /// The stability filter at work: at points where ReLU kinks make the
    /// central difference step-size dependent, `stable_central_diff`
    /// abstains instead of producing a bogus estimate, and the surviving
    /// points certify the analytic gradients without any kink-induced
    /// false alarms.
    #[test]
    fn stable_central_diff_filters_kinks_and_passes_elsewhere() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let mut mlp = Mlp::new(&[3, 8, 2], Activation::Relu, Activation::Identity, Init::He, &mut rng);
        let x = Matrix::from_fn(4, 3, |i, j| ((i * 3 + j) as f32 * 0.9).sin());
        let t = Matrix::from_fn(4, 2, |i, _| i as f32 * 0.3);

        mlp.zero_grad();
        let cache = mlp.forward_cached(&x);
        let (_, dout) = loss::mse(cache.output(), &t);
        let _ = mlp.backward(&cache, &dout);
        let analytic = mlp.layers()[0].gw.clone();

        let (rows, cols) = (analytic.rows(), analytic.cols());
        let mut compared = 0usize;
        let mut worst = 0.0f32;
        for r in 0..rows {
            for c in 0..cols {
                let orig = mlp.layers()[0].w.get(r, c);
                let numeric = stable_central_diff(
                    |offset| {
                        mlp.layers_mut()[0].w.set(r, c, orig + offset);
                        let (l, _) = loss::mse(&mlp.forward(&x), &t);
                        mlp.layers_mut()[0].w.set(r, c, orig);
                        l as f64
                    },
                    5e-3,
                    0.01,
                );
                if let Some(numeric) = numeric {
                    worst = worst.max(rel_err(analytic.get(r, c), numeric as f32));
                    compared += 1;
                }
            }
        }
        assert!(compared > rows * cols / 2, "filter discarded too many points ({compared})");
        assert!(worst < 5e-2, "worst stable relative error {worst}");
    }

    /// A hard kink straddling zero: the estimate at `h` and `h/2` disagree,
    /// so the filter must abstain.
    #[test]
    fn stable_central_diff_rejects_a_kink_at_the_origin() {
        // f(x) = |x| has central difference 0 at every h — stable but wrong
        // for either one-sided derivative; f(x) = relu(x) has central
        // difference 0.5 at every h. Both are *stable*; the genuinely
        // unstable case is a kink strictly inside (0, h): f(x) = relu(x - h/4).
        let kink = 5e-3f32 / 4.0;
        let est = stable_central_diff(|o| f32::max(o - kink, 0.0) as f64, 5e-3, 0.01);
        assert_eq!(est, None, "kink inside ±h must be filtered");
        // Away from the kink the same function is perfectly linear.
        let est = stable_central_diff(|o| f32::max(o + 1.0, 0.0) as f64, 5e-3, 0.01);
        let d = est.expect("smooth point must survive");
        assert!((d - 1.0).abs() < 1e-3);
    }

    #[test]
    fn input_gradient_passes_gradcheck() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut mlp = Mlp::new(&[5, 7, 2], Activation::Tanh, Activation::Identity, Init::Xavier, &mut rng);
        let x = Matrix::from_fn(2, 5, |i, j| ((i * 5 + j) as f32 * 0.7).sin());
        let t = Matrix::from_fn(2, 2, |_, _| 0.25);
        let res = check_input_grad(&mut mlp, &x, &|o| loss::mse(o, &t), 1e-2);
        assert!(res.max_rel_err < 2e-2, "max rel err {}", res.max_rel_err);
        assert_eq!(res.checked, 10);
    }
}
