//! Finite-difference gradient checking.
//!
//! The plan-structured network's correctness hinges on gradients flowing
//! correctly through concatenated child outputs; the test suites of both this
//! crate and `qppnet` certify their analytic gradients against the
//! central-difference estimates computed here.

use crate::matrix::Matrix;
use crate::mlp::Mlp;

/// Result of a gradient check: worst relative error over all parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheck {
    /// Maximum relative error between analytic and numeric gradients.
    pub max_rel_err: f32,
    /// Number of parameters compared.
    pub checked: usize,
}

/// Relative error between an analytic and a numeric derivative, with an
/// absolute floor so near-zero pairs compare absolutely.
#[inline]
pub fn rel_err(analytic: f32, numeric: f32) -> f32 {
    let denom = analytic.abs().max(numeric.abs()).max(1e-3);
    (analytic - numeric).abs() / denom
}

/// Checks every parameter gradient of `mlp` for the scalar loss
/// `loss_fn(output)` on input `x` via central differences.
///
/// `loss_fn` must return `(loss, d_loss/d_output)`. This is `O(P)` forward
/// passes — keep the MLP small in tests.
pub fn check_mlp(
    mlp: &mut Mlp,
    x: &Matrix,
    loss_fn: &dyn Fn(&Matrix) -> (f32, Matrix),
    h: f32,
) -> GradCheck {
    // Analytic gradients.
    mlp.zero_grad();
    let cache = mlp.forward_cached(x);
    let (_, dout) = loss_fn(cache.output());
    let _ = mlp.backward(&cache, &dout);

    let analytic: Vec<(Matrix, Vec<f32>)> = mlp
        .layers()
        .iter()
        .map(|l| (l.gw.clone(), l.gb.clone()))
        .collect();

    let mut max_rel = 0.0f32;
    let mut checked = 0usize;

    for (li, (gw, gb)) in analytic.iter().enumerate() {
        // Weights.
        let (rows, cols) = {
            let l = &mlp.layers()[li];
            (l.w.rows(), l.w.cols())
        };
        for r in 0..rows {
            for c in 0..cols {
                let orig = mlp.layers()[li].w.get(r, c);
                mlp.layers_mut()[li].w.set(r, c, orig + h);
                let (lp, _) = loss_fn(&mlp.forward(x));
                mlp.layers_mut()[li].w.set(r, c, orig - h);
                let (lm, _) = loss_fn(&mlp.forward(x));
                mlp.layers_mut()[li].w.set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * h);
                max_rel = max_rel.max(rel_err(gw.get(r, c), numeric));
                checked += 1;
            }
        }
        // Biases.
        for (bi, &gb_bi) in gb.iter().enumerate() {
            let orig = mlp.layers()[li].b[bi];
            mlp.layers_mut()[li].b[bi] = orig + h;
            let (lp, _) = loss_fn(&mlp.forward(x));
            mlp.layers_mut()[li].b[bi] = orig - h;
            let (lm, _) = loss_fn(&mlp.forward(x));
            mlp.layers_mut()[li].b[bi] = orig;
            let numeric = (lp - lm) / (2.0 * h);
            max_rel = max_rel.max(rel_err(gb_bi, numeric));
            checked += 1;
        }
    }

    GradCheck { max_rel_err: max_rel, checked }
}

/// Checks the gradient an MLP reports for its *input* (the path by which
/// plan-structured networks push errors into child units).
pub fn check_input_grad(
    mlp: &mut Mlp,
    x: &Matrix,
    loss_fn: &dyn Fn(&Matrix) -> (f32, Matrix),
    h: f32,
) -> GradCheck {
    mlp.zero_grad();
    let cache = mlp.forward_cached(x);
    let (_, dout) = loss_fn(cache.output());
    let dx = mlp.backward(&cache, &dout);

    let mut max_rel = 0.0f32;
    let mut checked = 0usize;
    let mut xp = x.clone();
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            let orig = x.get(i, j);
            xp.set(i, j, orig + h);
            let (lp, _) = loss_fn(&mlp.forward(&xp));
            xp.set(i, j, orig - h);
            let (lm, _) = loss_fn(&mlp.forward(&xp));
            xp.set(i, j, orig);
            let numeric = (lp - lm) / (2.0 * h);
            max_rel = max_rel.max(rel_err(dx.get(i, j), numeric));
            checked += 1;
        }
    }
    GradCheck { max_rel_err: max_rel, checked }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::Init;
    use crate::loss;
    use rand::SeedableRng;

    /// Smooth activations give very tight agreement.
    #[test]
    fn tanh_mlp_passes_gradcheck() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut mlp = Mlp::new(&[4, 6, 3], Activation::Tanh, Activation::Identity, Init::Xavier, &mut rng);
        let x = Matrix::from_fn(3, 4, |i, j| ((i * 4 + j) as f32).sin());
        let t = Matrix::from_fn(3, 3, |i, j| ((i + j) as f32).cos());
        let res = check_mlp(&mut mlp, &x, &|o| loss::mse(o, &t), 1e-2);
        assert!(res.max_rel_err < 2e-2, "max rel err {}", res.max_rel_err);
        assert_eq!(res.checked, mlp.num_params());
    }

    /// ReLU (the paper's activation) also passes away from kinks.
    #[test]
    fn relu_mlp_passes_gradcheck() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut mlp = Mlp::new(&[3, 8, 2], Activation::Relu, Activation::Identity, Init::He, &mut rng);
        let x = Matrix::from_fn(4, 3, |i, j| 0.5 + 0.1 * (i as f32) + 0.2 * (j as f32));
        let t = Matrix::from_fn(4, 2, |i, _| i as f32 * 0.3);
        let res = check_mlp(&mut mlp, &x, &|o| loss::mse(o, &t), 1e-3);
        assert!(res.max_rel_err < 5e-2, "max rel err {}", res.max_rel_err);
    }

    #[test]
    fn input_gradient_passes_gradcheck() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut mlp = Mlp::new(&[5, 7, 2], Activation::Tanh, Activation::Identity, Init::Xavier, &mut rng);
        let x = Matrix::from_fn(2, 5, |i, j| ((i * 5 + j) as f32 * 0.7).sin());
        let t = Matrix::from_fn(2, 2, |_, _| 0.25);
        let res = check_input_grad(&mut mlp, &x, &|o| loss::mse(o, &t), 1e-2);
        assert!(res.max_rel_err < 2e-2, "max rel err {}", res.max_rel_err);
        assert_eq!(res.checked, 10);
    }
}
