//! Child-sum Tree-LSTM cell (Tai et al. \[49\]).
//!
//! The paper's §3 argues that tree-structured recurrent networks from the
//! NLP literature are *ill-suited* to query performance prediction: they
//! assume information should flow freely between branches and they require
//! a single input width for every node. This module implements the
//! strongest representative of that family — the child-sum Tree-LSTM — so
//! the claim can be tested empirically (see the `qpp-ablation` crate and
//! the `ablation` bench binary).
//!
//! For a node `j` with input `x_j` and children `c₁ … c_k` carrying hidden
//! states `h_k` and memory cells `m_k`:
//!
//! ```text
//! h̃  = Σₖ h_k
//! i  = σ(x·Wᵢ + h̃·Uᵢ + bᵢ)          input gate
//! fₖ = σ(x·W_f + h_k·U_f + b_f)      one forget gate per child
//! o  = σ(x·Wₒ + h̃·Uₒ + bₒ)          output gate
//! u  = tanh(x·Wᵤ + h̃·Uᵤ + bᵤ)       candidate
//! m  = i ⊙ u + Σₖ fₖ ⊙ mₖ           memory cell
//! h  = o ⊙ tanh(m)                   hidden state
//! ```
//!
//! All operations are batched over rows, so an equivalence class of
//! structurally-identical plans evaluates as one cell invocation per tree
//! position. The backward pass is exact reverse-mode differentiation,
//! certified against central differences by this module's tests.

use crate::init::Init;
use crate::matrix::Matrix;
use crate::optim::Optimizer;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One parameter tensor triple `(W, U, b)` of a gate, with gradients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gate {
    /// Input projection, `in_dim × hidden`.
    pub w: Matrix,
    /// Recurrent projection, `hidden × hidden`.
    pub u: Matrix,
    /// Bias, `hidden`.
    pub b: Vec<f32>,
    /// Accumulated gradient of `w`.
    pub gw: Matrix,
    /// Accumulated gradient of `u`.
    pub gu: Matrix,
    /// Accumulated gradient of `b`.
    pub gb: Vec<f32>,
}

impl Gate {
    fn new(in_dim: usize, hidden: usize, bias: f32, rng: &mut impl Rng) -> Gate {
        let w = Init::Xavier.matrix(in_dim, hidden, rng);
        let u = Init::Xavier.matrix(hidden, hidden, rng);
        Gate {
            w,
            u,
            b: vec![bias; hidden],
            gw: Matrix::zeros(in_dim, hidden),
            gu: Matrix::zeros(hidden, hidden),
            gb: vec![0.0; hidden],
        }
    }

    /// `x·W + h·U + b`, batched over rows.
    fn preact(&self, x: &Matrix, h: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.w);
        z.add_scaled(&h.matmul(&self.u), 1.0);
        z.add_row_inplace(&self.b);
        z
    }

    /// Accumulates parameter gradients for one use of this gate and
    /// returns `(dx, dh)` contributions.
    fn backward(&mut self, x: &Matrix, h: &Matrix, dz: &Matrix) -> (Matrix, Matrix) {
        let mut gw_inc = Matrix::zeros(self.gw.rows(), self.gw.cols());
        x.matmul_at_b_into(dz, &mut gw_inc);
        self.gw.add_scaled(&gw_inc, 1.0);
        let mut gu_inc = Matrix::zeros(self.gu.rows(), self.gu.cols());
        h.matmul_at_b_into(dz, &mut gu_inc);
        self.gu.add_scaled(&gu_inc, 1.0);
        dz.col_sum_into(&mut self.gb);
        (dz.matmul_a_bt(&self.w), dz.matmul_a_bt(&self.u))
    }

    fn num_params(&self) -> usize {
        self.w.len() + self.u.len() + self.b.len()
    }

    fn zero_grad(&mut self) {
        self.gw.fill_zero();
        self.gu.fill_zero();
        self.gb.fill(0.0);
    }

    fn scale_grad(&mut self, s: f32) {
        self.gw.scale_inplace(s);
        self.gu.scale_inplace(s);
        for g in &mut self.gb {
            *g *= s;
        }
    }

    fn apply_grads(&mut self, opt: &mut dyn Optimizer, key: usize) {
        opt.step_matrix(key, &mut self.w, &self.gw);
        opt.step_matrix(key + 1, &mut self.u, &self.gu);
        opt.step_vec(key + 2, &mut self.b, &self.gb);
    }
}

/// Cached activations from one [`TreeLstmCell::forward`] invocation.
#[derive(Debug, Clone)]
pub struct LstmNodeCache {
    x: Matrix,
    child_h: Vec<Matrix>,
    child_m: Vec<Matrix>,
    hsum: Matrix,
    i: Matrix,
    o: Matrix,
    u: Matrix,
    f: Vec<Matrix>,
    m: Matrix,
    tanh_m: Matrix,
    h: Matrix,
}

impl LstmNodeCache {
    /// The node's hidden state, `batch × hidden`.
    pub fn hidden(&self) -> &Matrix {
        &self.h
    }

    /// The node's memory cell, `batch × hidden`.
    pub fn memory(&self) -> &Matrix {
        &self.m
    }
}

#[inline]
fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

/// A child-sum Tree-LSTM cell, shared by every node of a tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeLstmCell {
    input_gate: Gate,
    forget_gate: Gate,
    output_gate: Gate,
    candidate: Gate,
    in_dim: usize,
    hidden: usize,
}

impl TreeLstmCell {
    /// Creates a cell for inputs of width `in_dim` and `hidden` units.
    ///
    /// Forget-gate biases start at `+1.0` (the standard trick that lets
    /// memory flow freely early in training).
    pub fn new(in_dim: usize, hidden: usize, rng: &mut impl Rng) -> TreeLstmCell {
        TreeLstmCell {
            input_gate: Gate::new(in_dim, hidden, 0.0, rng),
            forget_gate: Gate::new(in_dim, hidden, 1.0, rng),
            output_gate: Gate::new(in_dim, hidden, 0.0, rng),
            candidate: Gate::new(in_dim, hidden, 0.0, rng),
            in_dim,
            hidden,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.input_gate.num_params()
            + self.forget_gate.num_params()
            + self.output_gate.num_params()
            + self.candidate.num_params()
    }

    /// Evaluates the cell at one tree position.
    ///
    /// `children` holds each child's `(hidden, memory)` pair; leaves pass
    /// an empty slice. All matrices are `batch × hidden`.
    pub fn forward(&self, x: &Matrix, children: &[(&Matrix, &Matrix)]) -> LstmNodeCache {
        let batch = x.rows();
        let mut hsum = Matrix::zeros(batch, self.hidden);
        for (h, _) in children {
            hsum.add_scaled(h, 1.0);
        }

        let mut i = self.input_gate.preact(x, &hsum);
        i.map_inplace(sigmoid);
        let mut o = self.output_gate.preact(x, &hsum);
        o.map_inplace(sigmoid);
        let mut u = self.candidate.preact(x, &hsum);
        u.map_inplace(f32::tanh);

        let mut m = i.mul_elem(&u);
        let mut f = Vec::with_capacity(children.len());
        for (h_k, m_k) in children {
            let mut f_k = self.forget_gate.preact(x, h_k);
            f_k.map_inplace(sigmoid);
            m.add_scaled(&f_k.mul_elem(m_k), 1.0);
            f.push(f_k);
        }

        let mut tanh_m = m.clone();
        tanh_m.map_inplace(f32::tanh);
        let h = o.mul_elem(&tanh_m);

        LstmNodeCache {
            x: x.clone(),
            child_h: children.iter().map(|(h, _)| (*h).clone()).collect(),
            child_m: children.iter().map(|(_, m)| (*m).clone()).collect(),
            hsum,
            i,
            o,
            u,
            f,
            m,
            tanh_m,
            h,
        }
    }

    /// Reverse pass for one tree position.
    ///
    /// `dh` / `dm` are the gradients of the loss with respect to this
    /// node's hidden state and memory cell (the parent's backward pass
    /// plus any readout gradient). Parameter gradients are accumulated
    /// into the cell; the return value is `(dx, child_grads)` where
    /// `child_grads[k] = (dh_k, dm_k)`.
    pub fn backward(
        &mut self,
        cache: &LstmNodeCache,
        dh: &Matrix,
        dm_in: &Matrix,
    ) -> (Matrix, Vec<(Matrix, Matrix)>) {
        // dm = dm_in + dh ⊙ o ⊙ (1 − tanh²(m))
        let mut dm = dm_in.clone();
        {
            let mut t = dh.mul_elem(&cache.o);
            let mut one_minus_t2 = cache.tanh_m.clone();
            one_minus_t2.map_inplace(|v| 1.0 - v * v);
            t.mul_elem_inplace(&one_minus_t2);
            dm.add_scaled(&t, 1.0);
        }

        // Gate pre-activation gradients.
        let mut dzo = dh.mul_elem(&cache.tanh_m);
        {
            let mut s = cache.o.clone();
            s.map_inplace(|v| v * (1.0 - v));
            dzo.mul_elem_inplace(&s);
        }
        let mut dzi = dm.mul_elem(&cache.u);
        {
            let mut s = cache.i.clone();
            s.map_inplace(|v| v * (1.0 - v));
            dzi.mul_elem_inplace(&s);
        }
        let mut dzu = dm.mul_elem(&cache.i);
        {
            let mut s = cache.u.clone();
            s.map_inplace(|v| 1.0 - v * v);
            dzu.mul_elem_inplace(&s);
        }

        let (dx_i, dhsum_i) = self.input_gate.backward(&cache.x, &cache.hsum, &dzi);
        let (dx_o, dhsum_o) = self.output_gate.backward(&cache.x, &cache.hsum, &dzo);
        let (dx_u, dhsum_u) = self.candidate.backward(&cache.x, &cache.hsum, &dzu);

        let mut dx = dx_i;
        dx.add_scaled(&dx_o, 1.0);
        dx.add_scaled(&dx_u, 1.0);

        // Gradient flowing to every child's hidden state via h̃ = Σ h_k.
        let mut dhsum = dhsum_i;
        dhsum.add_scaled(&dhsum_o, 1.0);
        dhsum.add_scaled(&dhsum_u, 1.0);

        let mut child_grads = Vec::with_capacity(cache.child_h.len());
        for k in 0..cache.child_h.len() {
            let mut dzf = dm.mul_elem(&cache.child_m[k]);
            {
                let mut s = cache.f[k].clone();
                s.map_inplace(|v| v * (1.0 - v));
                dzf.mul_elem_inplace(&s);
            }
            let (dx_f, dh_f) = self.forget_gate.backward(&cache.x, &cache.child_h[k], &dzf);
            dx.add_scaled(&dx_f, 1.0);

            let mut dh_k = dhsum.clone();
            dh_k.add_scaled(&dh_f, 1.0);
            let dm_k = dm.mul_elem(&cache.f[k]);
            child_grads.push((dh_k, dm_k));
        }

        (dx, child_grads)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.input_gate.zero_grad();
        self.forget_gate.zero_grad();
        self.output_gate.zero_grad();
        self.candidate.zero_grad();
    }

    /// Scales accumulated gradients by `s`.
    pub fn scale_grad(&mut self, s: f32) {
        self.input_gate.scale_grad(s);
        self.forget_gate.scale_grad(s);
        self.output_gate.scale_grad(s);
        self.candidate.scale_grad(s);
    }

    /// Applies accumulated gradients through `opt`.
    ///
    /// The cell consumes 12 optimizer keys starting at `key_base`.
    pub fn apply_grads(&mut self, opt: &mut dyn Optimizer, key_base: usize) {
        self.input_gate.apply_grads(opt, key_base);
        self.forget_gate.apply_grads(opt, key_base + 3);
        self.output_gate.apply_grads(opt, key_base + 6);
        self.candidate.apply_grads(opt, key_base + 9);
    }

    /// Borrows the gates as `[input, forget, output, candidate]` (used by
    /// the gradient-check tests).
    pub fn gates_mut(&mut self) -> [&mut Gate; 4] {
        [
            &mut self.input_gate,
            &mut self.forget_gate,
            &mut self.output_gate,
            &mut self.candidate,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn cell(in_dim: usize, hidden: usize, seed: u64) -> TreeLstmCell {
        TreeLstmCell::new(in_dim, hidden, &mut rng(seed))
    }

    #[test]
    fn shapes_and_param_count() {
        let c = cell(5, 8, 0);
        assert_eq!(c.in_dim(), 5);
        assert_eq!(c.hidden(), 8);
        // Four gates, each with 5×8 + 8×8 + 8 parameters.
        assert_eq!(c.num_params(), 4 * (5 * 8 + 8 * 8 + 8));
    }

    #[test]
    fn leaf_forward_has_correct_shapes() {
        let c = cell(4, 6, 1);
        let x = Matrix::from_fn(3, 4, |i, j| (i + j) as f32 * 0.1);
        let out = c.forward(&x, &[]);
        assert_eq!(out.hidden().rows(), 3);
        assert_eq!(out.hidden().cols(), 6);
        assert_eq!(out.memory().rows(), 3);
        assert_eq!(out.memory().cols(), 6);
    }

    #[test]
    fn hidden_states_are_bounded_by_tanh_envelope() {
        let c = cell(4, 6, 2);
        let x = Matrix::from_fn(2, 4, |i, j| (i as f32 - j as f32) * 3.0);
        let leaf = c.forward(&x, &[]);
        let root = c.forward(&x, &[(leaf.hidden(), leaf.memory())]);
        for &v in root.hidden().as_slice() {
            assert!(v.abs() <= 1.0, "|h| must be ≤ 1, got {v}");
        }
    }

    #[test]
    fn forget_bias_initialized_positive() {
        let mut c = cell(3, 4, 3);
        let [_, f, _, _] = c.gates_mut();
        assert!(f.b.iter().all(|&b| b == 1.0));
    }

    /// Central-difference gradient check through a 3-node tree
    /// (two leaves + root) with a sum-of-hidden loss, covering every
    /// parameter tensor of every gate plus the input gradient.
    #[test]
    fn gradients_match_finite_differences() {
        let mut c = cell(3, 4, 4);
        let x_leaf = Matrix::from_rows(&[&[0.3, -0.2, 0.5], &[-0.1, 0.4, 0.2]]);
        let x_root = Matrix::from_rows(&[&[0.1, 0.6, -0.3], &[0.2, -0.5, 0.1]]);

        // Loss = Σ h_root (all elements), so dL/dh_root = 1.
        let loss_of = |c: &TreeLstmCell| -> f64 {
            let l1 = c.forward(&x_leaf, &[]);
            let l2 = c.forward(&x_root, &[]);
            let root =
                c.forward(&x_root, &[(l1.hidden(), l1.memory()), (l2.hidden(), l2.memory())]);
            root.hidden().as_slice().iter().map(|&v| v as f64).sum()
        };

        // Analytic gradients.
        c.zero_grad();
        let l1 = c.forward(&x_leaf, &[]);
        let l2 = c.forward(&x_root, &[]);
        let root =
            c.forward(&x_root, &[(l1.hidden(), l1.memory()), (l2.hidden(), l2.memory())]);
        let ones = Matrix::from_fn(2, 4, |_, _| 1.0);
        let zeros = Matrix::zeros(2, 4);
        let (_, child_grads) = c.backward(&root, &ones, &zeros);
        // Children are leaves: propagate their gradients too.
        for (cache, (dh, dm)) in [(&l1, &child_grads[0]), (&l2, &child_grads[1])] {
            c.backward(cache, dh, dm);
        }

        // Compare each gate's tensors against central differences.
        let h = 1e-3f32;
        let mut worst = 0.0f64;
        for g in 0..4 {
            for (r, cidx) in [(0usize, 0usize), (1, 2), (2, 3)] {
                // Weight W.
                let analytic = {
                    let mut cc = c.clone();
                    let gates = cc.gates_mut();
                    gates[g].gw.get(r, cidx) as f64
                };
                let orig = {
                    let mut cc = c.clone();
                    let gates = cc.gates_mut();
                    gates[g].w.get(r, cidx)
                };
                let mut cp = c.clone();
                cp.gates_mut()[g].w.set(r, cidx, orig + h);
                let lp = loss_of(&cp);
                let mut cm = c.clone();
                cm.gates_mut()[g].w.set(r, cidx, orig - h);
                let lm = loss_of(&cm);
                let numeric = (lp - lm) / (2.0 * h as f64);
                let denom = analytic.abs().max(numeric.abs()).max(1e-3);
                worst = worst.max((analytic - numeric).abs() / denom);

                // Recurrent weight U (square, same indices valid).
                let analytic = {
                    let mut cc = c.clone();
                    cc.gates_mut()[g].gu.get(r, cidx) as f64
                };
                let orig = {
                    let mut cc = c.clone();
                    cc.gates_mut()[g].u.get(r, cidx)
                };
                let mut cp = c.clone();
                cp.gates_mut()[g].u.set(r, cidx, orig + h);
                let lp = loss_of(&cp);
                let mut cm = c.clone();
                cm.gates_mut()[g].u.set(r, cidx, orig - h);
                let lm = loss_of(&cm);
                let numeric = (lp - lm) / (2.0 * h as f64);
                let denom = analytic.abs().max(numeric.abs()).max(1e-3);
                worst = worst.max((analytic - numeric).abs() / denom);
            }
            // Bias.
            let analytic = {
                let mut cc = c.clone();
                cc.gates_mut()[g].gb[1] as f64
            };
            let orig = {
                let mut cc = c.clone();
                cc.gates_mut()[g].b[1]
            };
            let mut cp = c.clone();
            cp.gates_mut()[g].b[1] = orig + h;
            let lp = loss_of(&cp);
            let mut cm = c.clone();
            cm.gates_mut()[g].b[1] = orig - h;
            let lm = loss_of(&cm);
            let numeric = (lp - lm) / (2.0 * h as f64);
            let denom = analytic.abs().max(numeric.abs()).max(1e-3);
            worst = worst.max((analytic - numeric).abs() / denom);
        }
        assert!(worst < 0.02, "worst relative gradient error {worst}");
    }

    /// The input gradient (dx) must also match finite differences — it is
    /// what the composed model backpropagates into the featurization.
    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut c = cell(3, 4, 5);
        let x = Matrix::from_rows(&[&[0.2, -0.4, 0.6]]);

        let loss_of = |c: &TreeLstmCell, x: &Matrix| -> f64 {
            let leaf = c.forward(x, &[]);
            let root = c.forward(x, &[(leaf.hidden(), leaf.memory())]);
            root.hidden().as_slice().iter().map(|&v| v as f64).sum()
        };

        let leaf = c.forward(&x, &[]);
        let root = c.forward(&x, &[(leaf.hidden(), leaf.memory())]);
        let ones = Matrix::from_fn(1, 4, |_, _| 1.0);
        let zeros = Matrix::zeros(1, 4);
        c.zero_grad();
        let (dx_root, child_grads) = c.backward(&root, &ones, &zeros);
        let (dx_leaf, _) = c.backward(&leaf, &child_grads[0].0, &child_grads[0].1);
        // Same x feeds both nodes, so total dx is the sum.
        let mut dx = dx_root;
        dx.add_scaled(&dx_leaf, 1.0);

        let h = 1e-3f32;
        for j in 0..3 {
            let mut xp = x.clone();
            xp.set(0, j, x.get(0, j) + h);
            let mut xm = x.clone();
            xm.set(0, j, x.get(0, j) - h);
            let numeric = (loss_of(&c, &xp) - loss_of(&c, &xm)) / (2.0 * h as f64);
            let analytic = dx.get(0, j) as f64;
            let denom = analytic.abs().max(numeric.abs()).max(1e-3);
            assert!(
                (analytic - numeric).abs() / denom < 0.02,
                "dx[{j}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    /// A Tree-LSTM with a fixed linear readout can fit a toy tree
    /// regression task (sanity check that training actually works).
    #[test]
    fn training_reduces_loss_on_toy_tree_task() {
        let mut c = cell(2, 8, 6);
        let mut opt = Sgd::new(0.05, 0.9);
        // Task: root target = sum of leaf inputs. Readout = mean of h.
        let cases: Vec<(Matrix, Matrix, f32)> = (0..6)
            .map(|k| {
                let a = (k as f32) * 0.1;
                let b = 0.5 - (k as f32) * 0.05;
                (
                    Matrix::from_row(&[a, 0.1]),
                    Matrix::from_row(&[b, -0.1]),
                    a + b,
                )
            })
            .collect();

        let forward = |c: &TreeLstmCell, xa: &Matrix, xb: &Matrix| {
            let l1 = c.forward(xa, &[]);
            let l2 = c.forward(xb, &[]);
            let x_root = Matrix::from_row(&[0.0, 0.0]);
            let root =
                c.forward(&x_root, &[(l1.hidden(), l1.memory()), (l2.hidden(), l2.memory())]);
            (l1, l2, root)
        };
        let readout =
            |root: &LstmNodeCache| root.h.as_slice().iter().sum::<f32>() / root.h.len() as f32;

        let loss_total = |c: &TreeLstmCell| -> f32 {
            cases
                .iter()
                .map(|(xa, xb, t)| {
                    let (_, _, root) = forward(c, xa, xb);
                    let e = readout(&root) - t;
                    e * e
                })
                .sum()
        };

        let initial = loss_total(&c);
        for _ in 0..150 {
            c.zero_grad();
            for (xa, xb, t) in &cases {
                let (l1, l2, root) = forward(&c, xa, xb);
                let pred = readout(&root);
                let scale = 2.0 * (pred - t) / root.h.len() as f32;
                let dh = Matrix::from_fn(1, 8, |_, _| scale);
                let dm = Matrix::zeros(1, 8);
                let (_, grads) = c.backward(&root, &dh, &dm);
                c.backward(&l1, &grads[0].0, &grads[0].1);
                c.backward(&l2, &grads[1].0, &grads[1].1);
            }
            c.apply_grads(&mut opt, 0);
        }
        let final_ = loss_total(&c);
        assert!(final_ < initial * 0.2, "loss {initial} -> {final_}");
    }

    #[test]
    fn serde_round_trip_preserves_forward() {
        let c = cell(3, 5, 7);
        let x = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32 * 0.17 - 0.2);
        let json = serde_json::to_string(&c).unwrap();
        let back: TreeLstmCell = serde_json::from_str(&json).unwrap();
        assert_eq!(c.forward(&x, &[]).hidden(), back.forward(&x, &[]).hidden());
    }

    #[test]
    fn batched_forward_equals_per_row_forward() {
        let c = cell(3, 4, 8);
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3], &[-0.4, 0.5, -0.6]]);
        let batched = c.forward(&x, &[]);
        for r in 0..2 {
            let single = c.forward(&Matrix::from_row(x.row(r)), &[]);
            for j in 0..4 {
                assert!(
                    (batched.hidden().get(r, j) - single.hidden().get(0, j)).abs() < 1e-6,
                    "row {r} col {j}"
                );
            }
        }
    }
}
