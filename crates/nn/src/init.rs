//! Weight initialization schemes.
//!
//! Initial weights are "picked randomly" (paper §5); the schemes here are the
//! standard choices that make deep ReLU stacks trainable. All draw from a
//! caller-supplied RNG so runs are reproducible.

use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Initialization scheme for a dense layer's weight matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Init {
    /// Glorot/Xavier uniform: `U(±sqrt(6 / (fan_in + fan_out)))`.
    Xavier,
    /// He/Kaiming uniform, suited to ReLU: `U(±sqrt(6 / fan_in))`.
    He,
    /// Uniform in `±limit`.
    Uniform(f32),
}

impl Init {
    /// Samples an `fan_in × fan_out` weight matrix.
    pub fn matrix(self, fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
        let limit = match self {
            Init::Xavier => (6.0 / (fan_in + fan_out) as f32).sqrt(),
            Init::He => (6.0 / fan_in as f32).sqrt(),
            Init::Uniform(l) => l,
        };
        Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-limit..=limit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn he_bounds_follow_fan_in() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = Init::He.matrix(24, 8, &mut rng);
        let limit = (6.0f32 / 24.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit + 1e-6));
        // With 192 samples, at least one should land beyond half the limit.
        assert!(m.as_slice().iter().any(|v| v.abs() > limit * 0.5));
    }

    #[test]
    fn same_seed_same_weights() {
        let a = Init::Xavier.matrix(5, 5, &mut rand::rngs::StdRng::seed_from_u64(9));
        let b = Init::Xavier.matrix(5, 5, &mut rand::rngs::StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Init::Xavier.matrix(5, 5, &mut rand::rngs::StdRng::seed_from_u64(1));
        let b = Init::Xavier.matrix(5, 5, &mut rand::rngs::StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }
}
