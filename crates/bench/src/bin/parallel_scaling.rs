//! Parallel-training scaling (extension).
//!
//! §5.1 motivates its optimizations with "we wish to train multiple neural
//! units in parallel". This experiment measures the data-parallel trainer
//! (equivalence classes distributed across threads, gradients reduced) at
//! 1–8 worker threads, verifying both the speedup and that accuracy is
//! unchanged.
//!
//! ```text
//! cargo run -p qpp-bench --release --bin parallel_scaling -- --queries 600 --epochs 20
//! ```

use qpp_bench::{fmt_minutes, generate, render_table, ExpConfig};
use qpp_plansim::catalog::Workload;
use qppnet::{QppConfig, QppNet};
use std::time::Instant;

fn main() {
    let cfg = ExpConfig::from_args(ExpConfig {
        queries: 600,
        qpp: QppConfig { epochs: 20, ..QppConfig::default() },
        ..ExpConfig::default()
    });
    println!(
        "Parallel scaling (extension) — threads vs. epoch time (queries={}, sf={}, epochs={}, seed={})\n",
        cfg.queries, cfg.scale_factor, cfg.qpp.epochs, cfg.seed
    );

    let (ds, split) = generate(&cfg, Workload::TpcH);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);
    let actuals: Vec<f64> = test.iter().map(|p| p.latency_ms()).collect();

    let mut rows = Vec::new();
    let mut serial_time = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let qpp_cfg = QppConfig { threads, ..cfg.qpp.clone() };
        let mut model = QppNet::new(qpp_cfg, &ds.catalog);
        let start = Instant::now();
        model.fit(&train);
        let secs = start.elapsed().as_secs_f64();
        if threads == 1 {
            serial_time = secs;
        }
        let m = qppnet::evaluate(&actuals, &model.predict_batch(&test));
        rows.push(vec![
            format!("{threads}"),
            format!("{secs:.1}"),
            format!("{:.2}x", serial_time / secs),
            format!("{:.1}", m.relative_error_pct()),
            fmt_minutes(m.mae_ms),
        ]);
    }

    println!(
        "{}",
        render_table(
            &format!("TPC-H (train {} / test {})", split.train.len(), split.test.len()),
            &["threads", "train (s)", "speedup", "rel err (%)", "MAE (min)"],
            &rows,
        )
    );
    println!(
        "Expected shape: near-identical accuracy at every thread count (the\n\
         reduction is exact up to f32 summation order); speedup grows with\n\
         threads until per-batch class counts limit available parallelism."
    );
}
