//! Figure 12 (Appendix A): mean query latency per TPC-DS template.
//!
//! Pure workload statistics — no models involved. The paper plots minutes
//! on a log scale spanning several orders of magnitude across templates.

use qpp_bench::{render_table, ExpConfig};
use qpp_plansim::catalog::Workload;
use qpp_plansim::dataset::Dataset;

fn main() {
    let cfg = ExpConfig::from_args(ExpConfig { queries: 2_000, ..ExpConfig::default() });
    println!(
        "Figure 12 — mean latency by TPC-DS template (queries={}, sf={}, seed={})\n",
        cfg.queries, cfg.scale_factor, cfg.seed
    );

    let ds = Dataset::generate(Workload::TpcDs, cfg.scale_factor, cfg.queries, cfg.seed);
    let stats = ds.latency_by_template();

    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|(tid, mean_ms, n)| {
            let minutes = mean_ms / 60_000.0;
            // Log-scale bar like the paper's log axis.
            let bar_len = ((minutes.max(1e-3)).log10() + 3.0).max(0.0) * 8.0;
            vec![
                format!("q{tid}"),
                format!("{minutes:.2}"),
                n.to_string(),
                "#".repeat(bar_len as usize),
            ]
        })
        .collect();

    println!(
        "{}",
        render_table(
            "Mean latency per template (minutes; log-scale bars)",
            &["template", "mean latency (min)", "queries", "log bar"],
            &rows,
        )
    );

    let mins: Vec<f64> = stats.iter().map(|(_, m, _)| m / 60_000.0).collect();
    let lo = mins.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = mins.iter().cloned().fold(0.0, f64::max);
    println!("spread: {lo:.3} .. {hi:.1} minutes ({:.0}x)", hi / lo.max(1e-9));
    println!(
        "Paper shape: per-template means span several orders of magnitude\n\
         (the paper's Figure 12 axis runs from ~1 to ~100,000 on a log scale)."
    );
}
