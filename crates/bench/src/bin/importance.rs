//! Feature-importance report (interpretability extension).
//!
//! The paper's data vectors are deliberately opaque (§5); permutation
//! importance (`qppnet::importance`) recovers which *inputs* a trained
//! QPP Net actually relies on. This binary trains on TPC-H and prints the
//! top features by MAE degradation when permuted.
//!
//! ```text
//! cargo run -p qpp-bench --release --bin importance -- --queries 800 --epochs 80
//! ```

use qpp_bench::{generate, render_table, ExpConfig};
use qpp_plansim::catalog::Workload;
use qppnet::{permutation_importance, QppNet};

fn main() {
    let cfg = ExpConfig::from_args(ExpConfig { queries: 800, ..ExpConfig::default() });
    println!(
        "Permutation importance (extension) — queries={}, sf={}, epochs={}, seed={}\n",
        cfg.queries, cfg.scale_factor, cfg.qpp.epochs, cfg.seed
    );

    let (ds, split) = generate(&cfg, Workload::TpcH);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);

    let mut model = QppNet::new(cfg.qpp.clone(), &ds.catalog);
    model.fit(&train);
    let baseline = model.evaluate(&test);
    println!(
        "baseline: MAE {:.2} min, relative error {:.1}%\n",
        baseline.mae_ms / 60_000.0,
        baseline.relative_error_pct()
    );

    let importances = permutation_importance(&model, &test, cfg.seed);
    let rows: Vec<Vec<String>> = importances
        .iter()
        .take(20)
        .map(|f| {
            vec![
                format!("{:?}", f.kind),
                f.label.clone(),
                format!("{:+.2}", f.delta_mae_ms / 60_000.0),
                format!("{:.2}", f.permuted_mae_ms / 60_000.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "top-20 features by permutation importance",
            &["operator", "feature", "ΔMAE (min)", "permuted MAE (min)"],
            &rows,
        )
    );

    let zeros = importances.iter().filter(|f| f.delta_mae_ms == 0.0).count();
    println!(
        "{} of {} feature positions have zero importance on this test set\n\
         (constant columns: unused one-hot slots, never-seen indexes, …).",
        zeros,
        importances.len()
    );
    println!(
        "Expected shape: optimizer cardinality/cost estimates and scan relation\n\
         identities dominate; exotic one-hot slots contribute nothing."
    );
}
