//! Diagnostic utility: per-template test metrics for every model on the
//! paper split. Useful for understanding *where* each model's error comes
//! from (complements Figure 8's hold-one-out view).

use qpp_bench::{generate, render_table, run_all_models, ExpConfig};
use qpp_plansim::catalog::Workload;
use std::collections::BTreeMap;

fn main() {
    let mut defaults = ExpConfig { queries: 1000, ..ExpConfig::default() };
    defaults.qpp.epochs = 100;
    let cfg = ExpConfig::from_args(defaults);

    for workload in [Workload::TpcDs] {
        let (ds, split) = generate(&cfg, workload);
        let runs = run_all_models(&cfg, &ds, &split);

        // template -> indices into the test vector
        let mut by_template: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (k, &i) in split.test.iter().enumerate() {
            by_template.entry(ds.plans[i].template_id).or_default().push(k);
        }

        let mut rows = Vec::new();
        for (tid, idxs) in &by_template {
            let actual_mean =
                idxs.iter().map(|&k| runs[0].actuals[k]).sum::<f64>() / idxs.len() as f64;
            let mut row = vec![
                format!("q{tid}"),
                format!("{:.1}", actual_mean / 60_000.0),
                idxs.len().to_string(),
            ];
            for r in &runs {
                let rel = idxs
                    .iter()
                    .map(|&k| (r.actuals[k] - r.predictions[k]).abs() / r.actuals[k].max(1e-9))
                    .sum::<f64>()
                    / idxs.len() as f64;
                row.push(format!("{:.0}%", rel * 100.0));
            }
            rows.push(row);
        }
        println!(
            "{}",
            render_table(
                &format!("{} per-template relative error (test split)", workload.name()),
                &["template", "mean lat (min)", "n", "TAM", "SVM", "RBF", "QPPNet"],
                &rows,
            )
        );

        // Worst QPPNet queries with actual vs predicted, for debugging.
        let qpp = &runs[3];
        let mut worst: Vec<usize> = (0..qpp.actuals.len()).collect();
        worst.sort_by(|&a, &b| {
            let ra = (qpp.actuals[a] - qpp.predictions[a]).abs() / qpp.actuals[a];
            let rb = (qpp.actuals[b] - qpp.predictions[b]).abs() / qpp.actuals[b];
            rb.partial_cmp(&ra).unwrap()
        });
        println!("worst QPPNet predictions:");
        for &k in worst.iter().take(10) {
            let i = split.test[k];
            println!(
                "  q{} #{:>4}: actual {:>10.1}s predicted {:>10.1}s ({} ops)",
                ds.plans[i].template_id,
                ds.plans[i].query_id,
                qpp.actuals[k] / 1000.0,
                qpp.predictions[k] / 1000.0,
                ds.plans[i].node_count(),
            );
        }

        // Per-operator breakdown of the single worst plan: retrain a
        // QPPNet (same config/seed) to access predict_operators.
        let train = ds.select(&split.train);
        let mut model = qppnet::QppNet::new(cfg.qpp.clone(), &ds.catalog);
        model.fit(&train);
        let plan = &ds.plans[split.test[worst[0]]];
        let per_op = model.predict_operators(plan);
        println!("\nper-operator view of the worst plan (q{}):", plan.template_id);
        for (node, pred) in plan.root.postorder().iter().zip(&per_op) {
            println!(
                "  {:<22} est_rows={:>12.0} true_rows={:>12.0} actual={:>9.1}s pred={:>9.1}s",
                node.op.display_name(),
                node.est.rows,
                node.actual.rows,
                node.actual.latency_ms / 1000.0,
                pred / 1000.0,
            );
        }

        // Library-side analyses: which neural unit carries the error, and
        // is the model calibrated across latency decades?
        let test = ds.select(&split.test);
        let fam_rows: Vec<Vec<String>> = qppnet::error_by_family(&model, &test)
            .iter()
            .map(|f| {
                vec![
                    format!("{:?}", f.kind),
                    f.count.to_string(),
                    format!("{:.2}", f.mae_ms / 60_000.0),
                    format!("{:.2}", f.mean_r),
                    format!("{:.0}%", f.r_le_15 * 100.0),
                ]
            })
            .collect();
        println!(
            "\n{}",
            render_table(
                "QPPNet error by operator family (inclusive latencies, test split)",
                &["family", "instances", "MAE (min)", "mean R", "R≤1.5"],
                &fam_rows,
            )
        );

        let cal_rows: Vec<Vec<String>> = qppnet::calibration(&model, &test)
            .iter()
            .map(|b| {
                vec![
                    format!("{:.0}..{:.0}s", b.lo_ms / 1000.0, b.hi_ms / 1000.0),
                    b.count.to_string(),
                    format!("{:.1}", b.mean_actual_ms / 60_000.0),
                    format!("{:.1}", b.mean_predicted_ms / 60_000.0),
                    format!("{:.2}", b.mean_bias),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                "QPPNet calibration by actual-latency decade (bias >1 = over-prediction)",
                &["actual range", "n", "mean actual (min)", "mean pred (min)", "bias"],
                &cal_rows,
            )
        );
    }
}
