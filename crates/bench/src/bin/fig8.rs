//! Figure 8: mean absolute error by TPC-DS query template, hold-one-out.
//!
//! For each template, the models train on all *other* templates and are
//! evaluated on the held-out one (log-scale MAE in the paper). Running all
//! 70 templates retrains every model 70 times; `--templates k` subsamples
//! every k-th template to keep the default run short (use `--templates 1`
//! for the full figure).
//!
//! Extra flag: `--templates N` — evaluate every N-th template (default 7).

use qpp_baselines::rbf::RbfModel;
use qpp_baselines::svm::SvmModel;
use qpp_baselines::tam::TamModel;
use qpp_baselines::LatencyModel;
use qpp_bench::{render_table, ExpConfig};
use qpp_plansim::catalog::Workload;
use qpp_plansim::dataset::Dataset;
use qppnet::QppNet;

fn main() {
    let mut stride = 7usize;
    let mut cfg = ExpConfig { queries: 800, ..ExpConfig::default() };
    cfg.qpp.epochs = 60;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i + 1 < args.len() + 1 && i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).map(String::as_str).unwrap_or("");
        match flag {
            "--templates" => stride = value.parse().expect("--templates N"),
            "--queries" => cfg.queries = value.parse().expect("--queries N"),
            "--sf" => cfg.scale_factor = value.parse().expect("--sf F"),
            "--epochs" => cfg.qpp.epochs = value.parse().expect("--epochs N"),
            "--seed" => cfg.seed = value.parse().expect("--seed N"),
            "--batch" => cfg.qpp.batch_size = value.parse().expect("--batch N"),
            other => {
                eprintln!("unknown flag {other}; flags: --templates --queries --sf --epochs --seed --batch");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    cfg.qpp.seed = cfg.seed;

    println!(
        "Figure 8 — MAE by TPC-DS template, hold-one-out (queries={}, epochs={}, every {}th template)\n",
        cfg.queries, cfg.qpp.epochs, stride
    );

    let ds = Dataset::generate(Workload::TpcDs, cfg.scale_factor, cfg.queries, cfg.seed);
    let mut template_ids: Vec<u32> = ds.plans.iter().map(|p| p.template_id).collect();
    template_ids.sort_unstable();
    template_ids.dedup();

    let mut rows = Vec::new();
    for tid in template_ids.iter().step_by(stride.max(1)) {
        let split = ds.split_hold_one_template(*tid);
        if split.test.is_empty() || split.train.is_empty() {
            continue;
        }
        let train = ds.select(&split.train);
        let test = ds.select(&split.test);
        let actual: Vec<f64> = test.iter().map(|p| p.latency_ms()).collect();

        let mae = |preds: &[f64]| -> f64 {
            preds.iter().zip(&actual).map(|(p, a)| (p - a).abs()).sum::<f64>()
                / actual.len() as f64
                / 1000.0 // seconds, matching the paper's axis
        };

        let mut tam = TamModel::new();
        tam.fit(&train);
        let mut svm = SvmModel::new(cfg.seed);
        svm.fit(&train);
        let mut rbf = RbfModel::new();
        rbf.fit(&train);
        let mut qpp = QppNet::new(cfg.qpp.clone(), &ds.catalog);
        qpp.fit(&train);

        rows.push(vec![
            format!("q{tid}"),
            format!("{:.0}", mae(&tam.predict_batch(&test))),
            format!("{:.0}", mae(&svm.predict_batch(&test))),
            format!("{:.0}", mae(&rbf.predict_batch(&test))),
            format!("{:.0}", mae(&qpp.predict_batch(&test))),
            format!("{}", test.len()),
        ]);
    }

    println!(
        "{}",
        render_table(
            "Mean absolute error by held-out TPC-DS template (seconds)",
            &["template", "TAM", "SVM", "RBF", "QPPNet", "test queries"],
            &rows,
        )
    );
    println!(
        "Paper shape: QPP Net's per-template MAE is lower than or within 5% of\n\
         every other model, with the biggest wins on long-running templates."
    );
}
