//! Concurrent-query extension (paper §8 future work).
//!
//! > "the neural network architecture presented here could be adapted to
//! > handle concurrent queries. Doing so would require understanding the
//! > resource usage requirements of the two queries, and whether or not
//! > two queries will have to compete for resources."
//!
//! This experiment generates a workload whose queries execute under
//! multiprogramming levels 1–8 (shared I/O bandwidth, CPU contention and
//! a shrinking per-query memory budget; see
//! `qpp_plansim::executor::Executor::run_with_load`) and compares:
//!
//! * **QPP Net (load-blind)** — the paper's model, unaware of system load;
//! * **QPP Net (load-aware)** — one extra numeric feature per operator
//!   carrying the multiprogramming level
//!   (`Featurizer::with_system_load`), exactly the integration style §7
//!   prescribes for cardinality estimates.
//!
//! ```text
//! cargo run -p qpp-bench --release --bin concurrent -- --queries 1200 --epochs 100
//! ```

use qpp_bench::{fmt_minutes, render_table, ExpConfig};
use qpp_plansim::catalog::Workload;
use qpp_plansim::dataset::Dataset;
use qpp_plansim::features::Featurizer;
use qppnet::QppNet;
use std::time::Instant;

/// Maximum multiprogramming level in the generated mix.
const MAX_MPL: u32 = 8;

fn main() {
    let cfg = ExpConfig::from_args(ExpConfig { queries: 1_200, ..ExpConfig::default() });
    println!(
        "Concurrency (§8 extension) — load-blind vs load-aware QPP Net \
         (queries={}, sf={}, epochs={}, seed={}, MPL 1..={MAX_MPL})\n",
        cfg.queries, cfg.scale_factor, cfg.qpp.epochs, cfg.seed
    );

    for workload in [Workload::TpcH, Workload::TpcDs] {
        let ds = Dataset::generate_concurrent(
            workload,
            cfg.scale_factor,
            cfg.queries,
            cfg.seed,
            MAX_MPL,
        );
        let split = ds.paper_split(cfg.seed ^ 0x5eed);
        let train = ds.select(&split.train);
        let test = ds.select(&split.test);
        let actuals: Vec<f64> = test.iter().map(|p| p.latency_ms()).collect();

        let mut rows = Vec::new();
        for (name, featurizer) in [
            ("QPP Net (load-blind)", Featurizer::new(&ds.catalog)),
            ("QPP Net (load-aware)", Featurizer::with_system_load(&ds.catalog)),
        ] {
            let mut model = QppNet::with_featurizer(cfg.qpp.clone(), featurizer);
            let start = Instant::now();
            model.fit(&train);
            let secs = start.elapsed().as_secs_f64();
            let m = qppnet::evaluate(&actuals, &model.predict_batch(&test));
            rows.push(vec![
                name.to_string(),
                format!("{:.1}", m.relative_error_pct()),
                fmt_minutes(m.mae_ms),
                format!("{:.0}", m.r_le_15 * 100.0),
                format!("{:.2}", m.median_r),
                format!("{secs:.1}"),
            ]);
        }

        println!(
            "{}",
            render_table(
                &format!(
                    "{} under load (train {} / test {})",
                    workload.name(),
                    split.train.len(),
                    split.test.len()
                ),
                &["model", "rel err (%)", "MAE (min)", "R≤1.5 (%)", "median R", "train (s)"],
                &rows,
            )
        );
    }

    println!(
        "Expected shape: the load-blind model's error grows with the spread of\n\
         interference it cannot see; exposing the multiprogramming level as one\n\
         feature recovers most of the gap — supporting §8's claim that the\n\
         architecture extends to concurrent workloads."
    );
}
