//! Figure 7b: cumulative distribution of error factors R(q) per model, on
//! TPC-DS and TPC-H.
//!
//! Prints, for each model, the largest R value achieved at each decile of
//! the test set — i.e. the paper's CDF curves as a table. Reading example
//! from the paper: "QPP Net's prediction was within at least a factor of
//! 1.5 for 93% of the testing data".

use qpp_bench::{generate, render_table, run_all_models, ExpConfig};
use qpp_plansim::catalog::Workload;
use qppnet::r_cdf;

fn main() {
    let cfg = ExpConfig::from_args(ExpConfig::default());
    println!(
        "Figure 7b — cumulative error factors (queries={}, sf={}, epochs={}, seed={})\n",
        cfg.queries, cfg.scale_factor, cfg.qpp.epochs, cfg.seed
    );

    let fractions = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0];

    for workload in [Workload::TpcDs, Workload::TpcH] {
        let (ds, split) = generate(&cfg, workload);
        let runs = run_all_models(&cfg, &ds, &split);

        let mut header: Vec<String> = vec!["model".to_string()];
        header.extend(fractions.iter().map(|f| format!("{:.0}%", f * 100.0)));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

        let rows: Vec<Vec<String>> = runs
            .iter()
            .map(|r| {
                let cdf = r_cdf(&r.actuals, &r.predictions);
                let mut row = vec![r.name.to_string()];
                for &f in &fractions {
                    // Largest R within the first `f` fraction of the test set.
                    let r_at = cdf
                        .iter()
                        .take_while(|(frac, _)| *frac <= f + 1e-9)
                        .last()
                        .map(|(_, r)| *r)
                        .unwrap_or(1.0);
                    row.push(format!("{r_at:.2}"));
                }
                row
            })
            .collect();

        println!(
            "{}",
            render_table(
                &format!("{} — R(q) reached at each fraction of the test set", workload.name()),
                &header_refs,
                &rows,
            )
        );
    }
    println!(
        "Paper shape: QPP Net's curve stays lowest (smaller error factors for any\n\
         fraction of the test set) and only spikes close to 100%."
    );
}
