//! Figure 7a: relative error and mean absolute error of TAM / SVM / RBF /
//! QPP Net on TPC-DS and TPC-H.
//!
//! ```text
//! cargo run -p qpp-bench --release --bin fig7a -- --queries 1500 --epochs 100
//! ```

use qpp_bench::{fmt_minutes, generate, render_table, run_all_models, ExpConfig};
use qpp_plansim::catalog::Workload;

fn main() {
    let cfg = ExpConfig::from_args(ExpConfig::default());
    println!(
        "Figure 7a — prediction accuracy (queries={}, sf={}, epochs={}, seed={})\n",
        cfg.queries, cfg.scale_factor, cfg.qpp.epochs, cfg.seed
    );

    for workload in [Workload::TpcDs, Workload::TpcH] {
        let (ds, split) = generate(&cfg, workload);
        let runs = run_all_models(&cfg, &ds, &split);
        let rows: Vec<Vec<String>> = runs
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    format!("{:.1}", r.metrics.relative_error_pct()),
                    fmt_minutes(r.metrics.mae_ms),
                    format!("{:.1}", r.train_seconds),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!(
                    "{} (train {} / test {} queries)",
                    workload.name(),
                    split.train.len(),
                    split.test.len()
                ),
                &["model", "relative error (%)", "mean absolute error (min)", "train (s)"],
                &rows,
            )
        );
    }
    println!(
        "Paper shape: QPP Net achieves the lowest relative error and MAE on both\n\
         workloads, with the largest margin on TPC-DS (more operators per plan)."
    );
}
