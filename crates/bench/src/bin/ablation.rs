//! Architecture ablation (extension): QPP Net vs. the three §3 strawmen.
//!
//! The paper *argues* in §3 that a flat plan-level DNN, a sparse
//! shared-unit DNN, and tree-structured NLP architectures are ill-suited
//! to query performance prediction; this experiment tests the argument by
//! training all three (see the `qpp-ablation` crate) under QPPNet's
//! hyper-parameters on both workloads.
//!
//! ```text
//! cargo run -p qpp-bench --release --bin ablation -- --queries 1000 --epochs 100
//! ```
//!
//! Expected shape: QPP Net < Sparse shared unit < {Flat DNN, Tree-LSTM}
//! in error; the gap between QPP Net and the sparse unit isolates
//! per-family weights, the gap to the flat model isolates tree structure.

use qpp_ablation::{AblationConfig, FlatDnn, SparseUnitDnn, TreeLstm};
use qpp_baselines::LatencyModel;
use qpp_bench::{fmt_minutes, generate, render_table, ExpConfig};
use qpp_plansim::catalog::Workload;
use qpp_plansim::operators::OpKind;
use qppnet::QppNet;
use std::time::Instant;

fn main() {
    let cfg = ExpConfig::from_args(ExpConfig { queries: 1_000, ..ExpConfig::default() });
    println!(
        "Ablation (extension) — architecture comparison (queries={}, sf={}, epochs={}, seed={})\n",
        cfg.queries, cfg.scale_factor, cfg.qpp.epochs, cfg.seed
    );

    // Match the ablation models' shared hyper-parameters to QPPNet's.
    let ab = AblationConfig {
        hidden_units: cfg.qpp.hidden_units,
        hidden_layers: cfg.qpp.hidden_layers,
        data_size: cfg.qpp.data_size,
        epochs: cfg.qpp.epochs,
        batch_size: cfg.qpp.batch_size,
        learning_rate: cfg.qpp.learning_rate,
        momentum: cfg.qpp.momentum,
        weight_decay: cfg.qpp.weight_decay,
        target_transform: cfg.qpp.target_transform,
        seed: cfg.seed,
    };

    for workload in [Workload::TpcDs, Workload::TpcH] {
        let (ds, split) = generate(&cfg, workload);
        let train = ds.select(&split.train);
        let test = ds.select(&split.test);
        let actuals: Vec<f64> = test.iter().map(|p| p.latency_ms()).collect();

        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut add = |name: &str, preds: Vec<f64>, secs: f64, params: usize| {
            let m = qppnet::evaluate(&actuals, &preds);
            rows.push(vec![
                name.to_string(),
                format!("{:.1}", m.relative_error_pct()),
                fmt_minutes(m.mae_ms),
                format!("{:.0}", m.r_le_15 * 100.0),
                format!("{}", params),
                format!("{secs:.1}"),
            ]);
        };

        let mut flat = FlatDnn::new(ab.clone());
        let t = Instant::now();
        flat.fit(&train);
        add("Flat DNN", flat.predict_batch(&test), t.elapsed().as_secs_f64(), flat.num_params());

        let mut tl = TreeLstm::new(
            // A full-width Tree-LSTM is prohibitively slow at bench scale;
            // its hidden state is capped at 64 (still > the sparse width).
            AblationConfig { hidden_units: ab.hidden_units.min(64), ..ab.clone() },
            &ds.catalog,
        );
        let t = Instant::now();
        tl.fit(&train);
        add("Tree-LSTM", tl.predict_batch(&test), t.elapsed().as_secs_f64(), tl.num_params());

        let mut sparse = SparseUnitDnn::new(ab.clone(), &ds.catalog);
        let t = Instant::now();
        sparse.fit(&train);
        add(
            "Sparse shared unit",
            sparse.predict_batch(&test),
            t.elapsed().as_secs_f64(),
            sparse.num_params(),
        );

        let mut qpp = QppNet::new(cfg.qpp.clone(), &ds.catalog);
        let t = Instant::now();
        qpp.fit(&train);
        add("QPP Net", qpp.predict_batch(&test), t.elapsed().as_secs_f64(), qpp.num_params());

        println!(
            "{}",
            render_table(
                &format!(
                    "{} (train {} / test {} queries)",
                    workload.name(),
                    split.train.len(),
                    split.test.len()
                ),
                &["model", "rel err (%)", "MAE (min)", "R≤1.5 (%)", "params", "train (s)"],
                &rows,
            )
        );

        // The sparsity §3 warns about, made concrete.
        let sf = qpp_ablation::SparseFeaturizer::new(&ds.catalog);
        let worst = OpKind::ALL
            .iter()
            .map(|&k| sf.sparsity(k))
            .fold(0.0f64, f64::max);
        println!(
            "sparse concatenation: {} total positions, worst-case sparsity {:.0}%\n",
            sf.total_size(),
            worst * 100.0
        );
    }

    println!(
        "Expected shape (§3's argument, tested): QPP Net best; the sparse shared\n\
         unit loses accuracy to input sparsity; the flat DNN and Tree-LSTM lose\n\
         more (no per-operator supervision / branch-mixing recurrence)."
    );
}
