//! Tables 1a and 1b: percentage of the test set with error factor
//! R ≤ 1.5 / 1.5 < R < 2 / R ≥ 2 for each model, on TPC-DS (1a) and
//! TPC-H (1b).

use qpp_bench::{generate, render_table, run_all_models, ExpConfig};
use qpp_plansim::catalog::Workload;

fn main() {
    let cfg = ExpConfig::from_args(ExpConfig::default());
    println!(
        "Tables 1a/1b — error-factor buckets (queries={}, sf={}, epochs={}, seed={})\n",
        cfg.queries, cfg.scale_factor, cfg.qpp.epochs, cfg.seed
    );

    for (label, workload) in [("Table 1a — TPC-DS", Workload::TpcDs), ("Table 1b — TPC-H", Workload::TpcH)] {
        let (ds, split) = generate(&cfg, workload);
        let mut runs = run_all_models(&cfg, &ds, &split);
        // The paper lists QPP Net first in Table 1.
        runs.rotate_right(1);
        let rows: Vec<Vec<String>> = runs
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    format!("{:.0}%", r.metrics.r_le_15 * 100.0),
                    format!("{:.0}%", r.metrics.r_15_to_2 * 100.0),
                    format!("{:.0}%", r.metrics.r_ge_2 * 100.0),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(label, &["Model", "R <= 1.5", "1.5 < R < 2.0", "2.0 <= R"], &rows)
        );
    }
    println!(
        "Paper shape: QPP Net has the largest R <= 1.5 share on both workloads\n\
         (paper: 89% TPC-DS, 93% TPC-H), ahead of RBF, then SVM, then TAM."
    );
}
