//! Saturation-curve load run against a self-hosted `qpp serve` daemon.
//!
//! Starts the daemon in-process on an ephemeral loopback port, trains one
//! model per tier ({edge, paper}), then drives it:
//!
//! * a **closed-loop** burst per tier (peak sustainable throughput —
//!   this leg doubles as the CI smoke run), then
//! * an **open-loop rate sweep** per tier with Zipf(0.99)-skewed
//!   template selection, recording p50/p95/p99/p999 latency (measured
//!   from *scheduled* arrival, so queueing shows) and drop counts, then
//! * a closed-loop **adversarial leg** with all-distinct plans
//!   (`--unique`), which defeats the Zipf skew so the daemon's
//!   whole-plan prediction memo can never hit — its probe+insert
//!   overhead is what that row measures.
//!
//! Results print as a table and persist to `BENCH_serve.json` at the
//! workspace root. Exits nonzero if any leg completes zero requests or
//! produces an empty histogram — the CI smoke assertion.
//!
//! ```text
//! serve_load [--queries N] [--requests N] [--rates r1,r2,...]
//!            [--conns C] [--burst W] [--shards S] [--zipf S]
//!            [--tiers edge,paper] [--fast-path both|0|1]
//!            [--cache both|0|1] [--unique both|0|1] [--smoke]
//! ```
//!
//! `--smoke` shrinks everything for a seconds-scale CI run.
//! `--fast-path both` and `--cache both` (the defaults) cross the two
//! serving-path switches in the same process, so `BENCH_serve.json`
//! carries same-run before/after rows for both the zero-allocation
//! request path and the prediction memo. `--unique both` (the default)
//! keeps the standard legs Zipf-skewed and appends one all-distinct
//! closed-loop leg per daemon; `1` makes every leg all-distinct, `0`
//! drops the adversarial leg.

use std::collections::HashMap;
use std::time::Duration;

use qpp_bench::load::{run_load, LoadMode, LoadSpec, ServeRow};
use qpp_plansim::catalog::Workload;
use qpp_plansim::dataset::Dataset;
use qpp_plansim::plan::{Plan, PlanNode};
use qppnet::serve::{Client, ServeAddr, ServeConfig, Server};
use qppnet::{QppConfig, QppNet};

fn parse_flags() -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if let Some(name) = a.strip_prefix("--") {
            if name == "smoke" {
                flags.insert(name.to_string(), "1".to_string());
            } else {
                let v = args.next().unwrap_or_default();
                flags.insert(name.to_string(), v);
            }
        }
    }
    flags
}

fn get<'a>(flags: &'a HashMap<String, String>, k: &str, default: &'a str) -> &'a str {
    flags.get(k).map(String::as_str).unwrap_or(default)
}

fn fitted_model(ds: &Dataset, cfg: &QppConfig) -> QppNet {
    // Two epochs: weights don't matter for serving-path timing, the
    // unit architecture does.
    let cfg = QppConfig { epochs: 2, ..cfg.clone() };
    let mut model = QppNet::new(cfg, &ds.catalog);
    let train: Vec<&Plan> = ds.plans.iter().take(60).collect();
    model.fit(&train);
    model
}

fn main() {
    let flags = parse_flags();
    let smoke = flags.contains_key("smoke");
    let queries: usize = get(&flags, "queries", if smoke { "24" } else { "120" }).parse().unwrap();
    let requests: usize =
        get(&flags, "requests", if smoke { "200" } else { "2000" }).parse().unwrap();
    let conns: usize = get(&flags, "conns", "2").parse().unwrap();
    let burst: usize = get(&flags, "burst", "1").parse().unwrap();
    let shards: usize = get(&flags, "shards", "1").parse().unwrap();
    let zipf_s: f64 = get(&flags, "zipf", "0.99").parse().unwrap();
    let rates: Vec<f64> = get(&flags, "rates", if smoke { "500" } else { "500,1000,2000,4000,8000" })
        .split(',')
        .map(|r| r.trim().parse().expect("bad --rates entry"))
        .collect();
    let tiers: Vec<String> =
        get(&flags, "tiers", if smoke { "edge" } else { "edge,paper" })
            .split(',')
            .map(|t| t.trim().to_string())
            .collect();
    let fast_legs: Vec<bool> = match get(&flags, "fast-path", "both") {
        "both" => vec![false, true],
        "0" => vec![false],
        "1" => vec![true],
        other => panic!("bad --fast-path `{other}` (want both|0|1)"),
    };
    let cache_legs: Vec<bool> = match get(&flags, "cache", "both") {
        "both" => vec![false, true],
        "0" => vec![false],
        "1" => vec![true],
        other => panic!("bad --cache `{other}` (want both|0|1)"),
    };
    // both = standard legs stay Zipf-skewed, one adversarial all-distinct
    // closed-loop leg rides along per daemon; 1 = every leg all-distinct;
    // 0 = no adversarial leg.
    let (unique_all, unique_extra) = match get(&flags, "unique", "both") {
        "both" => (false, true),
        "0" => (false, false),
        "1" => (true, false),
        other => panic!("bad --unique `{other}` (want both|0|1)"),
    };

    let ds = Dataset::generate(Workload::TpcH, 100.0, queries, 9);
    let templates: Vec<PlanNode> = ds.plans.iter().map(|p| p.root.clone()).collect();
    println!(
        "serve_load: {} templates, {} requests/leg, zipf s={zipf_s}, {} conns, burst {burst}, {} shards",
        templates.len(),
        requests,
        conns,
        shards
    );

    let mut rows: Vec<ServeRow> = Vec::new();
    let mut failed = false;

    for tier in &tiers {
        let cfg = match tier.as_str() {
            "edge" => QppConfig::tiny(),
            "paper" => QppConfig::default(),
            other => panic!("unknown tier `{other}` (want edge|paper)"),
        };
        let model = fitted_model(&ds, &cfg);
        for &fast_path in &fast_legs {
            for &cache in &cache_legs {
                let serve_cfg =
                    ServeConfig { shards, burst, fast_path, cache, ..ServeConfig::default() };
                let mut server =
                    Server::bind(&ServeAddr::parse("127.0.0.1:0").unwrap(), serve_cfg).unwrap();
                server.register(&model);
                let addr = server.local_addr().clone();
                println!("[{tier}] daemon on {addr} (fast_path={fast_path}, cache={cache})");

                std::thread::scope(|scope| {
                    let server = &server;
                    scope.spawn(move || server.run().expect("server run failed"));

                    let mut ctl = Client::connect(&addr).expect("control connection");

                    let mut legs: Vec<(LoadMode, bool)> = vec![(LoadMode::Closed, unique_all)];
                    legs.extend(rates.iter().map(|&r| (LoadMode::Open { rate_hz: r }, unique_all)));
                    if unique_extra {
                        legs.push((LoadMode::Closed, true));
                    }
                    for (mode, unique) in legs {
                        let spec = LoadSpec {
                            addr: addr.clone(),
                            templates: &templates,
                            mode,
                            connections: conns,
                            requests,
                            zipf_s,
                            seed: 42,
                            timeout: Duration::from_secs(2),
                            unique,
                        };
                        // The memo hit rate of *this leg* comes from the
                        // daemon's stats delta around the run.
                        let before = ctl.stats().expect("stats verb");
                        let report = run_load(&spec);
                        let after = ctl.stats().expect("stats verb");
                        let dh = after.cache_hits - before.cache_hits;
                        let dm = after.cache_misses - before.cache_misses;
                        let hit_rate =
                            if dh + dm == 0 { 0.0 } else { dh as f64 / (dh + dm) as f64 };
                        let row =
                            ServeRow::from_report(tier, &spec, &report, fast_path, cache, hit_rate);
                        println!(
                            "[{tier}] fast={} cache={} uniq={} {:>6} target {:>7.0}/s -> {:>7.0}/s \
                             | hit {:>4.0}% | p50 {:>7}µs p95 {:>7}µs p99 {:>7}µs p999 {:>7}µs \
                             | sent {} done {} drop {} err {}",
                            u8::from(fast_path),
                            u8::from(cache),
                            u8::from(unique),
                            row.mode,
                            row.target_rate_hz,
                            row.achieved_rate_hz,
                            row.cache_hit_rate * 100.0,
                            row.p50_us,
                            row.p95_us,
                            row.p99_us,
                            row.p999_us,
                            row.sent,
                            row.completed,
                            row.dropped,
                            row.errors
                        );
                        if report.completed == 0 || report.hist.is_empty() {
                            eprintln!("[{tier}] FAILED: empty histogram for {:?}", spec.mode);
                            failed = true;
                        }
                        rows.push(row);
                    }

                    let stats = ctl.stats().expect("stats verb");
                    println!(
                        "[{tier}] server counters: {} conns, {} reqs, {} errors, {} batches \
                         ({} coalesced), {} fast-path, {} resident, {} steady allocs, \
                         cache {}/{} hits ({} entries, {} evicted)",
                        stats.connections,
                        stats.requests,
                        stats.errors,
                        stats.batches,
                        stats.batched_requests,
                        stats.fast_path_predicted,
                        stats.resident_plans,
                        stats.steady_allocs,
                        stats.cache_hits,
                        stats.cache_hits + stats.cache_misses,
                        stats.cache_entries,
                        stats.cache_evictions
                    );
                    ctl.shutdown().expect("clean shutdown");
                });
                println!("[{tier}] daemon stopped cleanly");
            }
        }
    }

    qpp_bench::load::write_serve_rows("BENCH_serve.json", &rows);
    if failed {
        std::process::exit(1);
    }
}
