//! Data-vector-size ablation (extension): sweeping `d`.
//!
//! The paper fixes the data-vector size at `d = 32` (§6) without an
//! ablation. This experiment sweeps `d ∈ {0, 4, 16, 32, 64}` — `d = 0`
//! disables the opaque data vectors entirely, leaving only the latency
//! channel flowing between units, which directly measures how much of
//! QPPNet's advantage comes from the learned inter-operator features.
//!
//! ```text
//! cargo run -p qpp-bench --release --bin dsweep -- --queries 800 --epochs 80
//! ```

use qpp_bench::{fmt_minutes, generate, render_table, ExpConfig};
use qpp_plansim::catalog::Workload;
use qppnet::{QppConfig, QppNet};
use std::time::Instant;

fn main() {
    let cfg = ExpConfig::from_args(ExpConfig { queries: 800, ..ExpConfig::default() });
    println!(
        "d-sweep (extension) — data-vector size ablation (queries={}, sf={}, epochs={}, seed={})\n",
        cfg.queries, cfg.scale_factor, cfg.qpp.epochs, cfg.seed
    );

    for workload in [Workload::TpcH, Workload::TpcDs] {
        let (ds, split) = generate(&cfg, workload);
        let train = ds.select(&split.train);
        let test = ds.select(&split.test);
        let actuals: Vec<f64> = test.iter().map(|p| p.latency_ms()).collect();

        let mut rows = Vec::new();
        for d in [0usize, 4, 16, 32, 64] {
            let qpp_cfg = QppConfig { data_size: d, ..cfg.qpp.clone() };
            let mut model = QppNet::new(qpp_cfg, &ds.catalog);
            let start = Instant::now();
            model.fit(&train);
            let secs = start.elapsed().as_secs_f64();
            let m = qppnet::evaluate(&actuals, &model.predict_batch(&test));
            rows.push(vec![
                format!("{d}"),
                format!("{:.1}", m.relative_error_pct()),
                fmt_minutes(m.mae_ms),
                format!("{:.0}", m.r_le_15 * 100.0),
                format!("{}", model.num_params()),
                format!("{secs:.1}"),
            ]);
        }
        println!(
            "{}",
            render_table(
                &format!(
                    "{} (train {} / test {})",
                    workload.name(),
                    split.train.len(),
                    split.test.len()
                ),
                &["d", "rel err (%)", "MAE (min)", "R≤1.5 (%)", "params", "train (s)"],
                &rows,
            )
        );
    }

    println!(
        "Expected shape: d = 0 (no opaque data vectors) measurably worse than\n\
         d ≥ 16; gains saturate near the paper's d = 32 while cost keeps rising."
    );
}
