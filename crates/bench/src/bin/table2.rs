//! Table 2 (Appendix B): the features used as inputs for the neural units,
//! with their encodings, as implemented by `qpp_plansim::features`.
//!
//! Prints the static feature specification plus the concrete vector sizes
//! for both catalogs (one-hot widths depend on table/index counts).

use qpp_bench::render_table;
use qpp_plansim::catalog::{Catalog, Workload};
use qpp_plansim::features::Featurizer;
use qpp_plansim::operators::OpKind;

fn main() {
    println!("Table 2 — QPP Net inputs\n");

    let spec = [
        ("Plan Width", "All", "Numeric", "Optimizer's estimate of the width of each output row"),
        ("Plan Rows", "All", "Numeric", "Optimizer's estimate of the output cardinality"),
        ("Plan Buffers", "All", "Numeric", "Optimizer's estimate of the memory requirements"),
        ("Estimated I/Os", "All", "Numeric", "Optimizer's estimate of the number of I/Os"),
        ("Total Cost", "All", "Numeric", "Optimizer cost for the operator plus its subtree"),
        ("Join Type", "Joins", "One-hot", "One of: semi, inner, anti, full"),
        ("Parent Relationship", "Joins", "One-hot", "When the child of a join: inner, outer, subquery"),
        ("Join Algorithm", "Joins", "One-hot", "Nested loop, hash or merge"),
        ("Hash Buckets", "Hash", "Numeric", "Number of hash buckets"),
        ("Hash Algorithm", "Hash", "One-hot", "Hashing algorithm used"),
        ("Sort Key", "Sort", "One-hot", "Key for the sort operator"),
        ("Sort Method", "Sort", "One-hot", "quicksort, top-N heapsort, external merge"),
        ("Relation Name", "All Scans", "One-hot", "Base relation of the leaf"),
        ("Attribute Mins", "All Scans", "Numeric", "Minimum values of relevant attributes"),
        ("Attribute Medians", "All Scans", "Numeric", "Median values of relevant attributes"),
        ("Attribute Maxs", "All Scans", "Numeric", "Maximum values of relevant attributes"),
        ("Index Name", "Index Scans", "One-hot", "Name of the index used"),
        ("Scan Direction", "Index Scans", "Boolean", "Forward or backward index traversal"),
        ("Strategy", "Aggregates", "One-hot", "One of: plain, sorted, hashed"),
        ("Partial Mode", "Aggregates", "Boolean", "Eligible for parallel partial aggregation"),
        ("Operator", "Aggregates", "One-hot", "Aggregation function: count, sum, avg, min, max"),
        ("Selectivity", "Filters", "Numeric", "Estimated selectivity of the predicate"),
        ("Parallelism", "Filters", "Boolean", "Whether the filter may run in parallel"),
    ];
    let rows: Vec<Vec<String>> = spec
        .iter()
        .map(|(f, ops, enc, desc)| {
            vec![f.to_string(), ops.to_string(), enc.to_string(), desc.to_string()]
        })
        .collect();
    println!(
        "{}",
        render_table("Feature specification", &["Feature", "Operators", "Encoding", "Description"], &rows)
    );

    for workload in [Workload::TpcH, Workload::TpcDs] {
        let cat = Catalog::for_workload(workload, 100.0);
        let fz = Featurizer::new(&cat);
        let rows: Vec<Vec<String>> = OpKind::ALL
            .iter()
            .map(|&k| {
                let numeric = fz.numeric_mask(k).iter().filter(|m| **m).count();
                vec![
                    k.name().to_string(),
                    fz.feature_size(k).to_string(),
                    numeric.to_string(),
                    (fz.feature_size(k) - numeric).to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!(
                    "{} feature vector sizes ({} tables, {} indexes)",
                    workload.name(),
                    cat.num_tables(),
                    cat.num_indexes()
                ),
                &["unit", "total size", "numeric (whitened)", "one-hot/boolean"],
                &rows,
            )
        );
    }
    println!(
        "Numeric features are signed-log compressed and whitened with training-set\n\
         statistics (zero mean, unit variance), reused at inference — as the paper\n\
         prescribes. Missing values are zero."
    );
}
