//! Figure 11: effect of the number of hidden layers on accuracy (relative
//! to 5 layers) and training time, at 128 neurons per layer.

use qpp_bench::{generate, render_table, ExpConfig};
use qpp_plansim::catalog::Workload;
use qppnet::{QppConfig, QppNet};

fn main() {
    let mut defaults = ExpConfig { queries: 500, ..ExpConfig::default() };
    defaults.qpp = QppConfig { epochs: 60, batch_size: 64, ..QppConfig::default() };
    let cfg = ExpConfig::from_args(defaults);
    println!(
        "Figure 11 — hidden-layer sweep (TPC-H, queries={}, epochs={}, seed={})\n",
        cfg.queries, cfg.qpp.epochs, cfg.seed
    );

    let (ds, split) = generate(&cfg, Workload::TpcH);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);

    let mut results = Vec::new();
    for layers in 1usize..=8 {
        let qpp_cfg = QppConfig { hidden_layers: layers, ..cfg.qpp.clone() };
        let mut model = QppNet::new(qpp_cfg, &ds.catalog);
        let history = model.fit(&train);
        let metrics = model.evaluate(&test);
        results.push((layers, metrics.mae_ms, history.total_seconds(), model.num_params()));
    }

    let reference = results
        .iter()
        .find(|(n, ..)| *n == 5)
        .map(|(_, mae, ..)| *mae)
        .expect("5-layer run present");

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(n, mae, secs, params)| {
            vec![
                n.to_string(),
                format!("{:.2}", reference / mae),
                format!("{secs:.1}"),
                params.to_string(),
            ]
        })
        .collect();

    println!(
        "{}",
        render_table(
            "Relative accuracy (MAE(5)/MAE(n)) and training time",
            &["hidden layers", "relative accuracy", "train (s)", "parameters"],
            &rows,
        )
    );
    println!(
        "Paper shape: accuracy climbs quickly up to ~5 layers, then plateaus\n\
         while each extra layer keeps adding ~2^14 weights of training cost."
    );
}
