//! Figures 9b and 9c: training convergence — test-set MAE after each
//! epoch, with the baselines' final MAE as horizontal reference lines.
//!
//! 9b is TPC-H, 9c is TPC-DS. The paper trains 1000 epochs; pass
//! `--epochs 1000` to reproduce that literally.

use qpp_baselines::rbf::RbfModel;
use qpp_baselines::svm::SvmModel;
use qpp_baselines::tam::TamModel;
use qpp_baselines::LatencyModel;
use qpp_bench::{generate, ExpConfig};
use qpp_plansim::catalog::Workload;
use qppnet::QppNet;

fn main() {
    let mut defaults = ExpConfig::default();
    defaults.qpp.epochs = 120;
    defaults.queries = 800;
    defaults.eval_every = 5;
    let cfg = ExpConfig::from_args(defaults);
    println!(
        "Figures 9b/9c — training convergence (queries={}, epochs={}, eval every {} epochs)\n",
        cfg.queries, cfg.qpp.epochs, cfg.eval_every
    );

    for (figure, workload) in [("9b", Workload::TpcH), ("9c", Workload::TpcDs)] {
        let (ds, split) = generate(&cfg, workload);
        let train = ds.select(&split.train);
        let test = ds.select(&split.test);
        let actual: Vec<f64> = test.iter().map(|p| p.latency_ms()).collect();

        // Baseline horizontal lines.
        let mae = |preds: &[f64]| {
            preds.iter().zip(&actual).map(|(p, a)| (p - a).abs()).sum::<f64>()
                / actual.len() as f64
                / 60_000.0
        };
        let mut tam = TamModel::new();
        tam.fit(&train);
        let mut svm = SvmModel::new(cfg.seed);
        svm.fit(&train);
        let mut rbf = RbfModel::new();
        rbf.fit(&train);
        let tam_mae = mae(&tam.predict_batch(&test));
        let svm_mae = mae(&svm.predict_batch(&test));
        let rbf_mae = mae(&rbf.predict_batch(&test));

        println!("== Figure {figure}: {} ==", workload.name());
        println!("baselines: TAM {tam_mae:.2} min | SVM {svm_mae:.2} min | RBF {rbf_mae:.2} min");

        let mut model = QppNet::new(cfg.qpp.clone(), &ds.catalog);
        let history = model.fit_tracked(&train, Some((&test, cfg.eval_every)));

        println!("{:>6}  {:>14}  {:>12}", "epoch", "QPPNet MAE(min)", "beats");
        let mut crossed_svm = false;
        let mut crossed_rbf = false;
        for (epoch, m) in &history.eval_trace {
            let q = m.mae_ms / 60_000.0;
            let mut beats = String::new();
            if q < svm_mae && !crossed_svm {
                beats.push_str("SVM! ");
                crossed_svm = true;
            }
            if q < rbf_mae && !crossed_rbf {
                beats.push_str("RBF!");
                crossed_rbf = true;
            }
            println!("{epoch:>6}  {q:>14.2}  {beats:>12}");
        }
        println!("total training time: {:.1}s\n", history.total_seconds());
    }
    println!(
        "Paper shape: classic inverse-exponential convergence; QPP Net crosses\n\
         below SVM early (paper: epoch ~150-250) and below RBF later (paper:\n\
         epoch ~250-350), then keeps improving slowly."
    );
}
