//! Figure 10: effect of the number of neurons per hidden layer on accuracy
//! (relative to the 128-neuron configuration) and training time.
//!
//! Sweeps {8, 16, 32, 64, 128, 256, 512, 1024} neurons with 5 hidden
//! layers, mirroring the paper. Relative accuracy is `MAE(128) / MAE(n)`
//! (1.0 at 128 neurons; higher is better).

use qpp_bench::{generate, render_table, ExpConfig};
use qpp_plansim::catalog::Workload;
use qppnet::{QppConfig, QppNet};

fn main() {
    let mut defaults = ExpConfig { queries: 500, ..ExpConfig::default() };
    defaults.qpp = QppConfig { epochs: 60, batch_size: 64, ..QppConfig::default() };
    let cfg = ExpConfig::from_args(defaults);
    println!(
        "Figure 10 — neurons-per-layer sweep (TPC-H, queries={}, epochs={}, seed={})\n",
        cfg.queries, cfg.qpp.epochs, cfg.seed
    );

    let (ds, split) = generate(&cfg, Workload::TpcH);
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);

    let sweep = [8usize, 16, 32, 64, 128, 256, 512, 1024];
    let mut results = Vec::new();
    for &neurons in &sweep {
        let qpp_cfg = QppConfig { hidden_units: neurons, ..cfg.qpp.clone() };
        let mut model = QppNet::new(qpp_cfg, &ds.catalog);
        let history = model.fit(&train);
        let metrics = model.evaluate(&test);
        results.push((neurons, metrics.mae_ms, history.total_seconds(), model.num_params()));
    }

    let reference = results
        .iter()
        .find(|(n, ..)| *n == 128)
        .map(|(_, mae, ..)| *mae)
        .expect("128-neuron run present");

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(n, mae, secs, params)| {
            vec![
                n.to_string(),
                format!("{:.2}", reference / mae),
                format!("{secs:.1}"),
                params.to_string(),
            ]
        })
        .collect();

    println!(
        "{}",
        render_table(
            "Relative accuracy (MAE(128)/MAE(n)) and training time",
            &["neurons", "relative accuracy", "train (s)", "parameters"],
            &rows,
        )
    );
    println!(
        "Paper shape: tiny networks (8 neurons) train fast but reach a small\n\
         fraction of the 128-neuron accuracy; very large ones (1024) cost ~4x\n\
         the training time for <1% accuracy gain."
    );
}
