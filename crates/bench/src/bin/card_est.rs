//! Extension experiment (paper §7): integrating a learned cardinality
//! estimator into QPPNet's neural-unit inputs.
//!
//! The paper observes that learned cardinality estimation "could be easily
//! integrated into our deep neural network by inserting the cardinality
//! estimate of each operator into its neural unit's input vector". This
//! binary tests that claim: it attaches simulated learned estimators of
//! varying quality (lognormal error width σ around the true cardinality)
//! and measures QPPNet's accuracy with each.
//!
//! Expectation: accuracy improves monotonically as the estimator improves,
//! with most of the benefit already at realistic σ ≈ 0.3.

use qpp_bench::{generate, render_table, ExpConfig};
use qpp_plansim::cardest::inject_learned_cardinalities;
use qpp_plansim::catalog::Workload;
use qpp_plansim::features::Featurizer;
use qppnet::QppNet;
use rand::SeedableRng;

fn main() {
    let mut defaults = ExpConfig { queries: 800, ..ExpConfig::default() };
    defaults.qpp.epochs = 100;
    defaults.qpp.batch_size = 128;
    let cfg = ExpConfig::from_args(defaults);
    println!(
        "Extension (paper §7) — learned cardinality estimates as unit inputs\n\
         (TPC-H, queries={}, epochs={}, seed={})\n",
        cfg.queries, cfg.qpp.epochs, cfg.seed
    );

    let (base_ds, split) = generate(&cfg, Workload::TpcH);

    // Variants: no estimator (paper baseline), then estimators of
    // decreasing error. σ = 0.3 matches published learned-estimator
    // accuracy; σ = 0 is a perfect oracle.
    let variants: [(&str, Option<f64>); 4] =
        [("none (baseline)", None), ("learned σ=0.5", Some(0.5)), ("learned σ=0.3", Some(0.3)), ("oracle σ=0.0", Some(0.0))];

    let mut rows = Vec::new();
    for (label, sigma) in variants {
        let mut ds = base_ds.clone();
        let featurizer = match sigma {
            Some(s) => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xca4d);
                for p in &mut ds.plans {
                    inject_learned_cardinalities(&mut p.root, s, &mut rng);
                }
                Featurizer::with_learned_cardinalities(&ds.catalog)
            }
            None => Featurizer::new(&ds.catalog),
        };
        let train = ds.select(&split.train);
        let test = ds.select(&split.test);

        let start = std::time::Instant::now();
        let mut model = QppNet::with_featurizer(cfg.qpp.clone(), featurizer);
        model.fit(&train);
        let metrics = model.evaluate(&test);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", metrics.relative_error_pct()),
            format!("{:.2}", metrics.mae_minutes()),
            format!("{:.0}%", metrics.r_le_15 * 100.0),
            format!("{:.0}", start.elapsed().as_secs_f64()),
        ]);
    }

    println!(
        "{}",
        render_table(
            "QPPNet accuracy vs. cardinality-estimator quality",
            &["estimator", "rel. error (%)", "MAE (min)", "R<=1.5", "train (s)"],
            &rows,
        )
    );
    println!(
        "Expected shape: accuracy improves as the injected estimator improves;\n\
         the network learns how much to trust the extra input (paper §7)."
    );
}
