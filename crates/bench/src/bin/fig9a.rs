//! Figure 9a: impact of the §5.1 training optimizations on training time.
//!
//! Trains QPPNet to a fixed epoch budget under each of the four
//! optimization modes (None / Batching / Shared info / Both) on both
//! workloads and reports wall-clock training time. The four modes compute
//! *identical* gradients (asserted by the test suite), so accuracy is
//! unchanged; only time differs.

use qpp_bench::{generate, render_table, ExpConfig};
use qpp_plansim::catalog::Workload;
use qppnet::{OptMode, QppConfig, QppNet};

fn main() {
    let mut defaults = ExpConfig { queries: 300, ..ExpConfig::default() };
    defaults.qpp = QppConfig { epochs: 5, batch_size: 128, ..QppConfig::default() };
    let cfg = ExpConfig::from_args(defaults);
    println!(
        "Figure 9a — training-time impact of the Section 5.1 optimizations\n\
         (queries={}, epochs={}, batch={}, seed={})\n",
        cfg.queries, cfg.qpp.epochs, cfg.qpp.batch_size, cfg.seed
    );

    let mut rows = Vec::new();
    for workload in [Workload::TpcH, Workload::TpcDs] {
        let (ds, split) = generate(&cfg, workload);
        let train = ds.select(&split.train);
        let mut row = vec![workload.name().to_string()];
        let mut baseline = None;
        for mode in OptMode::ALL {
            let mut qpp_cfg = cfg.qpp.clone();
            qpp_cfg.opt_mode = mode;
            let mut model = QppNet::new(qpp_cfg, &ds.catalog);
            let history = model.fit(&train);
            let secs = history.total_seconds();
            baseline.get_or_insert(secs);
            row.push(format!("{secs:.1}s ({:.1}x)", baseline.unwrap() / secs));
        }
        rows.push(row);
    }

    println!(
        "{}",
        render_table(
            "Wall-clock training time per optimization mode (speedup vs None)",
            &["workload", "None", "Batching", "Shared info", "Both"],
            &rows,
        )
    );
    println!(
        "Paper shape: information sharing is the bigger win (paper: >1 week -> ~3\n\
         days); both optimizations together give the fastest training (~24h in\n\
         the paper's setup, nearly an order of magnitude total)."
    );
}
