//! # qpp-bench — experiment harness for the QPPNet reproduction
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! experiment index). This library holds the shared machinery: experiment
//! configuration (with CLI-flag parsing), the four-model comparison runner,
//! and plain-text table/series rendering.
//!
//! All binaries accept:
//!
//! ```text
//! --queries N      queries per workload        (default varies per figure)
//! --sf F           scale factor                (default 100, as the paper)
//! --epochs N       QPPNet training epochs      (default varies per figure)
//! --seed N         master seed                 (default 42)
//! --eval-every N   epochs between eval points  (fig9bc only)
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod load;

use qpp_baselines::rbf::RbfModel;
use qpp_baselines::svm::SvmModel;
use qpp_baselines::tam::TamModel;
use qpp_baselines::LatencyModel;
use qpp_plansim::catalog::Workload;
use qpp_plansim::dataset::{Dataset, Split};
use qpp_plansim::plan::Plan;
use qppnet::{Metrics, QppConfig, QppNet};
use std::time::Instant;

/// Shared experiment parameters, parseable from CLI flags.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Queries generated per workload.
    pub queries: usize,
    /// Scale factor (paper: 100).
    pub scale_factor: f64,
    /// QPPNet hyper-parameters.
    pub qpp: QppConfig,
    /// Master seed (workload generation, splits, model seeds).
    pub seed: u64,
    /// Epochs between convergence-trace evaluations.
    pub eval_every: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            queries: 1_500,
            scale_factor: 100.0,
            // The harness defaults to Adam (the paper's §8 future-work
            // optimizer): at laptop scale (thousands of queries instead of
            // 20,000, ~100 epochs instead of 1000) SGD is far from
            // converged, while Adam reaches the paper's qualitative shapes
            // within the default budget. `--opt sgd` reproduces the
            // paper's optimizer literally; the *library* default
            // (`QppConfig::default`) remains SGD as the paper specifies.
            qpp: QppConfig { optimizer: qppnet::OptimizerKind::Adam, ..QppConfig::default() },
            seed: 42,
            eval_every: 5,
        }
    }
}

impl ExpConfig {
    /// Parses `--flag value` style arguments over defaults.
    ///
    /// Unknown flags abort with a usage message.
    pub fn from_args(defaults: ExpConfig) -> ExpConfig {
        let mut cfg = defaults;
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = args.get(i + 1).unwrap_or_else(|| usage(flag));
            match flag {
                "--queries" => cfg.queries = value.parse().unwrap_or_else(|_| usage(flag)),
                "--sf" => cfg.scale_factor = value.parse().unwrap_or_else(|_| usage(flag)),
                "--epochs" => cfg.qpp.epochs = value.parse().unwrap_or_else(|_| usage(flag)),
                "--seed" => cfg.seed = value.parse().unwrap_or_else(|_| usage(flag)),
                "--eval-every" => cfg.eval_every = value.parse().unwrap_or_else(|_| usage(flag)),
                "--batch" => cfg.qpp.batch_size = value.parse().unwrap_or_else(|_| usage(flag)),
                "--lr" => cfg.qpp.learning_rate = value.parse().unwrap_or_else(|_| usage(flag)),
                "--threads" => cfg.qpp.threads = value.parse().unwrap_or_else(|_| usage(flag)),
                "--opt" => {
                    cfg.qpp.optimizer = match value.as_str() {
                        "sgd" => qppnet::OptimizerKind::Sgd,
                        "adam" => qppnet::OptimizerKind::Adam,
                        _ => usage(flag),
                    }
                }
                _ => usage(flag),
            }
            i += 2;
        }
        cfg.qpp.seed = cfg.seed;
        cfg
    }
}

fn usage(flag: &str) -> ! {
    eprintln!(
        "unrecognized or malformed flag {flag}\n\
         flags: --queries N  --sf F  --epochs N  --seed N  --eval-every N  --batch N  --lr F  --threads N"
    );
    std::process::exit(2);
}

/// Result of training + evaluating one model.
#[derive(Debug, Clone)]
pub struct ModelRun {
    /// Display name.
    pub name: &'static str,
    /// Test-set metrics.
    pub metrics: Metrics,
    /// Per-query predictions (test order).
    pub predictions: Vec<f64>,
    /// Per-query actual latencies (test order).
    pub actuals: Vec<f64>,
    /// Wall-clock training seconds.
    pub train_seconds: f64,
}

/// Generates the dataset + paper split for a workload.
pub fn generate(cfg: &ExpConfig, workload: Workload) -> (Dataset, Split) {
    let ds = Dataset::generate(workload, cfg.scale_factor, cfg.queries, cfg.seed);
    let split = ds.paper_split(cfg.seed ^ 0x5eed);
    (ds, split)
}

/// Trains and evaluates all four models (TAM, SVM, RBF, QPP Net) on a
/// prepared dataset/split, in the paper's reporting order.
pub fn run_all_models(cfg: &ExpConfig, ds: &Dataset, split: &Split) -> Vec<ModelRun> {
    let train = ds.select(&split.train);
    let test = ds.select(&split.test);
    let actuals: Vec<f64> = test.iter().map(|p| p.latency_ms()).collect();

    let mut runs = Vec::with_capacity(4);

    let mut tam = TamModel::new();
    runs.push(run_model("TAM", &mut tam, &train, &test, &actuals));

    let mut svm = SvmModel::new(cfg.seed);
    runs.push(run_model("SVM", &mut svm, &train, &test, &actuals));

    let mut rbf = RbfModel::new();
    runs.push(run_model("RBF", &mut rbf, &train, &test, &actuals));

    let start = Instant::now();
    let mut qpp = QppNet::new(cfg.qpp.clone(), &ds.catalog);
    qpp.fit(&train);
    let train_seconds = start.elapsed().as_secs_f64();
    let predictions = qpp.predict_batch(&test);
    let metrics = qppnet::evaluate(&actuals, &predictions);
    runs.push(ModelRun {
        name: "QPP Net",
        metrics,
        predictions,
        actuals: actuals.clone(),
        train_seconds,
    });

    runs
}

fn run_model(
    name: &'static str,
    model: &mut dyn LatencyModel,
    train: &[&Plan],
    test: &[&Plan],
    actuals: &[f64],
) -> ModelRun {
    let start = Instant::now();
    model.fit(train);
    let train_seconds = start.elapsed().as_secs_f64();
    let predictions = model.predict_batch(test);
    let metrics = qppnet::evaluate(actuals, &predictions);
    ModelRun { name, metrics, predictions, actuals: actuals.to_vec(), train_seconds }
}

/// Renders a plain-text table: header row + rows of cells.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let line = |cells: &[String], widths: &[usize]| -> String {
        let mut s = String::new();
        for (c, w) in cells.iter().zip(widths) {
            s.push_str(&format!("{c:>w$}  ", w = w));
        }
        s.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&line(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats milliseconds as minutes with two decimals.
pub fn fmt_minutes(ms: f64) -> String {
    format!("{:.2}", ms / 60_000.0)
}

/// Machine-readable benchmark artifacts (`BENCH_infer.json` /
/// `BENCH_train.json`): the criterion bench mains convert the vendored
/// harness's measurement records into [`bench_json::BenchRow`]s and persist them, so
/// the perf trajectory is recorded as data across PRs instead of living
/// only in README tables.
pub mod bench_json {
    use serde::Serialize;

    /// One benchmark measurement, flattened for the JSON artifact.
    #[derive(Debug, Clone, Serialize)]
    pub struct BenchRow {
        /// Model tier axis of the bench group (`edge`, `paper`) or the
        /// tier-independent group name (`pool`, `oneshot`).
        pub tier: String,
        /// Row name within the tier (e.g. `program_precompiled_t1`).
        pub name: String,
        /// Mean wall-clock nanoseconds per iteration.
        pub ns_per_iter: u64,
        /// Kernel dispatch tier the run executed under
        /// (`qpp_nn::KernelTier::current().name()`).
        pub kernel_tier: String,
        /// Worker thread count of the row (parsed from a `_t<N>` suffix;
        /// 1 where the row has no thread axis).
        pub threads: usize,
    }

    /// Parses a harness label (`file/tier/name/param`) into a row, with
    /// the kernel tier stamped from the current process dispatch. Labels
    /// with fewer than three `/` segments are skipped (returns `None`).
    pub fn row_from_label(label: &str, ns_per_iter: u64) -> Option<BenchRow> {
        let mut parts = label.splitn(4, '/');
        let _file = parts.next()?;
        let tier = parts.next()?;
        let name = parts.next()?;
        let threads = name
            .rsplit_once("_t")
            .and_then(|(_, n)| n.parse::<usize>().ok())
            .unwrap_or(1);
        Some(BenchRow {
            tier: tier.to_string(),
            name: name.to_string(),
            ns_per_iter,
            kernel_tier: qpp_nn::KernelTier::current().name().to_string(),
            threads,
        })
    }

    /// Writes the rows as a JSON array, one object per line (so the
    /// committed artifact diffs row-by-row across PRs). Bare file names
    /// are anchored at the workspace root — `cargo bench` runs with the
    /// package directory as cwd, and the artifact belongs next to
    /// README's tables, not inside `crates/bench/`.
    ///
    /// # Panics
    /// Panics if the file cannot be written — a bench artifact silently
    /// missing is worse than a failed bench run.
    pub fn write(file_name: &str, rows: &[BenchRow]) {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(file_name);
        let mut json = String::from("[\n");
        for (i, row) in rows.iter().enumerate() {
            json.push_str("  ");
            json.push_str(&serde_json::to_string(row).expect("bench row serializes"));
            if i + 1 < rows.len() {
                json.push(',');
            }
            json.push('\n');
        }
        json.push_str("]\n");
        std::fs::write(&path, json)
            .unwrap_or_else(|e| panic!("cannot write bench artifact {}: {e}", path.display()));
        println!("wrote {} rows to {}", rows.len(), path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_runs_end_to_end_on_a_small_workload() {
        let cfg = ExpConfig {
            queries: 60,
            scale_factor: 1.0,
            qpp: QppConfig { epochs: 5, ..QppConfig::tiny() },
            seed: 1,
            eval_every: 2,
        };
        let (ds, split) = generate(&cfg, Workload::TpcH);
        let runs = run_all_models(&cfg, &ds, &split);
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0].name, "TAM");
        assert_eq!(runs[3].name, "QPP Net");
        for r in &runs {
            assert_eq!(r.predictions.len(), split.test.len());
            assert!(r.metrics.relative_error.is_finite());
        }
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let t = render_table(
            "demo",
            &["model", "err"],
            &[vec!["TAM".into(), "1.0".into()], vec!["QPP Net".into(), "0.5".into()]],
        );
        assert!(t.contains("demo"));
        assert!(t.contains("QPP Net"));
    }
}
