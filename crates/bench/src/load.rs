//! Load generation against a running `qpp serve` daemon: open-loop
//! fixed-rate and closed-loop drivers, Zipfian template skew, drop
//! accounting at saturation, and HDR-style fixed-bucket latency
//! histograms — all with zero dependencies beyond the vendored stubs.
//!
//! Design points:
//!
//! * **Deterministic schedules.** The request schedule — which template
//!   fires at which nanosecond offset — is a pure function of
//!   `(seed, rate, request count, template count, skew)`
//!   ([`schedule`]), so a run is replayable and the determinism test can
//!   assert byte-equality across invocations. Wall-clock only enters
//!   when the schedule meets a socket.
//! * **Open loop measures what users feel.** Latency is measured from
//!   the request's *scheduled* arrival, not from when the client finally
//!   got around to sending it — so queueing delay under saturation shows
//!   up in the percentiles instead of being silently hidden (the
//!   coordinated-omission trap). A request more than `timeout` behind
//!   schedule is **dropped** (counted, never sent), modeling a shedding
//!   client.
//! * **Mergeable histograms.** [`Histogram`] is a log-linear fixed-size
//!   bucket array (16 sub-buckets per power of two, ≤ 1/16 relative
//!   error, values up to `u64::MAX` ns). Merging adds bucket counts, so
//!   it is associative and commutative — per-connection histograms merge
//!   into one report in any order (property-tested).

use std::io::Write as _;
use std::time::{Duration, Instant};

use qpp_plansim::plan::PlanNode;
use qppnet::serve::{Client, ClientError, ServeAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

// --- histogram -------------------------------------------------------------

/// Sub-buckets per power of two: 2^4 = 16 (≤ 1/16 relative error).
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// 16 exact low buckets + 16 sub-buckets for each exponent 4..=63.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// HDR-style log-linear latency histogram over `u64` nanosecond values.
///
/// Fixed 976-bucket layout: values below 16 are exact; above, each
/// power-of-two range splits into 16 linear sub-buckets, so any recorded
/// value is reproduced to within 1/16 relative error. Bucket counts are
/// plain `u64`s and [`Histogram::merge`] adds them elementwise, making
/// merge order-independent by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { counts: vec![0; BUCKETS], total: 0, max: 0 }
    }

    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            v as usize
        } else {
            let b = 63 - v.leading_zeros(); // 2^b <= v, b >= 4
            let sub = (v >> (b - SUB_BITS)) as usize - SUB;
            SUB + (b - SUB_BITS) as usize * SUB + sub
        }
    }

    /// The largest value mapping to bucket `idx` (the reported
    /// representative, so quantiles are conservative).
    fn value_at(idx: usize) -> u64 {
        if idx < SUB {
            idx as u64
        } else {
            let rel = idx - SUB;
            let sub = (rel % SUB) as u64;
            let scale = (rel / SUB) as u32;
            ((SUB as u64 + sub) << scale) + ((1u64 << scale) - 1)
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
    }

    /// Recorded value count.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]` (bucket upper bound,
    /// clamped to the exact recorded max). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::value_at(idx).min(self.max);
            }
        }
        self.max
    }

    /// Adds `other`'s counts into `self`. Elementwise addition —
    /// commutative and associative, so any merge tree yields the same
    /// histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

// --- workload --------------------------------------------------------------

/// Zipfian sampler over `n` ranks with exponent `s` (rank 0 hottest).
///
/// Precomputes the CDF once; sampling is one uniform draw plus a binary
/// search, fully determined by the caller's RNG.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over ranks `0..n` with skew `s` (`0.0` = uniform;
    /// `0.99` is the classic YCSB default).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over zero ranks");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let norm = acc;
        for c in &mut cdf {
            *c /= norm;
        }
        Zipf { cdf }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Driving mode for [`run_load`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Open loop: requests fire at a fixed rate regardless of replies
    /// (arrival times are scheduled up front; late ⇒ queueing latency,
    /// very late ⇒ drop).
    Open {
        /// Target aggregate request rate (requests/second).
        rate_hz: f64,
    },
    /// Closed loop: each connection keeps exactly one request in flight
    /// (throughput = what the server sustains).
    Closed,
}

/// One scheduled request: nanosecond offset from run start (0 in closed
/// loop) and the template rank to send.
pub type ScheduledReq = (u64, usize);

/// The full deterministic request schedule for a run: template ranks
/// drawn Zipf(`s`)-skewed from `seed`, arrival offsets spaced exactly
/// `1e9 / rate_hz` nanoseconds apart in open loop (all zero in closed
/// loop). Identical inputs yield an identical schedule — this is the
/// replayability contract the determinism test pins.
pub fn schedule(
    mode: LoadMode,
    requests: usize,
    templates: usize,
    zipf_s: f64,
    seed: u64,
) -> Vec<ScheduledReq> {
    let zipf = Zipf::new(templates, zipf_s);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_10AD);
    (0..requests)
        .map(|i| {
            let at_ns = match mode {
                LoadMode::Open { rate_hz } => (i as f64 * 1e9 / rate_hz) as u64,
                LoadMode::Closed => 0,
            };
            (at_ns, zipf.sample(&mut rng))
        })
        .collect()
}

/// Parameters for one load run against a live daemon.
#[derive(Debug, Clone)]
pub struct LoadSpec<'a> {
    /// Daemon endpoint.
    pub addr: ServeAddr,
    /// Plan templates; requests draw from these Zipf-skewed by rank.
    pub templates: &'a [PlanNode],
    /// Open- or closed-loop driving.
    pub mode: LoadMode,
    /// Client connections (each gets its own socket + thread).
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Zipf skew over templates (0 = uniform, 0.99 = YCSB default).
    pub zipf_s: f64,
    /// Schedule + sampling seed.
    pub seed: u64,
    /// Per-request reply timeout; in open loop also the shed bound (a
    /// request this far behind schedule is dropped unsent).
    pub timeout: Duration,
    /// Adversarial all-distinct mode: every request perturbs its
    /// template's root estimate by the (globally unique) schedule index,
    /// so no two plans in the run share a whole-plan key — the server's
    /// prediction memo can never hit. Measures the memo's probe+insert
    /// overhead with the skew defeated.
    pub unique: bool,
}

/// Outcome of one [`run_load`] call.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Latency histogram over completed requests (nanoseconds).
    pub hist: Histogram,
    /// Requests actually written to a socket.
    pub sent: u64,
    /// Requests that got a successful reply.
    pub completed: u64,
    /// Requests shed (behind schedule) or timed out awaiting a reply.
    pub dropped: u64,
    /// Structured server errors + transport failures.
    pub errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Requests per template rank (shows the realized skew).
    pub template_counts: Vec<u64>,
}

impl LoadReport {
    /// Completed requests per second of wall clock.
    pub fn achieved_rate_hz(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// Quantile in microseconds (convenience for tables/artifacts).
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.hist.quantile(q) / 1_000
    }
}

struct WorkerResult {
    hist: Histogram,
    sent: u64,
    completed: u64,
    dropped: u64,
    errors: u64,
}

/// Drives the daemon at `spec` and reports latency/drop accounting.
///
/// The schedule is computed once ([`schedule`]) and partitioned
/// round-robin across connections; each connection thread sends
/// one-shot `admit_predict` requests (`keep=false`) over its own
/// blocking [`Client`]. In open loop, latency is measured from the
/// scheduled arrival (coordinated-omission-safe); a reply timeout
/// counts as a drop and the connection reopens.
pub fn run_load(spec: &LoadSpec<'_>) -> LoadReport {
    assert!(!spec.templates.is_empty(), "no templates to drive");
    assert!(spec.connections > 0, "need at least one connection");
    let sched = schedule(spec.mode, spec.requests, spec.templates.len(), spec.zipf_s, spec.seed);
    let mut template_counts = vec![0u64; spec.templates.len()];
    for &(_, t) in &sched {
        template_counts[t] += 1;
    }

    let started = Instant::now();
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.connections)
            .map(|c| {
                let sched = &sched;
                scope.spawn(move || drive_connection(spec, sched, c, started))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load worker panicked")).collect()
    });
    let elapsed = started.elapsed();

    let mut report = LoadReport {
        hist: Histogram::new(),
        sent: 0,
        completed: 0,
        dropped: 0,
        errors: 0,
        elapsed,
        template_counts,
    };
    for r in &results {
        report.hist.merge(&r.hist);
        report.sent += r.sent;
        report.completed += r.completed;
        report.dropped += r.dropped;
        report.errors += r.errors;
    }
    report
}

fn drive_connection(
    spec: &LoadSpec<'_>,
    sched: &[ScheduledReq],
    conn_idx: usize,
    started: Instant,
) -> WorkerResult {
    let mut out =
        WorkerResult { hist: Histogram::new(), sent: 0, completed: 0, dropped: 0, errors: 0 };
    let mut client = match connect(spec) {
        Some(c) => c,
        None => {
            out.errors += sched.len().div_ceil(spec.connections) as u64;
            return out;
        }
    };
    for (i, &(at_ns, template)) in sched.iter().enumerate() {
        if i % spec.connections != conn_idx {
            continue;
        }
        let at = Duration::from_nanos(at_ns);
        if let LoadMode::Open { .. } = spec.mode {
            let now = started.elapsed();
            if now < at {
                std::thread::sleep(at - now);
            } else if now > at + spec.timeout {
                // Hopelessly behind schedule: shed without sending.
                out.dropped += 1;
                continue;
            }
        }
        let t0 = match spec.mode {
            // Open loop: clock from the *scheduled* arrival so queueing
            // delay lands in the histogram.
            LoadMode::Open { .. } => at,
            LoadMode::Closed => started.elapsed(),
        };
        out.sent += 1;
        let plan_storage;
        let plan = if spec.unique {
            // All-distinct plans: bump the root's estimated cardinality
            // by this request's schedule index (unique across
            // connections), which lands in the node content key and so
            // defeats any exact-match reuse downstream.
            let mut p = spec.templates[template].clone();
            p.est.rows += (i + 1) as f64;
            plan_storage = p;
            &plan_storage
        } else {
            &spec.templates[template]
        };
        match client.admit_predict(plan, false) {
            Ok((_, latency)) => {
                debug_assert!(latency.is_finite());
                let ns = started.elapsed().saturating_sub(t0).as_nanos().min(u64::MAX as u128);
                out.hist.record(ns as u64);
                out.completed += 1;
            }
            Err(ClientError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Reply timeout: the pipe now holds a stale reply, so
                // reopen the connection before the next request.
                out.dropped += 1;
                match connect(spec) {
                    Some(c) => client = c,
                    None => {
                        out.errors += 1;
                        return out;
                    }
                }
            }
            Err(_) => out.errors += 1,
        }
    }
    out
}

fn connect(spec: &LoadSpec<'_>) -> Option<Client> {
    let mut client = Client::connect(&spec.addr).ok()?;
    client.set_timeout(Some(spec.timeout)).ok()?;
    Some(client)
}

// --- artifact --------------------------------------------------------------

/// One `BENCH_serve.json` row: a single (tier, mode, rate) load run.
#[derive(Debug, Clone, Serialize)]
pub struct ServeRow {
    /// Model tier (`edge`, `paper`).
    pub tier: String,
    /// `open` or `closed`.
    pub mode: String,
    /// Open-loop target rate in req/s (0 for closed loop).
    pub target_rate_hz: f64,
    /// Client connections.
    pub connections: usize,
    /// Requests completing per wall-clock second.
    pub achieved_rate_hz: f64,
    /// Requests sent.
    pub sent: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed or timed out.
    pub dropped: u64,
    /// Server/transport errors.
    pub errors: u64,
    /// Latency percentiles, microseconds (open loop: from scheduled
    /// arrival — includes queueing delay).
    pub p50_us: u64,
    /// 95th percentile latency (µs).
    pub p95_us: u64,
    /// 99th percentile latency (µs).
    pub p99_us: u64,
    /// 99.9th percentile latency (µs).
    pub p999_us: u64,
    /// Kernel dispatch tier of the serving process.
    pub kernel_tier: String,
    /// Whether the daemon's zero-allocation fast path was enabled for
    /// this run (`ServeConfig::fast_path`, burst permitting).
    pub fast_path: bool,
    /// Whether the daemon's whole-plan prediction memo was enabled for
    /// this run (`ServeConfig::cache`).
    pub cache: bool,
    /// Fraction of the daemon's memo probes that hit *during this run*
    /// (from the server's stats delta; 0.0 with the memo off).
    pub cache_hit_rate: f64,
    /// Zipf skew the template draw used (0 = uniform).
    pub zipf_s: f64,
    /// Whether the run used the all-distinct adversarial mode
    /// (`LoadSpec::unique`).
    pub unique: bool,
    /// Logical cores of the benching host (0 when undetectable) —
    /// provenance for cross-host row comparisons.
    pub cpu_cores: usize,
    /// `git describe --always --dirty` of the benched tree, so
    /// before/after rows in one artifact are attributable.
    pub git: String,
}

/// `git describe --always --dirty` of the workspace tree, or
/// `"unknown"` when git is unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

impl ServeRow {
    /// Flattens a report into an artifact row.
    pub fn from_report(
        tier: &str,
        spec: &LoadSpec<'_>,
        report: &LoadReport,
        fast_path: bool,
        cache: bool,
        cache_hit_rate: f64,
    ) -> ServeRow {
        let (mode, target_rate_hz) = match spec.mode {
            LoadMode::Open { rate_hz } => ("open", rate_hz),
            LoadMode::Closed => ("closed", 0.0),
        };
        ServeRow {
            tier: tier.to_string(),
            mode: mode.to_string(),
            target_rate_hz,
            connections: spec.connections,
            achieved_rate_hz: report.achieved_rate_hz(),
            sent: report.sent,
            completed: report.completed,
            dropped: report.dropped,
            errors: report.errors,
            p50_us: report.quantile_us(0.50),
            p95_us: report.quantile_us(0.95),
            p99_us: report.quantile_us(0.99),
            p999_us: report.quantile_us(0.999),
            kernel_tier: qpp_nn::KernelTier::current().name().to_string(),
            fast_path,
            cache,
            cache_hit_rate,
            zipf_s: spec.zipf_s,
            unique: spec.unique,
            cpu_cores: std::thread::available_parallelism().map(usize::from).unwrap_or(0),
            git: git_describe(),
        }
    }
}

/// Writes `BENCH_serve.json`-style rows (one JSON object per line,
/// anchored at the workspace root like
/// [`bench_json::write`](crate::bench_json::write)).
///
/// # Panics
/// Panics if the file cannot be written.
pub fn write_serve_rows(file_name: &str, rows: &[ServeRow]) {
    if let Some(row) = rows.iter().find(|r| r.git.ends_with("-dirty")) {
        eprintln!(
            "warning: recording benchmark rows from a dirty tree ({}); \
             commit first so before/after rows stay attributable",
            row.git
        );
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(file_name);
    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str("  ");
        json.push_str(&serde_json::to_string(row).expect("serve row serializes"));
        if i + 1 < rows.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("]\n");
    let mut f = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot write serve artifact {}: {e}", path.display()));
    f.write_all(json.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write serve artifact {}: {e}", path.display()));
    println!("wrote {} rows to {}", rows.len(), path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn histogram_buckets_are_tight_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn histogram_relative_error_is_bounded() {
        for &v in &[17u64, 1_000, 123_456, 987_654_321, u64::MAX / 3] {
            let mut h = Histogram::new();
            h.record(v);
            let q = h.quantile(0.5);
            assert!(q >= v, "representative {q} below recorded {v}");
            assert!(
                (q - v) as f64 <= v as f64 / 16.0 + 1.0,
                "bucket error too large: {v} -> {q}"
            );
        }
    }

    #[test]
    fn histogram_quantiles_walk_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1ms .. 1s in µs-ish units
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((450_000..=550_000).contains(&p50), "p50 = {p50}");
        assert!((930_000..=1_000_000).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(1.0) == 1_000_000);
    }

    #[test]
    fn schedule_is_deterministic_across_runs() {
        let a = schedule(LoadMode::Open { rate_hz: 1000.0 }, 500, 20, 0.99, 42);
        let b = schedule(LoadMode::Open { rate_hz: 1000.0 }, 500, 20, 0.99, 42);
        assert_eq!(a, b, "seeded schedule must be identical across runs");
        let c = schedule(LoadMode::Open { rate_hz: 1000.0 }, 500, 20, 0.99, 43);
        assert_ne!(a, c, "different seeds must differ");
        // Open-loop spacing is exact: 1 kHz = 1 ms apart.
        assert_eq!(a[0].0, 0);
        assert_eq!(a[1].0, 1_000_000);
        assert_eq!(a[499].0, 499_000_000);
    }

    #[test]
    fn zipf_skew_concentrates_on_head_ranks() {
        let zipf = Zipf::new(50, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; 50];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[40]);
        // Head heaviness: rank 0 alone should beat the entire tail half.
        let tail: u64 = counts[25..].iter().sum();
        assert!(counts[0] > tail / 2, "head {} vs tail {}", counts[0], tail);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Merging per-worker histograms is order-independent: any
        /// permutation of parts yields identical buckets and quantiles.
        #[test]
        fn histogram_merge_is_order_independent(
            parts in prop::collection::vec(
                prop::collection::vec(0u64..10_000_000_000, 0..40), 1..6),
            rot in 0usize..6,
        ) {
            let hs: Vec<Histogram> = parts.iter().map(|vals| {
                let mut h = Histogram::new();
                for &v in vals { h.record(v); }
                h
            }).collect();
            let mut fwd = Histogram::new();
            for h in &hs { fwd.merge(h); }
            // Rotate + reverse: a genuinely different merge order.
            let mut rev = Histogram::new();
            let k = rot % hs.len();
            for h in hs[k..].iter().chain(hs[..k].iter()).rev() { rev.merge(h); }
            prop_assert_eq!(&fwd, &rev);
            for &q in &[0.5, 0.95, 0.99, 0.999] {
                prop_assert_eq!(fwd.quantile(q), rev.quantile(q));
            }
        }

        /// Bucket invariant: every recorded value maps to a bucket whose
        /// representative is >= the value and within 1/16 relative error.
        #[test]
        fn histogram_bucket_error_bound(v in any::<u64>()) {
            let mut h = Histogram::new();
            h.record(v);
            let q = h.quantile(1.0);
            prop_assert!(q >= v);
            prop_assert!((q - v) as f64 <= v as f64 / 16.0 + 1.0);
        }
    }
}
