//! Training-epoch throughput: the differentiable wavefront engine
//! (`ProgramTape`, one gemm per operator family per wavefront across the
//! whole batch) versus per-equivalence-class `TreeBatch` gradients on the
//! same *mixed-shape* plan stream the serving benches use.
//!
//! The stream interleaves TPC-H and TPC-DS plans (each workload trained
//! by its own model — featurizers are catalog-specific), ≥ 256
//! heterogeneous plans. On such a mix the per-class path fragments into
//! ~58 structural classes: every operator position of every class costs
//! one small forward gemm plus an `MlpCache` allocation, and three more
//! small gemms on the way back. The wavefront tape batches all classes'
//! rows together in both directions and runs them through the fused
//! (AVX2+FMA where available) serving kernel. Two model tiers:
//!
//! * **edge** — `QppConfig::tiny()`-sized units (2×32 hidden, d = 8),
//!   where per-position overhead dominates (the acceptance bar: ≥ 1.5x
//!   single-thread epoch speedup lives here);
//! * **paper** — the paper's 5×128 units (d = 32), gemm-bound in both
//!   engines.
//!
//! Each measured iteration is **[`EPOCHS_PER_ITER`] full epochs** over
//! the 320-plan stream (both models, full-batch configuration) from a
//! pristine clone of the units, via `Trainer::train` — divide the
//! reported time by [`EPOCHS_PER_ITER`] for ms/epoch. Multi-epoch
//! iterations measure what real training runs (hundreds of epochs)
//! amortize to: per-run setup — the wavefront engine's once-per-run
//! featurization and compile-once tape, the per-class engine's
//! *per-epoch* `TreeBatch` rebuilds — is charged exactly as each engine
//! incurs it across epochs. The `program_tN` rows add the worker-pool
//! axis over both sweeps; thread counts never change the forward results
//! and perturb gradients only by f32 summation order. **On a 1-core host
//! those rows show only the spawn/barrier overhead floor** — see the
//! README caveat.

use criterion::{criterion_group, BenchmarkId, Criterion};
use qpp_plansim::catalog::Workload;
use qpp_plansim::dataset::Dataset;
use qpp_plansim::features::{Featurizer, Whitener};
use qpp_plansim::plan::Plan;
use qppnet::config::{TargetCodec, TrainEngine};
use qppnet::{QppConfig, Trainer, UnitSet};
use rand::SeedableRng;

/// Thread counts for the worker-pool scaling axis (program engine only).
const THREADS: [usize; 2] = [2, 4];

/// Epochs per measured iteration (reported times are this many epochs).
const EPOCHS_PER_ITER: usize = 10;

struct Workbench {
    plans_idx: Vec<usize>,
    ds: Dataset,
    fz: Featurizer,
    wh: Whitener,
    codec: TargetCodec,
    units: UnitSet,
}

impl Workbench {
    /// Mirrors `QppNet::fit`'s cold start: whitener over the training
    /// plans, codec over every operator latency, seeded unit init.
    fn new(ds: Dataset, cfg: &QppConfig) -> Workbench {
        let fz = Featurizer::new(&ds.catalog);
        let wh = Whitener::fit(&fz, ds.plans.iter());
        let mut latencies = Vec::new();
        for p in &ds.plans {
            p.root.visit_postorder(&mut |n| latencies.push(n.actual.latency_ms));
        }
        let codec = TargetCodec::fit(cfg.target_transform, latencies);
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        let units = UnitSet::new(cfg, &fz, &mut rng);
        Workbench { plans_idx: (0..ds.plans.len()).collect(), ds, fz, wh, codec, units }
    }

    /// [`EPOCHS_PER_ITER`] training epochs over the whole workload from a
    /// pristine unit clone. Returns the first epoch's mean loss so the
    /// work cannot be optimized away.
    fn epoch(&self, cfg: &QppConfig) -> f64 {
        let plans: Vec<&Plan> = self.plans_idx.iter().map(|&i| &self.ds.plans[i]).collect();
        let trainer = Trainer {
            config: cfg,
            featurizer: &self.fz,
            whitener: &self.wh,
            codec: &self.codec,
            ratio_caps: None,
        };
        let mut units = self.units.clone();
        let hist = trainer.train(&mut units, &plans, None);
        hist.train_loss[0]
    }
}

fn bench_train_throughput(c: &mut Criterion) {
    let tpch = Dataset::generate(Workload::TpcH, 100.0, 160, 9);
    let tpcds = Dataset::generate(Workload::TpcDs, 100.0, 160, 10);
    let total = tpch.plans.len() + tpcds.plans.len();
    let shapes: std::collections::HashSet<String> = tpch
        .plans
        .iter()
        .chain(&tpcds.plans)
        .map(|p| p.signature())
        .collect();
    println!("mixed stream: {total} plans, {} distinct shapes", shapes.len());

    for (tier, base) in [("edge", QppConfig::tiny()), ("paper", QppConfig::default())] {
        // Full-batch: one gradient step per epoch — the configuration
        // where the wavefront engine compiles its tape once per run.
        let cfg = |engine: TrainEngine, threads: usize| QppConfig {
            epochs: EPOCHS_PER_ITER,
            batch_size: 512,
            train_engine: engine,
            threads,
            ..base.clone()
        };
        let bench_h = Workbench::new(tpch.clone(), &base);
        let bench_ds = Workbench::new(tpcds.clone(), &base);

        let mut group = c.benchmark_group(format!("train_throughput/{tier}"));
        group.sample_size(10);
        for engine in [TrainEngine::Classes, TrainEngine::Program] {
            let cfg = cfg(engine, 1);
            group.bench_function(BenchmarkId::new(engine.name(), total), |b| {
                b.iter(|| bench_h.epoch(&cfg) + bench_ds.epoch(&cfg))
            });
        }
        for t in THREADS {
            let cfg = cfg(TrainEngine::Program, t);
            group.bench_function(BenchmarkId::new(format!("program_t{t}"), total), |b| {
                b.iter(|| bench_h.epoch(&cfg) + bench_ds.epoch(&cfg))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_train_throughput);

fn main() {
    benches();
    // Persist the run as data (satellite: perf trajectory across PRs).
    let rows: Vec<_> = criterion::take_records()
        .into_iter()
        .filter_map(|r| qpp_bench::bench_json::row_from_label(&r.label, r.mean_ns))
        .collect();
    qpp_bench::bench_json::write("BENCH_train.json", &rows);
}
