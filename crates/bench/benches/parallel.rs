//! Criterion benchmarks for the data-parallel trainer (extension) and the
//! Tree-LSTM cell kernels backing the §3 ablation baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpp_nn::{Matrix, TreeLstmCell};
use qpp_plansim::catalog::Workload;
use qpp_plansim::dataset::Dataset;
use qpp_plansim::plan::Plan;
use qppnet::{QppConfig, QppNet};
use rand::SeedableRng;

fn bench_thread_scaling(c: &mut Criterion) {
    let ds = Dataset::generate(Workload::TpcH, 100.0, 96, 21);
    let plans: Vec<&Plan> = ds.plans.iter().collect();

    let mut group = c.benchmark_group("one_epoch_threads");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let cfg = QppConfig {
                        epochs: 1,
                        batch_size: 96,
                        threads,
                        hidden_layers: 3,
                        hidden_units: 64,
                        data_size: 16,
                        ..QppConfig::default()
                    };
                    let mut model = QppNet::new(cfg, &ds.catalog);
                    std::hint::black_box(model.fit(&plans));
                })
            },
        );
    }
    group.finish();
}

fn bench_treelstm_cell(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let cell = TreeLstmCell::new(128, 64, &mut rng);
    let x = Matrix::from_fn(32, 128, |i, j| ((i * 7 + j) % 13) as f32 * 0.07 - 0.4);

    let mut group = c.benchmark_group("treelstm_cell");
    group.bench_function("forward_leaf_batch32", |b| {
        b.iter(|| std::hint::black_box(cell.forward(&x, &[])))
    });
    let leaf = cell.forward(&x, &[]);
    group.bench_function("forward_internal_batch32", |b| {
        b.iter(|| {
            std::hint::black_box(
                cell.forward(&x, &[(leaf.hidden(), leaf.memory()), (leaf.hidden(), leaf.memory())]),
            )
        })
    });
    let root = cell.forward(&x, &[(leaf.hidden(), leaf.memory())]);
    let dh = Matrix::from_fn(32, 64, |_, _| 0.01);
    let dm = Matrix::zeros(32, 64);
    group.bench_function("backward_batch32", |b| {
        b.iter(|| {
            let mut cell = cell.clone();
            std::hint::black_box(cell.backward(&root, &dh, &dm))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_treelstm_cell);
criterion_main!(benches);
