//! Criterion benchmarks for the database substrate: plan
//! generation+simulation throughput and featurization cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpp_plansim::catalog::Workload;
use qpp_plansim::dataset::Dataset;
use qpp_plansim::features::{Featurizer, Whitener};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generate_100_queries");
    group.sample_size(10);
    for workload in [Workload::TpcH, Workload::TpcDs] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workload.name()),
            &workload,
            |b, &w| b.iter(|| std::hint::black_box(Dataset::generate(w, 100.0, 100, 13))),
        );
    }
    group.finish();
}

fn bench_featurization(c: &mut Criterion) {
    let ds = Dataset::generate(Workload::TpcDs, 100.0, 200, 14);
    let fz = Featurizer::new(&ds.catalog);
    let wh = Whitener::fit(&fz, ds.plans.iter());

    c.bench_function("whitener_fit_200_plans", |b| {
        b.iter(|| std::hint::black_box(Whitener::fit(&fz, ds.plans.iter())))
    });

    let plan = &ds.plans[0];
    c.bench_function("featurize_one_plan", |b| {
        b.iter(|| {
            let mut total = 0.0f32;
            plan.root.visit_postorder(&mut |n| {
                total += wh.features(&fz, n).iter().sum::<f32>();
            });
            std::hint::black_box(total)
        })
    });

    c.bench_function("plan_signature", |b| {
        b.iter(|| std::hint::black_box(plan.signature()))
    });
}

criterion_group!(benches, bench_generation, bench_featurization);
criterion_main!(benches);
