//! Criterion benchmarks for QPPNet inference latency: single-plan
//! prediction (the admission-control path, where the model must be faster
//! than running the query) and batched prediction across equivalence
//! classes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpp_plansim::catalog::Workload;
use qpp_plansim::dataset::Dataset;
use qpp_plansim::plan::Plan;
use qppnet::{QppConfig, QppNet};

fn fitted_model(ds: &Dataset) -> QppNet {
    // Two epochs: learned weights don't matter for timing.
    let cfg = QppConfig { epochs: 2, ..QppConfig::default() };
    let mut model = QppNet::new(cfg, &ds.catalog);
    let train: Vec<&Plan> = ds.plans.iter().take(60).collect();
    model.fit(&train);
    model
}

fn bench_single_plan(c: &mut Criterion) {
    let ds = Dataset::generate(Workload::TpcH, 100.0, 120, 9);
    let model = fitted_model(&ds);

    // Smallest and largest plans in the sample.
    let small = ds.plans.iter().min_by_key(|p| p.node_count()).unwrap();
    let large = ds.plans.iter().max_by_key(|p| p.node_count()).unwrap();

    let mut group = c.benchmark_group("predict_single_plan");
    group.bench_function(format!("small_{}_ops", small.node_count()), |b| {
        b.iter(|| std::hint::black_box(model.predict(small)))
    });
    group.bench_function(format!("large_{}_ops", large.node_count()), |b| {
        b.iter(|| std::hint::black_box(model.predict(large)))
    });
    group.finish();
}

fn bench_batched(c: &mut Criterion) {
    let ds = Dataset::generate(Workload::TpcDs, 100.0, 256, 10);
    let model = fitted_model(&ds);
    let mut group = c.benchmark_group("predict_batched");
    for &n in &[16usize, 64, 256] {
        let plans: Vec<&Plan> = ds.plans.iter().take(n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(model.predict_batch(&plans)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_plan, bench_batched);
criterion_main!(benches);
