//! Criterion micro-benchmarks for the `qpp-nn` matrix kernels that dominate
//! training time: forward matmul (`X·W`), input gradient (`dZ·Wᵀ`) and
//! weight gradient (`Xᵀ·dZ`), at the paper's layer shape (128×128) across
//! batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpp_nn::Matrix;
use rand::{Rng, SeedableRng};

fn rand_matrix(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

fn bench_kernels(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("matrix_kernels_128x128");
    for &batch in &[1usize, 16, 64, 256] {
        let x = rand_matrix(batch, 128, &mut rng);
        let w = rand_matrix(128, 128, &mut rng);
        let dz = rand_matrix(batch, 128, &mut rng);

        group.bench_with_input(BenchmarkId::new("forward_xw", batch), &batch, |b, _| {
            b.iter(|| std::hint::black_box(x.matmul(&w)))
        });
        group.bench_with_input(BenchmarkId::new("input_grad_a_bt", batch), &batch, |b, _| {
            b.iter(|| std::hint::black_box(dz.matmul_a_bt(&w)))
        });
        group.bench_with_input(BenchmarkId::new("weight_grad_at_b", batch), &batch, |b, _| {
            let mut out = Matrix::zeros(128, 128);
            b.iter(|| {
                out.fill_zero();
                x.matmul_at_b_into(&dz, &mut out);
                std::hint::black_box(out.norm())
            })
        });
    }
    group.finish();
}

fn bench_hcat_slice(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    // A join unit's input assembly: features ⌢ child₁(33) ⌢ child₂(33).
    let feats = rand_matrix(64, 16, &mut rng);
    let c1 = rand_matrix(64, 33, &mut rng);
    let c2 = rand_matrix(64, 33, &mut rng);
    c.bench_function("hcat_join_input_batch64", |b| {
        b.iter(|| std::hint::black_box(Matrix::hcat(&[&feats, &c1, &c2])))
    });
    let cat = Matrix::hcat(&[&feats, &c1, &c2]);
    c.bench_function("slice_child_grad_batch64", |b| {
        b.iter(|| std::hint::black_box(cat.slice_cols(16, 33)))
    });
}

criterion_group!(benches, bench_kernels, bench_hcat_slice);
criterion_main!(benches);
