//! Criterion benchmarks for training-epoch throughput under the four §5.1
//! optimization modes — the micro-benchmark behind Figure 9a's wall-clock
//! comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpp_plansim::catalog::Workload;
use qpp_plansim::dataset::Dataset;
use qpp_plansim::plan::Plan;
use qppnet::{OptMode, QppConfig, QppNet};

fn bench_opt_modes(c: &mut Criterion) {
    let ds = Dataset::generate(Workload::TpcH, 100.0, 64, 11);
    let plans: Vec<&Plan> = ds.plans.iter().collect();

    let mut group = c.benchmark_group("one_epoch_64_plans");
    group.sample_size(10);
    for mode in OptMode::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(mode.name()), &mode, |b, &mode| {
            b.iter(|| {
                let cfg = QppConfig {
                    epochs: 1,
                    batch_size: 64,
                    opt_mode: mode,
                    hidden_layers: 3,
                    hidden_units: 64,
                    data_size: 16,
                    ..QppConfig::default()
                };
                let mut model = QppNet::new(cfg, &ds.catalog);
                std::hint::black_box(model.fit(&plans));
            })
        });
    }
    group.finish();
}

fn bench_batch_size_scaling(c: &mut Criterion) {
    let ds = Dataset::generate(Workload::TpcDs, 100.0, 128, 12);
    let plans: Vec<&Plan> = ds.plans.iter().collect();
    let mut group = c.benchmark_group("one_epoch_batch_size");
    group.sample_size(10);
    for &batch in &[8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let cfg = QppConfig {
                    epochs: 1,
                    batch_size: batch,
                    hidden_layers: 3,
                    hidden_units: 64,
                    data_size: 16,
                    ..QppConfig::default()
                };
                let mut model = QppNet::new(cfg, &ds.catalog);
                std::hint::black_box(model.fit(&plans));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_opt_modes, bench_batch_size_scaling);
criterion_main!(benches);
