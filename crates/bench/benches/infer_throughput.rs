//! Serving-throughput benchmark: the compiled wavefront engine
//! (`PlanProgram`) versus per-equivalence-class `TreeBatch` evaluation on
//! a *mixed-shape* plan stream.
//!
//! The stream interleaves TPC-H and TPC-DS plans (each workload served by
//! its own fitted model — featurizers are catalog-specific), ≥ 256
//! heterogeneous plans in total. On such a mix the per-class path pays
//! one tiny gemm plus a training-cache allocation per (class, position),
//! and its small per-position gemms cannot use the register-blocked SIMD
//! kernel the wavefront batches enable. Two model tiers are measured:
//!
//! * **edge** — `QppConfig::tiny()`-sized units (2×32 hidden, d = 8), the
//!   latency-budget serving tier where per-node overhead dominates; the
//!   wavefront engine wins several-fold here (≥ 2x required).
//! * **paper** — the paper's 5×128 units (d = 32), where the gemm FLOPs
//!   dominate both engines; the wavefront engine still wins (~2x on an
//!   AVX2 host, bounded by pure gemm throughput).
//!
//! Per tier, `classes` and `program` time the full request path
//! (featurize + schedule + evaluate a fresh batch); `program_precompiled`
//! times the steady-state compile-once/run-many loop (e.g. an admission
//! controller re-scoring a queue), with a thread-count axis (t1/t2/t4)
//! over `PlanProgram::run_parallel` — the multicore scaling table in the
//! README is generated from these rows. `compile` and `featurize` isolate
//! the one-shot path's fixed costs (schedule construction and Table-2
//! featurization respectively); their ratio is the number behind the
//! ROADMAP's incremental-compile lead.
//!
//! The streaming-admission rows measure the incremental engine
//! (`ProgramBuilder`) against the recompile-the-world status quo:
//!
//! * `admit_one` — with the full mixed stream resident, admit **one**
//!   newly-arrived plan (and retire it again, keeping the state
//!   steady): the per-arrival schedule-maintenance cost;
//! * `recompile_one` — the status quo for the same arrival: a fresh
//!   `PlanProgram::compile` over resident + 1 plans (the acceptance bar
//!   is `admit_one` ≥ 5x faster);
//! * `stream` — end-to-end admission-control churn: every plan of the
//!   mixed stream is admitted, scored (full resident run) and retired
//!   past a 32-plan sliding window, against warm caches.
//! * `sharded_admit` — the shard-per-core front door for the same
//!   steady-state arrival: admit + retire one plan through a
//!   `ShardedStream` (content-hash routing on top of `admit_one`).
//! * `microbatch_w{1,4,16}` — the micro-batching front door at batch
//!   width W: submit W concurrent requests, flush them as one
//!   heterogeneous resident run; reported per *batch*, so divide by W
//!   for the per-request cost the coalescing amortizes.
//!
//! The tier-independent `pool` group isolates executor dispatch:
//! `resident_pool_t{1,2,4}` runs an empty job on the parked resident
//! pool, `spawn_per_run_t{1,2,4}` is the retired status quo of putting
//! every one of the run's t worker shares on a freshly spawned scoped
//! thread. The resident path must beat the spawn path at every t (t1
//! is ~50 ns vs ~20 µs — the caller-is-worker-0 fast path never takes
//! a lock beyond the run token), and stay under 5 µs per dispatch.

use criterion::{criterion_group, BenchmarkId, Criterion};
use qpp_plansim::catalog::Workload;
use qpp_plansim::dataset::Dataset;
use qpp_plansim::features::{Featurizer, Whitener};
use qpp_plansim::plan::Plan;
use qppnet::{InferEngine, QppConfig, QppNet};

/// Thread counts for the `run_parallel` scaling axis.
const THREADS: [usize; 3] = [1, 2, 4];

fn fitted_model(ds: &Dataset, cfg: &QppConfig) -> QppNet {
    // Two epochs: learned weights don't matter for timing, the unit
    // architecture does.
    let cfg = QppConfig { epochs: 2, ..cfg.clone() };
    let mut model = QppNet::new(cfg, &ds.catalog);
    let train: Vec<&Plan> = ds.plans.iter().take(60).collect();
    model.fit(&train);
    model
}

fn bench_mixed_stream(c: &mut Criterion) {
    let tpch = Dataset::generate(Workload::TpcH, 100.0, 160, 9);
    let tpcds = Dataset::generate(Workload::TpcDs, 100.0, 160, 10);
    let plans_h: Vec<&Plan> = tpch.plans.iter().collect();
    let plans_ds: Vec<&Plan> = tpcds.plans.iter().collect();
    let total = plans_h.len() + plans_ds.len();
    let shapes: std::collections::HashSet<String> = plans_h
        .iter()
        .chain(&plans_ds)
        .map(|p| p.signature())
        .collect();
    println!("mixed stream: {total} plans, {} distinct shapes", shapes.len());

    for (tier, cfg) in [("edge", QppConfig::tiny()), ("paper", QppConfig::default())] {
        let model_h = fitted_model(&tpch, &cfg);
        let model_ds = fitted_model(&tpcds, &cfg);

        let mut group = c.benchmark_group(format!("infer_throughput/{tier}"));
        group.sample_size(20);
        for engine in [InferEngine::Classes, InferEngine::Program { threads: 1 }] {
            group.bench_function(BenchmarkId::new(engine.name(), total), |b| {
                b.iter(|| {
                    let mut out = model_h.predict_batch_with(&plans_h, engine);
                    out.extend(model_ds.predict_batch_with(&plans_ds, engine));
                    out
                })
            });
        }

        // One-shot fixed cost: compiling the wavefront schedule (includes
        // featurizing every node — compare against the `featurize` bench
        // below for the featurization share).
        group.bench_function(BenchmarkId::new("compile", total), |b| {
            b.iter(|| {
                (model_h.compile_program(&plans_h).num_steps(),
                 model_ds.compile_program(&plans_ds).num_steps())
            })
        });

        // Steady-state serving: the schedule and buffers are compiled once
        // and re-run per request, on 1/2/4 worker threads (results are
        // bit-identical across the axis; only wall clock moves).
        let mut prog_h = model_h.compile_program(&plans_h);
        let mut prog_ds = model_ds.compile_program(&plans_ds);
        for t in THREADS {
            group.bench_function(
                BenchmarkId::new(format!("program_precompiled_t{t}"), total),
                |b| {
                    b.iter(|| {
                        let mut out = model_h.predict_compiled_with(&mut prog_h, t);
                        out.extend(model_ds.predict_compiled_with(&mut prog_ds, t));
                        out
                    })
                },
            );
        }

        // Incremental admission: the full stream is resident; one new
        // plan arrives (one per workload — the stream is served by two
        // models) and is retired again, leaving state steady across
        // iterations. This is the cost `recompile_one` pays ~everything
        // else for.
        let (held_h, resident_h) = plans_h.split_last().unwrap();
        let (held_ds, resident_ds) = plans_ds.split_last().unwrap();
        let mut stream_h = model_h.serve_stream();
        let mut stream_ds = model_ds.serve_stream();
        for p in resident_h {
            stream_h.admit(&p.root);
        }
        for p in resident_ds {
            stream_ds.admit(&p.root);
        }
        group.bench_function(BenchmarkId::new("admit_one", total), |b| {
            b.iter(|| {
                let a = stream_h.admit(&held_h.root);
                stream_h.retire(a);
                let c = stream_ds.admit(&held_ds.root);
                stream_ds.retire(c);
                (a, c)
            })
        });

        // Status quo for the same arrival: recompile the whole resident
        // batch plus the new plan from scratch.
        group.bench_function(BenchmarkId::new("recompile_one", total), |b| {
            b.iter(|| {
                (model_h.compile_program(&plans_h).num_steps(),
                 model_ds.compile_program(&plans_ds).num_steps())
            })
        });
        drop(stream_h);
        drop(stream_ds);

        // End-to-end admission-control churn over the whole mixed stream:
        // admit, score (a full resident-program run — the admission
        // decision), retire past a 32-plan sliding window. Caches stay
        // warm across iterations, as across a live stream.
        let mut churn_h = model_h.serve_stream();
        let mut churn_ds = model_ds.serve_stream();
        let mut window = std::collections::VecDeque::new();
        group.bench_function(BenchmarkId::new("stream", total), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for (plan, which) in plans_h
                    .iter()
                    .map(|p| (*p, true))
                    .chain(plans_ds.iter().map(|p| (*p, false)))
                {
                    let stream = if which { &mut churn_h } else { &mut churn_ds };
                    let id = stream.admit(&plan.root);
                    acc += stream.predict_root(id);
                    window.push_back((which, id));
                    if window.len() > 32 {
                        let (w, old) = window.pop_front().unwrap();
                        if w { &mut churn_h } else { &mut churn_ds }.retire(old);
                    }
                }
                acc
            })
        });
        drop(churn_h);
        drop(churn_ds);

        // Shard-per-core front door for the steady-state arrival: the
        // resident set is spread across 4 shards; one new plan routes by
        // content hash, is admitted and retired again.
        let mut sharded_h = model_h.serve_sharded(4);
        for p in resident_h {
            sharded_h.admit(&p.root);
        }
        group.bench_function(BenchmarkId::new("sharded_admit", total), |b| {
            b.iter(|| {
                let id = sharded_h.admit(&held_h.root);
                sharded_h.retire(id);
                id
            })
        });
        drop(sharded_h);

        // Micro-batching front door: W concurrent requests coalesce into
        // one heterogeneous resident run (per-batch time; the per-request
        // cost is this divided by W).
        for width in [1usize, 4, 16] {
            let mut stream = model_h.serve_sharded(4);
            let mut front = qppnet::MicroBatcher::new();
            group.bench_function(BenchmarkId::new(format!("microbatch_w{width}"), total), |b| {
                b.iter(|| {
                    for p in plans_h.iter().take(width) {
                        front.submit(&p.root);
                    }
                    front.flush(&mut stream, 1)
                })
            });
        }
        group.finish();
    }

    // Executor dispatch overhead, isolated from any model work: an empty
    // job through the parked resident pool versus the retired status quo
    // of spawning scoped threads per run. Tier-independent.
    let mut group = c.benchmark_group("infer_throughput/pool");
    group.sample_size(20);
    let exec = qpp_nn::Executor::global();
    for t in THREADS {
        group.bench_function(BenchmarkId::new(format!("resident_pool_t{t}"), 0usize), |b| {
            b.iter(|| exec.run(t, &|_, _| {}))
        });
    }
    for t in THREADS {
        group.bench_function(BenchmarkId::new(format!("spawn_per_run_t{t}"), 0usize), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for _ in 0..t {
                        scope.spawn(|| {});
                    }
                })
            })
        });
    }
    group.finish();

    // Featurization alone (tier-independent): walk every node of the
    // stream through the whitened Table-2 featurizer, allocation-free —
    // exactly the per-node work `PlanProgram::compile` performs before
    // scheduling. `featurize / compile` is the featurization share of
    // one-shot latency (ROADMAP: ~40%, the incremental-compile lead).
    let mut group = c.benchmark_group("infer_throughput/oneshot");
    group.sample_size(20);
    let fz_h = Featurizer::new(&tpch.catalog);
    let wh_h = Whitener::fit(&fz_h, tpch.plans.iter());
    let fz_ds = Featurizer::new(&tpcds.catalog);
    let wh_ds = Whitener::fit(&fz_ds, tpcds.plans.iter());
    group.bench_function(BenchmarkId::new("featurize", total), |b| {
        let mut scratch = Vec::new();
        b.iter(|| {
            let mut nodes = 0usize;
            for (plans, fz, wh) in [(&plans_h, &fz_h, &wh_h), (&plans_ds, &fz_ds, &wh_ds)] {
                for plan in plans.iter() {
                    plan.root.visit_postorder(&mut |n| {
                        wh.features_into(fz, n, &mut scratch);
                        nodes += 1;
                    });
                }
            }
            nodes
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mixed_stream);

fn main() {
    benches();
    // Persist the run as data (satellite: perf trajectory across PRs).
    let rows: Vec<_> = criterion::take_records()
        .into_iter()
        .filter_map(|r| qpp_bench::bench_json::row_from_label(&r.label, r.mean_ns))
        .collect();
    qpp_bench::bench_json::write("BENCH_infer.json", &rows);
}
