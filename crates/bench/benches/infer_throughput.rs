//! Serving-throughput benchmark: the compiled wavefront engine
//! (`PlanProgram`) versus per-equivalence-class `TreeBatch` evaluation on
//! a *mixed-shape* plan stream.
//!
//! The stream interleaves TPC-H and TPC-DS plans (each workload served by
//! its own fitted model — featurizers are catalog-specific), ≥ 256
//! heterogeneous plans in total. On such a mix the per-class path pays
//! one tiny gemm plus a training-cache allocation per (class, position),
//! and its small per-position gemms cannot use the register-blocked SIMD
//! kernel the wavefront batches enable. Two model tiers are measured:
//!
//! * **edge** — `QppConfig::tiny()`-sized units (2×32 hidden, d = 8), the
//!   latency-budget serving tier where per-node overhead dominates; the
//!   wavefront engine wins several-fold here (≥ 2x required).
//! * **paper** — the paper's 5×128 units (d = 32), where the gemm FLOPs
//!   dominate both engines; the wavefront engine still wins (~2x on an
//!   AVX2 host, bounded by pure gemm throughput).
//!
//! Per tier, `classes` and `program` time the full request path
//! (featurize + schedule + evaluate a fresh batch); `program_precompiled`
//! times the steady-state compile-once/run-many loop (e.g. an admission
//! controller re-scoring a queue).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpp_plansim::catalog::Workload;
use qpp_plansim::dataset::Dataset;
use qpp_plansim::plan::Plan;
use qppnet::{InferEngine, QppConfig, QppNet};

fn fitted_model(ds: &Dataset, cfg: &QppConfig) -> QppNet {
    // Two epochs: learned weights don't matter for timing, the unit
    // architecture does.
    let cfg = QppConfig { epochs: 2, ..cfg.clone() };
    let mut model = QppNet::new(cfg, &ds.catalog);
    let train: Vec<&Plan> = ds.plans.iter().take(60).collect();
    model.fit(&train);
    model
}

fn bench_mixed_stream(c: &mut Criterion) {
    let tpch = Dataset::generate(Workload::TpcH, 100.0, 160, 9);
    let tpcds = Dataset::generate(Workload::TpcDs, 100.0, 160, 10);
    let plans_h: Vec<&Plan> = tpch.plans.iter().collect();
    let plans_ds: Vec<&Plan> = tpcds.plans.iter().collect();
    let total = plans_h.len() + plans_ds.len();
    let shapes: std::collections::HashSet<String> = plans_h
        .iter()
        .chain(&plans_ds)
        .map(|p| p.signature())
        .collect();
    println!("mixed stream: {total} plans, {} distinct shapes", shapes.len());

    for (tier, cfg) in [("edge", QppConfig::tiny()), ("paper", QppConfig::default())] {
        let model_h = fitted_model(&tpch, &cfg);
        let model_ds = fitted_model(&tpcds, &cfg);

        let mut group = c.benchmark_group(format!("infer_throughput/{tier}"));
        group.sample_size(20);
        for engine in [InferEngine::Classes, InferEngine::Program] {
            group.bench_function(BenchmarkId::new(engine.name(), total), |b| {
                b.iter(|| {
                    let mut out = model_h.predict_batch_with(&plans_h, engine);
                    out.extend(model_ds.predict_batch_with(&plans_ds, engine));
                    out
                })
            });
        }

        // Steady-state serving: the schedule and buffers are compiled once
        // and re-run per request.
        let mut prog_h = model_h.compile_program(&plans_h);
        let mut prog_ds = model_ds.compile_program(&plans_ds);
        group.bench_function(BenchmarkId::new("program_precompiled", total), |b| {
            b.iter(|| {
                let mut out = model_h.predict_compiled(&mut prog_h);
                out.extend(model_ds.predict_compiled(&mut prog_ds));
                out
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_mixed_stream);
criterion_main!(benches);
