//! # qpp-ablation — the paper's §3 strawmen, implemented for real
//!
//! Section 3 of *Plan-Structured Deep Neural Network Models for Query
//! Performance Prediction* (Marcus & Papaemmanouil, VLDB 2019) motivates
//! the plan-structured architecture by arguing that three simpler neural
//! designs are ill-suited to the task. This crate implements each of those
//! designs as a complete, trainable model so the argument can be tested
//! empirically rather than taken on faith:
//!
//! * [`FlatDnn`] — the "straightforward application of deep learning …
//!   model the whole query as a single neural network and use query plan
//!   features as the input vector". A fixed-size bag-of-plan-statistics
//!   vector feeds a plain MLP; tree structure, intermediate results and
//!   per-operator detail are all collapsed away.
//! * [`SparseUnitDnn`] — the "naive solution" to heterogeneous tree nodes:
//!   "concatenate vectors together for each relational operator", padding
//!   with zeros. One *shared* neural unit serves every operator family,
//!   consuming the sparse concatenation — keeping QPPNet's tree wiring and
//!   per-operator supervision but giving up per-family weights.
//! * [`TreeLstm`] — the tree-structured recurrent architecture of the NLP
//!   literature the paper cites as ill-suited (\[49\], Tai et al.): a
//!   child-sum Tree-LSTM over the same sparse featurization, with a shared
//!   linear latency readout at every node.
//!
//! All three implement [`qpp_baselines::LatencyModel`], train on the same
//! executed plans, see exactly the same `EXPLAIN`-level features as QPPNet
//! (via [`SparseFeaturizer`] / plan-level summaries thereof), and are
//! compared against QPPNet by the `ablation` bench binary.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod flat;
pub mod shared_unit;
pub mod sparse_features;
pub mod treelstm;

mod tree_pos;

pub use flat::FlatDnn;
pub use shared_unit::SparseUnitDnn;
pub use sparse_features::SparseFeaturizer;
pub use treelstm::TreeLstm;

use qppnet::TargetTransform;
use serde::{Deserialize, Serialize};

/// Hyper-parameters shared by the ablation models.
///
/// Defaults mirror the QPPNet configuration where the concepts coincide
/// (ReLU MLPs, SGD with momentum, `log1p` targets) so differences in
/// accuracy are attributable to the *architecture*, not the tuning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationConfig {
    /// Hidden width of MLPs / the Tree-LSTM cell.
    pub hidden_units: usize,
    /// Hidden layers for the MLP-based models.
    pub hidden_layers: usize,
    /// Data-vector size `d` for [`SparseUnitDnn`] (matches QPPNet's).
    pub data_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Large-batch size (plans per gradient step).
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Latency-target transform.
    pub target_transform: TargetTransform,
    /// Seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            hidden_units: 128,
            hidden_layers: 5,
            data_size: 32,
            epochs: 100,
            batch_size: 512,
            learning_rate: 1e-3,
            momentum: 0.9,
            weight_decay: 1e-4,
            target_transform: TargetTransform::Log1p,
            seed: 0xAB1A710,
        }
    }
}

impl AblationConfig {
    /// A small, fast configuration for tests and examples.
    pub fn tiny() -> Self {
        AblationConfig {
            hidden_units: 32,
            hidden_layers: 2,
            data_size: 8,
            epochs: 30,
            batch_size: 64,
            ..Default::default()
        }
    }
}
