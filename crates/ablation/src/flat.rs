//! The flat plan-level DNN of the paper's §3.
//!
//! > "A straightforward application of deep learning would be to model the
//! > whole query as a single neural network and use query plan features as
//! > the input vector. However, this naive approach ignores the fact that
//! > the query plan structure, features of intermediate results, and
//! > non-leaf operators are often correlated with query execution times."
//!
//! [`FlatDnn`] is that straightforward application: a plan is summarized
//! into one fixed-size vector of aggregate statistics (operator counts,
//! physical-variant counts, root estimates, totals and maxima over nodes),
//! which a plain MLP regresses to the query latency. It sees the same
//! `EXPLAIN` quantities as QPPNet but no tree structure and no per-operator
//! supervision — exactly the information the paper claims matters.

use crate::AblationConfig;
use qpp_baselines::LatencyModel;
use qpp_nn::{Activation, Init, Matrix, Mlp, Sgd};
use qpp_plansim::features::signed_log1p;
use qpp_plansim::operators::{AggStrategy, JoinAlgorithm, Operator, ScanMethod, SortMethod};
use qpp_plansim::plan::Plan;
use qppnet::config::TargetCodec;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Width of the flat plan-summary vector.
pub const FLAT_FEATURES: usize = 33;

/// Summarizes a plan into the fixed-size vector §3 describes.
///
/// Layout: 8 family counts, node count, depth, 5 root estimates, 4 totals
/// over nodes (rows, cost, I/Os, buffers), 2 maxima (rows, cost), 3 join
/// algorithms, 2 scan methods, 3 sort methods, 3 aggregate strategies,
/// 2 estimated-spill counts (sort/hash bytes past `work_mem` would need
/// the catalog; approximated by buffers ≥ row-estimate thresholds is
/// *not* attempted — the flat model only sees `EXPLAIN` aggregates).
pub fn flat_features(plan: &Plan) -> [f32; FLAT_FEATURES] {
    let mut v = [0.0f32; FLAT_FEATURES];
    let mut sum_rows = 0.0f64;
    let mut sum_cost = 0.0f64;
    let mut sum_ios = 0.0f64;
    let mut sum_buffers = 0.0f64;
    let mut max_rows = 0.0f64;
    let mut max_cost = 0.0f64;

    plan.root.visit_postorder(&mut |n| {
        v[n.op.kind().index()] += 1.0;
        sum_rows += n.est.rows;
        sum_cost += n.est.total_cost;
        sum_ios += n.est.ios;
        sum_buffers += n.est.buffers;
        max_rows = max_rows.max(n.est.rows);
        max_cost = max_cost.max(n.est.total_cost);
        match &n.op {
            Operator::Join { algo, .. } => {
                let i = match algo {
                    JoinAlgorithm::NestedLoop => 0,
                    JoinAlgorithm::Hash => 1,
                    JoinAlgorithm::Merge => 2,
                };
                v[21 + i] += 1.0;
            }
            Operator::Scan { method, .. } => {
                let i = matches!(method, ScanMethod::Index { .. }) as usize;
                v[24 + i] += 1.0;
            }
            Operator::Sort { method, .. } => {
                let i = match method {
                    SortMethod::Quicksort => 0,
                    SortMethod::TopN => 1,
                    SortMethod::External => 2,
                };
                v[26 + i] += 1.0;
            }
            Operator::Aggregate { strategy, .. } => {
                let i = match strategy {
                    AggStrategy::Plain => 0,
                    AggStrategy::Sorted => 1,
                    AggStrategy::Hashed => 2,
                };
                v[29 + i] += 1.0;
            }
            _ => {}
        }
    });

    v[8] = plan.node_count() as f32;
    v[9] = plan.depth() as f32;
    v[10] = signed_log1p(plan.root.est.width);
    v[11] = signed_log1p(plan.root.est.rows);
    v[12] = signed_log1p(plan.root.est.buffers);
    v[13] = signed_log1p(plan.root.est.ios);
    v[14] = signed_log1p(plan.root.est.total_cost);
    v[15] = signed_log1p(sum_rows);
    v[16] = signed_log1p(sum_cost);
    v[17] = signed_log1p(sum_ios);
    v[18] = signed_log1p(sum_buffers);
    v[19] = signed_log1p(max_rows);
    v[20] = signed_log1p(max_cost);
    v[32] = plan.root.concurrency as f32;
    v
}

/// Per-position whitening statistics for the flat vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FlatWhitener {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl FlatWhitener {
    fn fit(rows: &[[f32; FLAT_FEATURES]]) -> FlatWhitener {
        let n = rows.len().max(1) as f64;
        let mut mean = vec![0.0f64; FLAT_FEATURES];
        let mut sq = vec![0.0f64; FLAT_FEATURES];
        for r in rows {
            for (i, &x) in r.iter().enumerate() {
                mean[i] += x as f64;
                sq[i] += (x as f64) * (x as f64);
            }
        }
        let std: Vec<f32> = (0..FLAT_FEATURES)
            .map(|i| {
                let m = mean[i] / n;
                ((sq[i] / n - m * m).max(0.0).sqrt().max(1e-6)) as f32
            })
            .collect();
        FlatWhitener { mean: mean.into_iter().map(|m| (m / n) as f32).collect(), std }
    }

    fn apply(&self, v: &[f32; FLAT_FEATURES]) -> Vec<f32> {
        v.iter()
            .enumerate()
            .map(|(i, &x)| (x - self.mean[i]) / self.std[i])
            .collect()
    }
}

/// The §3 flat plan-level DNN, as a trainable [`LatencyModel`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatDnn {
    config: AblationConfig,
    fitted: Option<(FlatWhitener, TargetCodec, Mlp)>,
}

impl FlatDnn {
    /// Creates an untrained flat DNN.
    pub fn new(config: AblationConfig) -> FlatDnn {
        FlatDnn { config, fitted: None }
    }

    /// Total trainable parameters (0 before fitting).
    pub fn num_params(&self) -> usize {
        self.fitted.as_ref().map(|(_, _, m)| m.num_params()).unwrap_or(0)
    }
}

impl LatencyModel for FlatDnn {
    fn name(&self) -> &'static str {
        "Flat DNN"
    }

    fn fit(&mut self, plans: &[&Plan]) {
        assert!(!plans.is_empty(), "cannot fit on zero plans");
        let cfg = &self.config;
        let raw: Vec<[f32; FLAT_FEATURES]> = plans.iter().map(|p| flat_features(p)).collect();
        let whitener = FlatWhitener::fit(&raw);
        let codec =
            TargetCodec::fit(cfg.target_transform, plans.iter().map(|p| p.latency_ms()));

        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        let mut dims = vec![FLAT_FEATURES];
        dims.extend(std::iter::repeat_n(cfg.hidden_units, cfg.hidden_layers));
        dims.push(1);
        let mut mlp =
            Mlp::new(&dims, Activation::Relu, Activation::Identity, Init::He, &mut rng);
        let mut opt = Sgd::new(cfg.learning_rate, cfg.momentum);

        let x_all: Vec<Vec<f32>> = raw.iter().map(|r| whitener.apply(r)).collect();
        let t_all: Vec<f32> = plans.iter().map(|p| codec.encode(p.latency_ms())).collect();
        let mut order: Vec<usize> = (0..plans.len()).collect();

        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let mut x = Matrix::zeros(chunk.len(), FLAT_FEATURES);
                let mut t = Matrix::zeros(chunk.len(), 1);
                for (b, &i) in chunk.iter().enumerate() {
                    x.row_mut(b).copy_from_slice(&x_all[i]);
                    t.set(b, 0, t_all[i]);
                }
                let cache = mlp.forward_cached(&x);
                let (_, d) = qpp_nn::loss::mse(cache.output(), &t);
                mlp.zero_grad();
                mlp.backward(&cache, &d);
                if cfg.weight_decay > 0.0 {
                    for layer in mlp.layers_mut() {
                        let (gw, w) = (&mut layer.gw, &layer.w);
                        gw.add_scaled(w, cfg.weight_decay);
                    }
                }
                mlp.apply_grads(&mut opt, 0);
            }
        }
        self.fitted = Some((whitener, codec, mlp));
    }

    fn predict(&self, plan: &Plan) -> f64 {
        let (whitener, codec, mlp) =
            self.fitted.as_ref().expect("model must be fitted before prediction");
        let v = whitener.apply(&flat_features(plan));
        let x = Matrix::from_row(&v);
        codec.decode(mlp.forward(&x).get(0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    #[test]
    fn features_have_documented_width_and_are_finite() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 10, 1);
        for p in &ds.plans {
            let v = flat_features(p);
            assert!(v.iter().all(|x| x.is_finite()));
            // Family counts sum to the node count.
            let fam: f32 = v[..8].iter().sum();
            assert_eq!(fam as usize, p.node_count());
        }
    }

    #[test]
    fn fit_predict_produces_finite_latencies() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 50, 2);
        let mut m = FlatDnn::new(AblationConfig::tiny());
        m.fit(&ds.plans.iter().take(40).collect::<Vec<_>>());
        assert!(m.num_params() > 0);
        for p in ds.plans.iter().skip(40) {
            let pred = m.predict(p);
            assert!(pred.is_finite() && pred >= 0.0);
        }
    }

    #[test]
    fn training_beats_one_epoch() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 80, 3);
        let (train, test) = ds.plans.split_at(64);
        let train: Vec<&Plan> = train.iter().collect();
        let eval = |m: &FlatDnn| {
            let preds: Vec<f64> = test.iter().map(|p| m.predict(p)).collect();
            let actual: Vec<f64> = test.iter().map(|p| p.latency_ms()).collect();
            qppnet::evaluate(&actual, &preds).mae_ms
        };
        let mut long = FlatDnn::new(AblationConfig { epochs: 30, ..AblationConfig::tiny() });
        long.fit(&train);
        let mut short = FlatDnn::new(AblationConfig { epochs: 1, ..AblationConfig::tiny() });
        short.fit(&train);
        assert!(eval(&long) < eval(&short), "{} vs {}", eval(&long), eval(&short));
    }

    #[test]
    fn identical_structure_different_tables_get_different_predictions() {
        // The flat model distinguishes plans through aggregate statistics:
        // two single-table scans of different relations differ in their
        // root estimates.
        let ds = Dataset::generate(Workload::TpcH, 1.0, 60, 4);
        let mut m = FlatDnn::new(AblationConfig::tiny());
        m.fit(&ds.plans.iter().collect::<Vec<_>>());
        let preds: std::collections::BTreeSet<u64> =
            ds.plans.iter().map(|p| m.predict(p).to_bits()).collect();
        assert!(preds.len() > ds.plans.len() / 2, "flat predictions collapsed");
    }

    #[test]
    #[should_panic(expected = "fitted")]
    fn predict_before_fit_panics() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 2, 5);
        let m = FlatDnn::new(AblationConfig::tiny());
        let _ = m.predict(&ds.plans[0]);
    }
}
