//! Crate-private helper: lowering an equivalence class of structurally
//! identical plans into aligned evaluation positions (post order, with
//! child indices), shared by the tree-shaped ablation models.

use qpp_plansim::plan::PlanNode;

/// An equivalence class lowered to evaluation order.
pub(crate) struct PositionedClass<'a> {
    /// `nodes[k][b]` = node at position `k` of plan `b`.
    pub nodes: Vec<Vec<&'a PlanNode>>,
    /// `children[k]` = positions of position `k`'s children.
    pub children: Vec<Vec<usize>>,
}

impl<'a> PositionedClass<'a> {
    /// Lowers `roots` (structurally identical trees).
    ///
    /// # Panics
    /// Panics if `roots` is empty or structures diverge.
    pub(crate) fn lower(roots: &[&'a PlanNode]) -> PositionedClass<'a> {
        assert!(!roots.is_empty(), "empty class");
        let lists: Vec<Vec<&PlanNode>> = roots.iter().map(|r| r.postorder()).collect();
        let n = lists[0].len();
        for l in &lists {
            assert_eq!(l.len(), n, "class members must share structure");
        }

        fn index(node: &PlanNode, next: &mut usize, out: &mut Vec<Vec<usize>>) -> usize {
            let kids: Vec<usize> = node.children.iter().map(|c| index(c, next, out)).collect();
            let me = *next;
            *next += 1;
            out[me] = kids;
            me
        }
        let mut children = vec![Vec::new(); n];
        let mut counter = 0usize;
        index(roots[0], &mut counter, &mut children);
        debug_assert_eq!(counter, n);

        // Positions are transposed: nodes[k][b].
        let nodes: Vec<Vec<&PlanNode>> = (0..n)
            .map(|k| {
                let kind = lists[0][k].op.kind();
                lists
                    .iter()
                    .map(|l| {
                        assert_eq!(l[k].op.kind(), kind, "class members must share structure");
                        l[k]
                    })
                    .collect()
            })
            .collect();

        PositionedClass { nodes, children }
    }

    /// Number of positions per plan.
    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of plans in the class.
    pub(crate) fn batch(&self) -> usize {
        self.nodes[0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    #[test]
    fn lowering_matches_postorder() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 10, 1);
        let root = &ds.plans[0].root;
        let pc = PositionedClass::lower(&[root]);
        assert_eq!(pc.len(), root.node_count());
        assert_eq!(pc.batch(), 1);
        // Root is last; its children indices point below it.
        let last = pc.len() - 1;
        for &c in &pc.children[last] {
            assert!(c < last);
        }
        // Child counts match arities.
        for (k, kids) in pc.children.iter().enumerate() {
            assert_eq!(kids.len(), pc.nodes[k][0].op.kind().arity());
        }
    }
}
