//! The tree-structured recurrent baseline the paper's §3 argues against.
//!
//! > "while previous work in the field of machine learning has examined
//! > applying deep neural networks to sequential \[14\] or tree-structured
//! > [43, 49] data, none of these approaches are ideal for query
//! > performance prediction."
//!
//! [`TreeLstm`] is the strongest member of that family: a child-sum
//! Tree-LSTM (\[49\], Tai et al.) over the sparse concatenated featurization,
//! with a shared linear readout predicting each node's latency from its
//! hidden state. It is trained with the same per-operator supervision as
//! QPPNet. The architectural differences under test:
//!
//! * one shared cell for all operator families (heterogeneity is pushed
//!   into the sparse input, as §3 describes);
//! * gated, *mixing* information flow — the child-sum structure lets a
//!   node's representation blend freely across branches, in tension with
//!   the branch-isolation property §3 identifies;
//! * a bounded (`tanh`) hidden state carrying all performance information,
//!   rather than QPPNet's unbounded latency channel + opaque data vector.

use crate::sparse_features::SparseFeaturizer;
use crate::tree_pos::PositionedClass;
use crate::AblationConfig;
use qpp_baselines::LatencyModel;
use qpp_nn::lstm::LstmNodeCache;
use qpp_nn::{Activation, Dense, Init, Matrix, Optimizer, Sgd, TreeLstmCell};
use qpp_plansim::catalog::Catalog;
use qpp_plansim::features::Whitener;
use qpp_plansim::plan::{Plan, PlanNode};
use qppnet::config::TargetCodec;
use qppnet::equivalence_classes;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Fitted {
    whitener: Whitener,
    codec: TargetCodec,
    cell: TreeLstmCell,
    readout: Dense,
}

/// The §3 tree-structured recurrent baseline, as a trainable
/// [`LatencyModel`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeLstm {
    config: AblationConfig,
    sparse: SparseFeaturizer,
    fitted: Option<Fitted>,
}

impl TreeLstm {
    /// Creates an untrained model for plans generated against `catalog`.
    pub fn new(config: AblationConfig, catalog: &Catalog) -> TreeLstm {
        TreeLstm { config, sparse: SparseFeaturizer::new(catalog), fitted: None }
    }

    /// Total trainable parameters (0 before fitting).
    pub fn num_params(&self) -> usize {
        self.fitted
            .as_ref()
            .map(|f| f.cell.num_params() + f.readout.num_params())
            .unwrap_or(0)
    }

    /// Forward pass over a lowered class: per-position LSTM caches plus
    /// per-position readout caches `(h_input, z, latency_pred)`.
    fn forward_class(
        sparse: &SparseFeaturizer,
        fitted: &Fitted,
        pc: &PositionedClass<'_>,
    ) -> (Vec<LstmNodeCache>, Vec<(Matrix, Matrix)>) {
        let batch = pc.batch();
        let mut lstm_caches: Vec<LstmNodeCache> = Vec::with_capacity(pc.len());
        let mut readout_caches = Vec::with_capacity(pc.len());
        for k in 0..pc.len() {
            let mut x = Matrix::zeros(batch, sparse.total_size());
            for (b, node) in pc.nodes[k].iter().enumerate() {
                let v = sparse.featurize(&fitted.whitener, node);
                x.row_mut(b).copy_from_slice(&v);
            }
            let children: Vec<(&Matrix, &Matrix)> = pc.children[k]
                .iter()
                .map(|&c| {
                    let cache = &lstm_caches[c];
                    (cache.hidden(), cache.memory())
                })
                .collect();
            let cache = fitted.cell.forward(&x, &children);
            let (z, a) = fitted.readout.forward_cached(cache.hidden());
            readout_caches.push((z, a));
            lstm_caches.push(cache);
        }
        (lstm_caches, readout_caches)
    }
}

impl LatencyModel for TreeLstm {
    fn name(&self) -> &'static str {
        "Tree-LSTM"
    }

    fn fit(&mut self, plans: &[&Plan]) {
        assert!(!plans.is_empty(), "cannot fit on zero plans");
        let cfg = self.config.clone();
        let sparse = self.sparse.clone();
        let whitener = sparse.fit_whitener(plans.iter().copied());
        let mut latencies = Vec::new();
        for p in plans {
            p.root.visit_postorder(&mut |n| latencies.push(n.actual.latency_ms));
        }
        let codec = TargetCodec::fit(cfg.target_transform, latencies);

        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        let cell = TreeLstmCell::new(sparse.total_size(), cfg.hidden_units, &mut rng);
        let readout =
            Dense::new(cfg.hidden_units, 1, Activation::Identity, Init::Xavier, &mut rng);
        let mut fitted = Fitted { whitener, codec, cell, readout };
        let mut opt = Sgd::new(cfg.learning_rate, cfg.momentum);

        let hidden = cfg.hidden_units;
        let mut order: Vec<usize> = (0..plans.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                fitted.cell.zero_grad();
                fitted.readout.zero_grad();
                let mut total_ops = 0usize;
                for (_, members) in
                    equivalence_classes(chunk.iter().map(|&i| (i, &plans[i].root)))
                {
                    let roots: Vec<&PlanNode> =
                        members.iter().map(|&i| &plans[i].root).collect();
                    let pc = PositionedClass::lower(&roots);
                    let (lstm_caches, readout_caches) =
                        Self::forward_class(&sparse, &fitted, &pc);
                    let batch = pc.batch();
                    total_ops += pc.len() * batch;

                    // Per-position hidden/memory gradient accumulators.
                    let mut dh: Vec<Matrix> =
                        (0..pc.len()).map(|_| Matrix::zeros(batch, hidden)).collect();
                    let mut dm: Vec<Matrix> =
                        (0..pc.len()).map(|_| Matrix::zeros(batch, hidden)).collect();

                    // Readout loss at every position (same supervision as
                    // QPPNet's Equation 7).
                    for k in 0..pc.len() {
                        let (z, a) = &readout_caches[k];
                        let mut d_out = Matrix::zeros(batch, 1);
                        for (b, node) in pc.nodes[k].iter().enumerate() {
                            let err =
                                a.get(b, 0) - fitted.codec.encode(node.actual.latency_ms);
                            d_out.set(b, 0, 2.0 * err);
                        }
                        let d_hidden =
                            fitted.readout.backward(lstm_caches[k].hidden(), z, &d_out);
                        dh[k].add_scaled(&d_hidden, 1.0);
                    }

                    // Reverse tree traversal: parents push gradients into
                    // their children's (h, m).
                    for k in (0..pc.len()).rev() {
                        let (_, child_grads) =
                            fitted.cell.backward(&lstm_caches[k], &dh[k], &dm[k]);
                        for (i, &c) in pc.children[k].iter().enumerate() {
                            dh[c].add_scaled(&child_grads[i].0, 1.0);
                            dm[c].add_scaled(&child_grads[i].1, 1.0);
                        }
                    }
                }
                let scale = 1.0 / total_ops.max(1) as f32;
                fitted.cell.scale_grad(scale);
                fitted.readout.scale_grad(scale);
                fitted.cell.apply_grads(&mut opt, 0);
                opt.step_matrix(100, &mut fitted.readout.w, &fitted.readout.gw);
                opt.step_vec(101, &mut fitted.readout.b, &fitted.readout.gb);
            }
        }
        self.fitted = Some(fitted);
    }

    fn predict(&self, plan: &Plan) -> f64 {
        self.predict_batch(&[plan])[0]
    }

    fn predict_batch(&self, plans: &[&Plan]) -> Vec<f64> {
        let fitted = self.fitted.as_ref().expect("model must be fitted before prediction");
        let mut out = vec![0.0f64; plans.len()];
        for (_, members) in
            equivalence_classes(plans.iter().enumerate().map(|(i, p)| (i, &p.root)))
        {
            let roots: Vec<&PlanNode> = members.iter().map(|&i| &plans[i].root).collect();
            let pc = PositionedClass::lower(&roots);
            let (_, readout_caches) = Self::forward_class(&self.sparse, fitted, &pc);
            let (_, root_out) = &readout_caches[pc.len() - 1];
            for (b, &i) in members.iter().enumerate() {
                out[i] = fitted.codec.decode(root_out.get(b, 0));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    fn tiny() -> AblationConfig {
        AblationConfig {
            hidden_units: 16,
            epochs: 20,
            learning_rate: 5e-3,
            ..AblationConfig::tiny()
        }
    }

    #[test]
    fn fit_predict_produces_finite_latencies() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 40, 21);
        let mut m = TreeLstm::new(tiny(), &ds.catalog);
        m.fit(&ds.plans.iter().take(30).collect::<Vec<_>>());
        assert!(m.num_params() > 0);
        for p in ds.plans.iter().skip(30) {
            let pred = m.predict(p);
            assert!(pred.is_finite() && pred >= 0.0, "{pred}");
        }
    }

    #[test]
    fn training_reduces_error() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 60, 22);
        let (train, test) = ds.plans.split_at(48);
        let train: Vec<&Plan> = train.iter().collect();
        let eval = |m: &TreeLstm| {
            let preds: Vec<f64> = test.iter().map(|p| m.predict(p)).collect();
            let actual: Vec<f64> = test.iter().map(|p| p.latency_ms()).collect();
            qppnet::evaluate(&actual, &preds).mae_ms
        };
        let mut long = TreeLstm::new(AblationConfig { epochs: 25, ..tiny() }, &ds.catalog);
        long.fit(&train);
        let mut short = TreeLstm::new(AblationConfig { epochs: 1, ..tiny() }, &ds.catalog);
        short.fit(&train);
        assert!(eval(&long) < eval(&short), "{} vs {}", eval(&long), eval(&short));
    }

    #[test]
    fn batch_predictions_match_single_predictions() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 25, 23);
        let mut m = TreeLstm::new(tiny(), &ds.catalog);
        let refs: Vec<&Plan> = ds.plans.iter().collect();
        m.fit(&refs);
        let batched = m.predict_batch(&refs);
        for (p, &b) in refs.iter().zip(&batched) {
            let single = m.predict(p);
            let rel = (single - b).abs() / (1.0 + b.abs());
            assert!(rel < 1e-4, "{single} vs {b}");
        }
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 15, 24);
        let mut m = TreeLstm::new(tiny(), &ds.catalog);
        m.fit(&ds.plans.iter().collect::<Vec<_>>());
        let json = serde_json::to_string(&m).unwrap();
        let back: TreeLstm = serde_json::from_str(&json).unwrap();
        assert_eq!(m.predict(&ds.plans[0]), back.predict(&ds.plans[0]));
    }
}
