//! The sparse shared-unit DNN of the paper's §3.
//!
//! This model keeps everything about QPPNet's wiring — tree-isomorphic
//! evaluation, `(latency ⌢ data)` outputs flowing upward, supervision of
//! every operator — but replaces the per-family neural units with **one
//! shared MLP** whose input is the sparse concatenation of all family
//! feature vectors ([`crate::SparseFeaturizer`]). It is the "concatenate
//! vectors together for each relational operator" strawman, §3's proposed
//! naive fix for heterogeneous tree nodes, whose sparsity the paper
//! predicts will hurt.
//!
//! Keeping all other factors equal makes the comparison sharp: any gap
//! between this model and QPPNet is attributable to per-family weights vs.
//! one sparse shared unit.

use crate::sparse_features::SparseFeaturizer;
use crate::tree_pos::PositionedClass;
use crate::AblationConfig;
use qpp_baselines::LatencyModel;
use qpp_nn::{Activation, Init, Matrix, Mlp, MlpCache, Sgd};
use qpp_plansim::features::Whitener;
use qpp_plansim::plan::{Plan, PlanNode};
use qppnet::config::TargetCodec;
use qppnet::equivalence_classes;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Maximum operator arity (joins have two children).
const MAX_ARITY: usize = 2;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Fitted {
    whitener: Whitener,
    codec: TargetCodec,
    unit: Mlp,
}

/// The §3 sparse shared-unit model, as a trainable [`LatencyModel`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SparseUnitDnn {
    config: AblationConfig,
    sparse: SparseFeaturizer,
    fitted: Option<Fitted>,
}

impl SparseUnitDnn {
    /// Creates an untrained model for plans generated against `catalog`.
    pub fn new(config: AblationConfig, catalog: &qpp_plansim::catalog::Catalog) -> SparseUnitDnn {
        SparseUnitDnn { config, sparse: SparseFeaturizer::new(catalog), fitted: None }
    }

    /// Total trainable parameters (0 before fitting).
    pub fn num_params(&self) -> usize {
        self.fitted.as_ref().map(|f| f.unit.num_params()).unwrap_or(0)
    }

    /// Forward pass over one lowered class; returns per-position caches.
    fn forward_class(
        sparse: &SparseFeaturizer,
        fitted: &Fitted,
        pc: &PositionedClass<'_>,
        d1: usize,
    ) -> Vec<MlpCache> {
        let batch = pc.batch();
        let zeros = Matrix::zeros(batch, d1);
        let mut caches: Vec<MlpCache> = Vec::with_capacity(pc.len());
        for k in 0..pc.len() {
            let mut features = Matrix::zeros(batch, sparse.total_size());
            for (b, node) in pc.nodes[k].iter().enumerate() {
                let v = sparse.featurize(&fitted.whitener, node);
                features.row_mut(b).copy_from_slice(&v);
            }
            // Fixed two child slots; absent children stay zero.
            let kids = &pc.children[k];
            let slot = |i: usize| -> &Matrix {
                kids.get(i).map(|&c| caches[c].output()).unwrap_or(&zeros)
            };
            let input = Matrix::hcat(&[&features, slot(0), slot(1)]);
            caches.push(fitted.unit.forward_cached(&input));
        }
        caches
    }

    /// Encoded-space prediction error (prediction − target) of position
    /// `k`, batch lane `b` — the quantity `fit` drives to zero. Shared
    /// with the test suite so "training reduces error" measures exactly
    /// the trained objective.
    fn position_error(
        fitted: &Fitted,
        caches: &[MlpCache],
        pc: &PositionedClass<'_>,
        k: usize,
        b: usize,
    ) -> f32 {
        caches[k].output().get(b, 0) - fitted.codec.encode(pc.nodes[k][b].actual.latency_ms)
    }

    fn predict_class(
        sparse: &SparseFeaturizer,
        fitted: &Fitted,
        pc: &PositionedClass<'_>,
        d1: usize,
    ) -> Vec<f64> {
        let caches = Self::forward_class(sparse, fitted, pc, d1);
        let root = pc.len() - 1;
        (0..pc.batch())
            .map(|b| fitted.codec.decode(caches[root].output().get(b, 0)))
            .collect()
    }
}

impl LatencyModel for SparseUnitDnn {
    fn name(&self) -> &'static str {
        "Sparse shared unit"
    }

    fn fit(&mut self, plans: &[&Plan]) {
        assert!(!plans.is_empty(), "cannot fit on zero plans");
        let cfg = self.config.clone();
        let d1 = cfg.data_size + 1;

        let sparse = self.sparse.clone();
        let whitener = sparse.fit_whitener(plans.iter().copied());
        let mut latencies = Vec::new();
        for p in plans {
            p.root.visit_postorder(&mut |n| latencies.push(n.actual.latency_ms));
        }
        let codec = TargetCodec::fit(cfg.target_transform, latencies);

        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        let in_dim = sparse.total_size() + MAX_ARITY * d1;
        let mut dims = vec![in_dim];
        dims.extend(std::iter::repeat_n(cfg.hidden_units, cfg.hidden_layers));
        dims.push(d1);
        let unit = Mlp::new(&dims, Activation::Relu, Activation::Identity, Init::He, &mut rng);
        let mut fitted = Fitted { whitener, codec, unit };
        let mut opt = Sgd::new(cfg.learning_rate, cfg.momentum);

        let mut order: Vec<usize> = (0..plans.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                fitted.unit.zero_grad();
                let mut total_ops = 0usize;
                for (_, members) in
                    equivalence_classes(chunk.iter().map(|&i| (i, &plans[i].root)))
                {
                    let roots: Vec<&PlanNode> =
                        members.iter().map(|&i| &plans[i].root).collect();
                    let pc = PositionedClass::lower(&roots);
                    let caches = Self::forward_class(&sparse, &fitted, &pc, d1);

                    // SSE gradients on the latency output of every position.
                    let batch = pc.batch();
                    let mut grads: Vec<Matrix> =
                        (0..pc.len()).map(|_| Matrix::zeros(batch, d1)).collect();
                    for (k, grad) in grads.iter_mut().enumerate() {
                        for b in 0..batch {
                            let err = Self::position_error(&fitted, &caches, &pc, k, b);
                            grad.set(b, 0, 2.0 * err);
                        }
                    }
                    total_ops += pc.len() * batch;

                    // Reverse pass: route input gradients into child slots.
                    let feat_w = sparse.total_size();
                    for k in (0..pc.len()).rev() {
                        if grads[k].max_abs() == 0.0 {
                            continue;
                        }
                        let d_in = fitted.unit.backward(&caches[k], &grads[k]);
                        for (i, &c) in pc.children[k].iter().enumerate() {
                            let slice = d_in.slice_cols(feat_w + i * d1, d1);
                            grads[c].add_scaled(&slice, 1.0);
                        }
                    }
                }
                fitted.unit.scale_grad(1.0 / total_ops.max(1) as f32);
                if cfg.weight_decay > 0.0 {
                    for layer in fitted.unit.layers_mut() {
                        let (gw, w) = (&mut layer.gw, &layer.w);
                        gw.add_scaled(w, cfg.weight_decay);
                    }
                }
                fitted.unit.apply_grads(&mut opt, 0);
            }
        }
        self.fitted = Some(fitted);
    }

    fn predict(&self, plan: &Plan) -> f64 {
        self.predict_batch(&[plan])[0]
    }

    fn predict_batch(&self, plans: &[&Plan]) -> Vec<f64> {
        let fitted = self.fitted.as_ref().expect("model must be fitted before prediction");
        let d1 = self.config.data_size + 1;
        let mut out = vec![0.0f64; plans.len()];
        for (_, members) in
            equivalence_classes(plans.iter().enumerate().map(|(i, p)| (i, &p.root)))
        {
            let roots: Vec<&PlanNode> = members.iter().map(|&i| &plans[i].root).collect();
            let pc = PositionedClass::lower(&roots);
            let preds = Self::predict_class(&self.sparse, fitted, &pc, d1);
            for (&i, p) in members.iter().zip(preds) {
                out[i] = p;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    #[test]
    fn fit_predict_produces_finite_latencies() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 50, 11);
        let mut m = SparseUnitDnn::new(AblationConfig::tiny(), &ds.catalog);
        m.fit(&ds.plans.iter().take(40).collect::<Vec<_>>());
        assert!(m.num_params() > 0);
        for p in ds.plans.iter().skip(40) {
            let pred = m.predict(p);
            assert!(pred.is_finite() && pred >= 0.0, "{pred}");
        }
    }

    /// Mean encoded-space squared error over *all* supervised operator
    /// positions — the objective `fit` actually minimizes.
    fn train_objective(m: &SparseUnitDnn, plans: &[&Plan]) -> f64 {
        let fitted = m.fitted.as_ref().expect("fitted");
        let d1 = m.config.data_size + 1;
        let mut sse = 0.0f64;
        let mut n = 0usize;
        for (_, members) in
            equivalence_classes(plans.iter().enumerate().map(|(i, p)| (i, &p.root)))
        {
            let roots: Vec<&PlanNode> = members.iter().map(|&i| &plans[i].root).collect();
            let pc = PositionedClass::lower(&roots);
            let caches = SparseUnitDnn::forward_class(&m.sparse, fitted, &pc, d1);
            for k in 0..pc.len() {
                for b in 0..pc.batch() {
                    let err = SparseUnitDnn::position_error(fitted, &caches, &pc, k, b);
                    sse += err as f64 * err as f64;
                    n += 1;
                }
            }
        }
        sse / n.max(1) as f64
    }

    #[test]
    fn training_reduces_error() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 80, 12);
        let (train, _test) = ds.plans.split_at(64);
        let train: Vec<&Plan> = train.iter().collect();
        // Compare the objective `fit` minimizes: per-operator encoded SSE.
        // (Root-latency MAE is *not* monotone in training for this §3
        // strawman — the shared unit trades root accuracy for the majority
        // leaf positions, which is exactly the pathology the paper
        // predicts; asserting on it made the test flaky.)
        let mut long =
            SparseUnitDnn::new(AblationConfig { epochs: 25, ..AblationConfig::tiny() }, &ds.catalog);
        long.fit(&train);
        let mut short =
            SparseUnitDnn::new(AblationConfig { epochs: 1, ..AblationConfig::tiny() }, &ds.catalog);
        short.fit(&train);
        let (long_obj, short_obj) =
            (train_objective(&long, &train), train_objective(&short, &train));
        assert!(long_obj < short_obj, "{long_obj} vs {short_obj}");
    }

    #[test]
    fn batch_predictions_match_single_predictions() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 30, 13);
        let mut m = SparseUnitDnn::new(AblationConfig::tiny(), &ds.catalog);
        let refs: Vec<&Plan> = ds.plans.iter().collect();
        m.fit(&refs);
        let batched = m.predict_batch(&refs);
        for (p, &b) in refs.iter().zip(&batched) {
            let single = m.predict(p);
            let rel = (single - b).abs() / (1.0 + b.abs());
            assert!(rel < 1e-4, "{single} vs {b}");
        }
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 20, 14);
        let mut m = SparseUnitDnn::new(AblationConfig::tiny(), &ds.catalog);
        m.fit(&ds.plans.iter().collect::<Vec<_>>());
        let json = serde_json::to_string(&m).unwrap();
        let back: SparseUnitDnn = serde_json::from_str(&json).unwrap();
        assert_eq!(m.predict(&ds.plans[0]), back.predict(&ds.plans[0]));
    }
}
