//! The sparse concatenated featurization of the paper's §3.
//!
//! > "if a join operator has 9 properties and a filter operator has 7
//! > properties, one could represent either a join or a filter operator
//! > with a vector of size 9 + 7 = 16 properties … The problem with this
//! > solution is sparsity."
//!
//! [`SparseFeaturizer`] lays the per-family Table-2 vectors end to end:
//! a node's sparse vector has its family's segment populated (whitened
//! exactly as QPPNet's features are) and every other segment zero. The
//! resulting width is the *sum* of all family widths — the sparsity the
//! paper warns about, made concrete and measurable.

use qpp_plansim::catalog::Catalog;
use qpp_plansim::features::{Featurizer, Whitener};
use qpp_plansim::operators::OpKind;
use qpp_plansim::plan::{Plan, PlanNode};
use serde::{Deserialize, Serialize};

/// Maps plan nodes to sparse concatenated feature vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SparseFeaturizer {
    featurizer: Featurizer,
    offsets: Vec<usize>,
    total: usize,
}

impl SparseFeaturizer {
    /// Builds the sparse layout for `catalog`.
    pub fn new(catalog: &Catalog) -> SparseFeaturizer {
        let featurizer = Featurizer::new(catalog);
        let mut offsets = Vec::with_capacity(OpKind::ALL.len());
        let mut total = 0usize;
        for kind in OpKind::ALL {
            offsets.push(total);
            total += featurizer.feature_size(kind);
        }
        SparseFeaturizer { featurizer, offsets, total }
    }

    /// Width of the sparse vector (sum of all family widths).
    pub fn total_size(&self) -> usize {
        self.total
    }

    /// The underlying dense per-family featurizer.
    pub fn dense(&self) -> &Featurizer {
        &self.featurizer
    }

    /// Offset of `kind`'s segment inside the sparse vector.
    pub fn offset(&self, kind: OpKind) -> usize {
        self.offsets[kind.index()]
    }

    /// Fits whitening statistics on the training plans (delegates to the
    /// dense featurization; zeros outside a node's segment are never
    /// whitened, mirroring how one-hots are handled).
    pub fn fit_whitener<'a>(&self, plans: impl IntoIterator<Item = &'a Plan>) -> Whitener {
        Whitener::fit(&self.featurizer, plans)
    }

    /// The sparse (whitened) feature vector for one node.
    pub fn featurize(&self, whitener: &Whitener, node: &PlanNode) -> Vec<f32> {
        let kind = node.op.kind();
        let mut out = vec![0.0f32; self.total];
        let dense = whitener.features(&self.featurizer, node);
        let off = self.offset(kind);
        out[off..off + dense.len()].copy_from_slice(&dense);
        out
    }

    /// Fraction of positions that are zero for a node of `kind` — the
    /// sparsity §3 warns about (reported by the ablation bench).
    pub fn sparsity(&self, kind: OpKind) -> f64 {
        1.0 - self.featurizer.feature_size(kind) as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    fn setup() -> (Dataset, SparseFeaturizer, Whitener) {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 20, 3);
        let sf = SparseFeaturizer::new(&ds.catalog);
        let wh = sf.fit_whitener(ds.plans.iter());
        (ds, sf, wh)
    }

    #[test]
    fn total_is_sum_of_family_sizes() {
        let (_, sf, _) = setup();
        let sum: usize =
            OpKind::ALL.iter().map(|&k| sf.dense().feature_size(k)).sum();
        assert_eq!(sf.total_size(), sum);
    }

    #[test]
    fn segments_do_not_overlap() {
        let (_, sf, _) = setup();
        for w in OpKind::ALL.windows(2) {
            assert_eq!(
                sf.offset(w[0]) + sf.dense().feature_size(w[0]),
                sf.offset(w[1]),
                "{:?} and {:?} segments must be adjacent",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn only_the_nodes_family_segment_is_populated() {
        let (ds, sf, wh) = setup();
        let node = &ds.plans[0].root.postorder()[0]; // a scan leaf
        let kind = node.op.kind();
        let v = sf.featurize(&wh, node);
        assert_eq!(v.len(), sf.total_size());
        let off = sf.offset(kind);
        let width = sf.dense().feature_size(kind);
        for (i, &x) in v.iter().enumerate() {
            if i < off || i >= off + width {
                assert_eq!(x, 0.0, "position {i} outside {kind:?} segment must be zero");
            }
        }
        // The populated segment equals the whitened dense vector.
        assert_eq!(&v[off..off + width], wh.features(sf.dense(), node).as_slice());
    }

    #[test]
    fn sparsity_is_high_for_every_family() {
        // The paper's point: with many operator types the sparse vectors
        // are mostly zeros.
        let (_, sf, _) = setup();
        for kind in OpKind::ALL {
            assert!(sf.sparsity(kind) > 0.5, "{kind:?} sparsity {}", sf.sparsity(kind));
        }
    }
}
