//! # qppnet — plan-structured deep neural networks for query performance prediction
//!
//! A faithful Rust implementation of *Plan-Structured Deep Neural Network
//! Models for Query Performance Prediction* (Marcus & Papaemmanouil,
//! VLDB 2019, arXiv:1902.00132).
//!
//! The model assigns each logical operator family (scan, join, sort, …) its
//! own small MLP — a **neural unit** ([`unit::UnitSet`]) — which maps the
//! operator's `EXPLAIN` features plus its children's outputs to a
//! `(latency, data-vector)` pair. Units are assembled into a network
//! **isomorphic to the query plan**; the root's latency output is the
//! query's predicted latency. Training (§5, [`train::Trainer`])
//! supervises the latency output of *every* operator while leaving the
//! `d`-dimensional data vectors free ("opaque" learned features), and
//! implements both §5.1 optimizations — by default *generalized onto the
//! serving engine's wavefront layout*
//! ([`train_program::ProgramTape`], DESIGN.md §9): the whole shuffled
//! batch, mixed shapes and all, runs as one gemm per operator family per
//! wavefront in each direction, with per-class
//! [`tree::TreeBatch`] evaluation kept as the differential oracle and the
//! §5.1 ablation layout:
//!
//! * **plan-based batch training** — vectorization across plans;
//!   per-batch gradients are normalized by total operator count so the
//!   estimate stays unbiased (the tape batches across *all* shapes at
//!   once, subsuming the per-class grouping);
//! * **information sharing in subtrees** — bottom-up evaluation computes
//!   each operator's output exactly once.
//!
//! Serving goes through a separate engine: [`infer::PlanProgram`] compiles
//! an arbitrary *heterogeneous* batch of plans into wavefronts keyed by
//! `(height-from-leaf, operator family)` — one gemm per family per
//! wavefront across every plan, with child outputs routed by row
//! gather/scatter through preallocated buffers. On multicore hosts the
//! compiled schedule runs across a worker-thread pool
//! ([`infer::PlanProgram::run_parallel`],
//! [`QppNet::predict_compiled_with`]) with bit-identical results at any
//! thread count. [`QppNet::predict_batch`] uses the wavefront engine by
//! default; the per-class path remains available as
//! [`infer::InferEngine::Classes`] for differential testing and
//! benchmarking. For live query streams, [`QppNet::serve_stream`] opens
//! an *incremental* session ([`stream::ProgramBuilder`]): plans are
//! admitted and retired one at a time against the resident wavefront
//! program — feature rows cached, identical subtrees shared — with
//! predictions bit-identical to recompiling the batch from scratch.
//! [`QppNet::serve_sharded`] scales that to shard-per-core serving
//! ([`stream::ShardedStream`]): admissions route by content hash to
//! per-shard builders and proceed concurrently on the process-wide
//! resident executor ([`qpp_nn::Executor`]), a micro-batching front door
//! ([`stream::MicroBatcher`]) coalesces concurrent predict requests into
//! one heterogeneous run, and multiple fitted models co-host on the same
//! pool via [`Tenants`], keyed by [`QppNet::fingerprint`].
//!
//! Quick start (see `examples/quickstart.rs` for a narrated version):
//!
//! ```
//! use qppnet::{QppConfig, QppNet};
//! use qpp_plansim::prelude::*;
//!
//! let ds = Dataset::generate(Workload::TpcH, 1.0, 60, 7);
//! let split = ds.paper_split(0);
//! let mut model = QppNet::new(QppConfig::tiny(), &ds.catalog);
//! model.fit(&ds.select(&split.train));
//! println!("relative error: {:.1}%",
//!          model.evaluate(&ds.select(&split.test)).relative_error_pct());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod alloc;
pub mod analysis;
pub mod config;
pub mod importance;
pub mod infer;
pub mod lower;
pub mod metrics;
pub mod model;
pub mod serve;
pub mod stream;
pub mod train;
pub mod train_program;
pub mod tree;
pub mod unit;

pub use analysis::{
    calibration, error_by_family, error_by_height, error_by_latency_decile, CalibrationBucket,
    DecileErrors, FamilyErrors, HeightErrors, StratifiedReport,
};
pub use config::{LrSchedule, OptMode, OptimizerKind, QppConfig, TargetTransform};
pub use importance::{permutation_importance, FeatureImportance};
pub use infer::{predict_plans_with, InferEngine, PlanProgram};
pub use metrics::{evaluate, r_cdf, r_factor, Metrics};
pub use model::{QppNet, Tenants};
pub use serve::{Client, ServeAddr, ServeConfig, Server};
pub use stream::{
    plan_shard_hash, MicroBatchStats, MicroBatcher, OneshotRun, PlanId, ProgramBuilder,
    ProgramStats, ScratchPlan, ShardedStream,
};
pub use train::{predict_plans, TrainHistory, TrainStats, Trainer};
pub use train_program::ProgramTape;
pub use tree::{equivalence_classes, Supervision, TreeBatch};
pub use unit::UnitSet;
