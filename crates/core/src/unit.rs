//! Operator-level neural units (paper §4.1).
//!
//! One [`Mlp`] per logical operator family: the scan unit, the join unit,
//! the sort unit, … Every instance of a family — anywhere in any plan —
//! shares that family's weights (the paper's weight-sharing / recurrent
//! property, §4.3). A unit maps
//!
//! ```text
//! [ F(op) ⌢ child₁(d+1) ⌢ … ⌢ childₖ(d+1) ]  →  [ latency ⌢ data(d) ]
//! ```
//!
//! where `F(op)` is the family's Table-2 feature vector and `k` is the
//! family's arity (2 for joins, 1 for unary operators, 0 for scans).

use crate::config::QppConfig;
use qpp_nn::{Activation, Init, Mlp, Optimizer, PackedMlp};
use qpp_plansim::features::Featurizer;
use qpp_plansim::operators::OpKind;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The set of neural units, one per operator family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnitSet {
    units: Vec<Mlp>,
    data_size: usize,
}

impl UnitSet {
    /// Builds units sized for `featurizer`'s feature vectors.
    pub fn new(config: &QppConfig, featurizer: &Featurizer, rng: &mut impl Rng) -> UnitSet {
        let d = config.data_size;
        let units = OpKind::ALL
            .iter()
            .map(|&kind| {
                let in_dim = featurizer.feature_size(kind) + kind.arity() * (d + 1);
                let mut dims = Vec::with_capacity(config.hidden_layers + 2);
                dims.push(in_dim);
                dims.extend(std::iter::repeat_n(config.hidden_units, config.hidden_layers));
                dims.push(d + 1);
                Mlp::new(&dims, Activation::Relu, Activation::Identity, Init::He, rng)
            })
            .collect();
        UnitSet { units, data_size: d }
    }

    /// The data-vector size `d`.
    pub fn data_size(&self) -> usize {
        self.data_size
    }

    /// Output width of every unit (`d + 1`).
    pub fn out_size(&self) -> usize {
        self.data_size + 1
    }

    /// Borrows the unit for an operator family.
    pub fn unit(&self, kind: OpKind) -> &Mlp {
        &self.units[kind.index()]
    }

    /// Mutably borrows the unit for an operator family.
    pub fn unit_mut(&mut self, kind: OpKind) -> &mut Mlp {
        &mut self.units[kind.index()]
    }

    /// Total trainable parameters across all units.
    pub fn num_params(&self) -> usize {
        self.units.iter().map(Mlp::num_params).sum()
    }

    /// Clears accumulated gradients in every unit.
    pub fn zero_grad(&mut self) {
        for u in &mut self.units {
            u.zero_grad();
        }
    }

    /// Scales accumulated gradients in every unit.
    pub fn scale_grad(&mut self, s: f32) {
        for u in &mut self.units {
            u.scale_grad(s);
        }
    }

    /// Adds L2 weight decay (`grad += decay · w`) to every unit's weight
    /// gradients (biases are not decayed).
    pub fn add_weight_decay(&mut self, decay: f32) {
        if decay == 0.0 {
            return;
        }
        for u in &mut self.units {
            for layer in u.layers_mut() {
                let (gw, w) = (&mut layer.gw, &layer.w);
                gw.add_scaled(w, decay);
            }
        }
    }

    /// Applies accumulated gradients via `opt`.
    ///
    /// Each unit gets a disjoint key namespace so optimizer state
    /// (velocities, moments) never collides across units.
    pub fn apply_grads(&mut self, opt: &mut dyn Optimizer) {
        for (i, u) in self.units.iter_mut().enumerate() {
            u.apply_grads(opt, i * 1024);
        }
        opt.end_step();
    }

    /// Zeroes the first-layer weight rows of input positions marked
    /// inactive, so features never seen during training contribute exactly
    /// nothing (instead of random-initialization noise) when they appear
    /// in unseen-template plans. Gradients can still revive the rows if
    /// the features activate during later fine-tuning.
    ///
    /// `active` covers only the *feature* prefix of the unit's input; the
    /// child-output suffix is always live.
    pub fn mask_unused_inputs(&mut self, kind: OpKind, active: &[bool]) {
        let unit = self.unit_mut(kind);
        let layer0 = &mut unit.layers_mut()[0];
        assert!(active.len() <= layer0.w.rows(), "mask longer than input");
        for (row, &is_active) in active.iter().enumerate() {
            if !is_active {
                for col in 0..layer0.w.cols() {
                    layer0.w.set(row, col, 0.0);
                }
            }
        }
    }

    /// Adds another unit set's accumulated gradients into this one's
    /// (the reduction step of data-parallel training).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_grads_from(&mut self, other: &UnitSet) {
        assert_eq!(self.units.len(), other.units.len());
        for (dst, src) in self.units.iter_mut().zip(&other.units) {
            dst.add_grads_from(src);
        }
    }

    /// Copies parameters from another unit set of identical shape
    /// (transfer-learning warm start, paper §8).
    pub fn copy_params_from(&mut self, other: &UnitSet) {
        assert_eq!(self.units.len(), other.units.len());
        for (dst, src) in self.units.iter_mut().zip(&other.units) {
            dst.copy_params_from(src);
        }
    }
}

/// Packed-panel acceleration state for a [`UnitSet`]: one
/// [`PackedMlp`] per operator family, in [`OpKind::ALL`] order. The
/// serving program and training tape run every wavefront gemm against
/// these panels; the `UnitSet` stays the single authoritative (and
/// serialized) parameter store, and packed state is rebuilt from it at
/// compile / weight-update time (see `qpp_nn::packed`).
#[derive(Debug, Clone)]
pub(crate) struct PackedUnits {
    units: Vec<PackedMlp>,
}

impl PackedUnits {
    /// Packs every unit; `with_backward` additionally builds the
    /// transposed panels the training tape's input-gradient gemm needs
    /// (serving packs skip them).
    pub(crate) fn pack(src: &UnitSet, with_backward: bool) -> PackedUnits {
        PackedUnits {
            units: src.units.iter().map(|u| PackedMlp::pack(u, with_backward)).collect(),
        }
    }

    /// Refreshes every packed unit from `src` without reallocating
    /// (called by the training tape after each in-place weight update).
    ///
    /// # Panics
    /// Panics if `src`'s shapes differ from the packed shapes.
    pub(crate) fn repack_from(&mut self, src: &UnitSet) {
        assert_eq!(self.units.len(), src.units.len(), "unit count mismatch");
        for (dst, u) in self.units.iter_mut().zip(&src.units) {
            dst.repack_from(u);
        }
    }

    /// Borrows the packed unit for an operator family.
    pub(crate) fn unit(&self, kind: OpKind) -> &PackedMlp {
        &self.units[kind.index()]
    }

    /// Cheap weight-sample digest of a unit set — shapes plus a few
    /// deterministic weight/bias samples per layer, the same sampling
    /// argument as `QppNet::fitted_fingerprint`: any gradient step
    /// perturbs essentially every parameter, so a small sample tells
    /// weight states apart. O(layers), not O(params) — cheap enough to
    /// compute per run, which is what lets a serving program skip the
    /// O(params) repack on every steady-state run while still refreshing
    /// when the weights actually moved.
    pub(crate) fn weights_digest(src: &UnitSet) -> u64 {
        let mut h = qpp_plansim::util::Fnv1a::new();
        for u in &src.units {
            for layer in u.layers() {
                let (r, c) = (layer.w.rows(), layer.w.cols());
                h.mix(r as u64);
                h.mix(c as u64);
                h.mix(layer.w.get(0, 0).to_bits() as u64);
                h.mix(layer.w.get(r / 2, c / 2).to_bits() as u64);
                h.mix(layer.w.get(r - 1, c - 1).to_bits() as u64);
                h.mix(layer.b[layer.b.len() / 2].to_bits() as u64);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_plansim::catalog::Catalog;
    use rand::SeedableRng;

    fn units() -> (UnitSet, Featurizer) {
        let cat = Catalog::tpch(1.0);
        let fz = Featurizer::new(&cat);
        let cfg = QppConfig::tiny();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        (UnitSet::new(&cfg, &fz, &mut rng), fz)
    }

    #[test]
    fn one_unit_per_family_with_correct_dims() {
        let (us, fz) = units();
        let d = us.data_size();
        for kind in OpKind::ALL {
            let u = us.unit(kind);
            assert_eq!(u.in_dim(), fz.feature_size(kind) + kind.arity() * (d + 1), "{kind:?}");
            assert_eq!(u.out_dim(), d + 1);
        }
    }

    #[test]
    fn join_unit_takes_two_children() {
        let (us, fz) = units();
        let d = us.data_size();
        assert_eq!(
            us.unit(OpKind::Join).in_dim(),
            fz.feature_size(OpKind::Join) + 2 * (d + 1)
        );
        assert_eq!(us.unit(OpKind::Scan).in_dim(), fz.feature_size(OpKind::Scan));
    }

    #[test]
    fn param_count_is_substantial() {
        let (us, _) = units();
        assert!(us.num_params() > 10_000);
    }

    #[test]
    fn serde_round_trip() {
        let (us, _) = units();
        let json = serde_json::to_string(&us).unwrap();
        let back: UnitSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_params(), us.num_params());
        assert_eq!(back.data_size(), us.data_size());
    }
}
