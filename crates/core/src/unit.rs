//! Operator-level neural units (paper §4.1).
//!
//! One [`Mlp`] per logical operator family: the scan unit, the join unit,
//! the sort unit, … Every instance of a family — anywhere in any plan —
//! shares that family's weights (the paper's weight-sharing / recurrent
//! property, §4.3). A unit maps
//!
//! ```text
//! [ F(op) ⌢ child₁(d+1) ⌢ … ⌢ childₖ(d+1) ]  →  [ latency ⌢ data(d) ]
//! ```
//!
//! where `F(op)` is the family's Table-2 feature vector and `k` is the
//! family's arity (2 for joins, 1 for unary operators, 0 for scans).

use crate::config::QppConfig;
use qpp_nn::{Activation, Init, Mlp, Optimizer};
use qpp_plansim::features::Featurizer;
use qpp_plansim::operators::OpKind;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The set of neural units, one per operator family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnitSet {
    units: Vec<Mlp>,
    data_size: usize,
}

impl UnitSet {
    /// Builds units sized for `featurizer`'s feature vectors.
    pub fn new(config: &QppConfig, featurizer: &Featurizer, rng: &mut impl Rng) -> UnitSet {
        let d = config.data_size;
        let units = OpKind::ALL
            .iter()
            .map(|&kind| {
                let in_dim = featurizer.feature_size(kind) + kind.arity() * (d + 1);
                let mut dims = Vec::with_capacity(config.hidden_layers + 2);
                dims.push(in_dim);
                dims.extend(std::iter::repeat_n(config.hidden_units, config.hidden_layers));
                dims.push(d + 1);
                Mlp::new(&dims, Activation::Relu, Activation::Identity, Init::He, rng)
            })
            .collect();
        UnitSet { units, data_size: d }
    }

    /// The data-vector size `d`.
    pub fn data_size(&self) -> usize {
        self.data_size
    }

    /// Output width of every unit (`d + 1`).
    pub fn out_size(&self) -> usize {
        self.data_size + 1
    }

    /// Borrows the unit for an operator family.
    pub fn unit(&self, kind: OpKind) -> &Mlp {
        &self.units[kind.index()]
    }

    /// Mutably borrows the unit for an operator family.
    pub fn unit_mut(&mut self, kind: OpKind) -> &mut Mlp {
        &mut self.units[kind.index()]
    }

    /// Total trainable parameters across all units.
    pub fn num_params(&self) -> usize {
        self.units.iter().map(Mlp::num_params).sum()
    }

    /// Clears accumulated gradients in every unit.
    pub fn zero_grad(&mut self) {
        for u in &mut self.units {
            u.zero_grad();
        }
    }

    /// Scales accumulated gradients in every unit.
    pub fn scale_grad(&mut self, s: f32) {
        for u in &mut self.units {
            u.scale_grad(s);
        }
    }

    /// Adds L2 weight decay (`grad += decay · w`) to every unit's weight
    /// gradients (biases are not decayed).
    pub fn add_weight_decay(&mut self, decay: f32) {
        if decay == 0.0 {
            return;
        }
        for u in &mut self.units {
            for layer in u.layers_mut() {
                let (gw, w) = (&mut layer.gw, &layer.w);
                gw.add_scaled(w, decay);
            }
        }
    }

    /// Applies accumulated gradients via `opt`.
    ///
    /// Each unit gets a disjoint key namespace so optimizer state
    /// (velocities, moments) never collides across units.
    pub fn apply_grads(&mut self, opt: &mut dyn Optimizer) {
        for (i, u) in self.units.iter_mut().enumerate() {
            u.apply_grads(opt, i * 1024);
        }
        opt.end_step();
    }

    /// Zeroes the first-layer weight rows of input positions marked
    /// inactive, so features never seen during training contribute exactly
    /// nothing (instead of random-initialization noise) when they appear
    /// in unseen-template plans. Gradients can still revive the rows if
    /// the features activate during later fine-tuning.
    ///
    /// `active` covers only the *feature* prefix of the unit's input; the
    /// child-output suffix is always live.
    pub fn mask_unused_inputs(&mut self, kind: OpKind, active: &[bool]) {
        let unit = self.unit_mut(kind);
        let layer0 = &mut unit.layers_mut()[0];
        assert!(active.len() <= layer0.w.rows(), "mask longer than input");
        for (row, &is_active) in active.iter().enumerate() {
            if !is_active {
                for col in 0..layer0.w.cols() {
                    layer0.w.set(row, col, 0.0);
                }
            }
        }
    }

    /// Adds another unit set's accumulated gradients into this one's
    /// (the reduction step of data-parallel training).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_grads_from(&mut self, other: &UnitSet) {
        assert_eq!(self.units.len(), other.units.len());
        for (dst, src) in self.units.iter_mut().zip(&other.units) {
            dst.add_grads_from(src);
        }
    }

    /// Copies parameters from another unit set of identical shape
    /// (transfer-learning warm start, paper §8).
    pub fn copy_params_from(&mut self, other: &UnitSet) {
        assert_eq!(self.units.len(), other.units.len());
        for (dst, src) in self.units.iter_mut().zip(&other.units) {
            dst.copy_params_from(src);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_plansim::catalog::Catalog;
    use rand::SeedableRng;

    fn units() -> (UnitSet, Featurizer) {
        let cat = Catalog::tpch(1.0);
        let fz = Featurizer::new(&cat);
        let cfg = QppConfig::tiny();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        (UnitSet::new(&cfg, &fz, &mut rng), fz)
    }

    #[test]
    fn one_unit_per_family_with_correct_dims() {
        let (us, fz) = units();
        let d = us.data_size();
        for kind in OpKind::ALL {
            let u = us.unit(kind);
            assert_eq!(u.in_dim(), fz.feature_size(kind) + kind.arity() * (d + 1), "{kind:?}");
            assert_eq!(u.out_dim(), d + 1);
        }
    }

    #[test]
    fn join_unit_takes_two_children() {
        let (us, fz) = units();
        let d = us.data_size();
        assert_eq!(
            us.unit(OpKind::Join).in_dim(),
            fz.feature_size(OpKind::Join) + 2 * (d + 1)
        );
        assert_eq!(us.unit(OpKind::Scan).in_dim(), fz.feature_size(OpKind::Scan));
    }

    #[test]
    fn param_count_is_substantial() {
        let (us, _) = units();
        assert!(us.num_params() > 10_000);
    }

    #[test]
    fn serde_round_trip() {
        let (us, _) = units();
        let json = serde_json::to_string(&us).unwrap();
        let back: UnitSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_params(), us.num_params());
        assert_eq!(back.data_size(), us.data_size());
    }
}
