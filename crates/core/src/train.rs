//! Training loop (paper §5) with the two §5.1 optimizations — run, by
//! default, **on the serving engine's wavefront layout**.
//!
//! Every epoch shuffles the training plans, draws large random batches,
//! and computes one gradient step per batch. Two engines can do the math
//! (see [`TrainEngine`]); both supervise every operator (Equation 7) and
//! recombine per-batch SSE gradients normalized by the batch's total
//! operator count — the paper's size-weighted, unbiased recombination:
//!
//! * **wavefront** (default, [`crate::train_program::ProgramTape`]): the
//!   whole heterogeneous batch is compiled onto the `(height-from-leaf,
//!   OpKind)` wavefront layout the serving engine uses — one gemm per
//!   operator family per wavefront in each direction, regardless of how
//!   many structural shapes the batch mixes. Features are lowered and
//!   whitened **once per run** (not once per epoch), full-batch
//!   configurations compile one tape and reuse it every epoch, and
//!   `threads > 1` deals each level's steps across a worker pool in both
//!   sweeps.
//! * **per-class** ([`TrainEngine::Classes`], the §5.1.1 arrangement):
//!   the batch is partitioned into structural equivalence classes; each
//!   class is evaluated as one [`TreeBatch`] (matrix ops over all members
//!   at once). This is the layout the paper describes, the differential
//!   oracle the wavefront engine is tested against, and the only
//!   arrangement that can express the §5.1 ablations — turning either
//!   optimization *off* ([`crate::config::OptMode`]) forces it:
//!   **vectorization** off evaluates singletons, **information sharing**
//!   off re-evaluates the subtree under every operator with only its root
//!   supervised — mathematically identical gradients (a test asserts
//!   this), but `O(n · depth)` unit evaluations instead of `O(n)`.

use crate::config::{OptMode, OptimizerKind, QppConfig, TargetCodec, TrainEngine};
use crate::infer::{predict_plans_with, InferEngine};
use crate::metrics::Metrics;
use crate::train_program::ProgramSession;
use crate::tree::{equivalence_classes, RatioCaps, Supervision, TreeBatch};
use crate::unit::UnitSet;
use qpp_nn::{Adam, Optimizer, Sgd};
use qpp_plansim::features::{Featurizer, Whitener};
use qpp_plansim::plan::Plan;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Computation-shape statistics of one training run — the observability
/// surface of the trainer (`qpp train` prints this; the
/// `train_throughput` bench explains its numbers with it).
///
/// "Gemm" counts are *forward* matrix products (one per unit layer per
/// group/step); the backward executes two more per layer (weight and
/// input gradients) in either engine, so ratios between engines are
/// preserved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainStats {
    /// True when the wavefront tape computed the gradients
    /// ([`TrainEngine::Program`] with both §5.1 optimizations on).
    pub program_engine: bool,
    /// Distinct structural equivalence classes in the training set — the
    /// granularity the per-class engine fragments a full batch into.
    pub classes: usize,
    /// Wavefront steps executed per epoch (0 under the per-class engine).
    pub steps_per_epoch: usize,
    /// Forward gemm calls per epoch (mean across epochs).
    pub gemms_per_epoch: usize,
    /// Supervised operator rows per epoch.
    pub rows_per_epoch: usize,
    /// Supervised operator rows processed per wall-clock second over the
    /// whole run (forward + backward + optimizer).
    pub rows_per_sec: f64,
}

impl std::fmt::Display for TrainStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} engine: {} classes -> {} wavefront steps/epoch, \
             {} forward gemms/epoch over {} rows ({:.0} rows/s)",
            if self.program_engine { "wavefront" } else { "per-class" },
            self.classes,
            self.steps_per_epoch,
            self.gemms_per_epoch,
            self.rows_per_epoch,
            self.rows_per_sec,
        )
    }
}

/// Per-epoch training trace.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct TrainHistory {
    /// Mean training loss per epoch (MSE per operator, in encoded space).
    pub train_loss: Vec<f64>,
    /// Wall-clock seconds per epoch.
    pub epoch_seconds: Vec<f64>,
    /// `(epoch, metrics)` on the held-out set, when eval tracking is on.
    pub eval_trace: Vec<(usize, Metrics)>,
    /// Epoch at which patience-based early stopping fired, if it did.
    #[serde(default)]
    pub stopped_at: Option<usize>,
    /// Computation-shape statistics of the run (see [`TrainStats`]).
    #[serde(default)]
    pub stats: TrainStats,
}

impl TrainHistory {
    /// Total wall-clock training time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.epoch_seconds.iter().sum()
    }
}

/// What one gradient step reported back to the epoch loop.
struct BatchOutcome {
    /// Summed squared error over the batch's supervised operators.
    sse: f64,
    /// Supervised operator count (the gradient normalizer).
    ops: usize,
    /// Neural-unit forward evaluations (gemm groups × 1; per-class
    /// engine only — the tape reports steps instead).
    unit_evals: usize,
    /// Wavefront steps executed (tape engine only).
    steps: usize,
}

/// Trains [`UnitSet`]s over executed plans.
pub struct Trainer<'a> {
    /// Hyper-parameters.
    pub config: &'a QppConfig,
    /// Featurization (catalog-specific).
    pub featurizer: &'a Featurizer,
    /// Whitening statistics (fit on the training split).
    pub whitener: &'a Whitener,
    /// Target codec (fit on the training split).
    pub codec: &'a TargetCodec,
    /// Ratio caps for clamped evaluation traces (None = unclamped).
    pub ratio_caps: Option<&'a RatioCaps>,
}

impl Trainer<'_> {
    /// Runs the full training loop.
    ///
    /// When `eval` is `Some((plans, every))`, the model is evaluated on
    /// `plans` after every `every`-th epoch (Figure 9b/9c convergence
    /// traces) through the serving engine.
    pub fn train(
        &self,
        units: &mut UnitSet,
        plans: &[&Plan],
        eval: Option<(&[&Plan], usize)>,
    ) -> TrainHistory {
        assert!(!plans.is_empty(), "cannot train on zero plans");
        let cfg = self.config;
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x7e57);
        let mut opt: Box<dyn Optimizer> = match cfg.optimizer {
            OptimizerKind::Sgd => Box::new(Sgd::new(cfg.learning_rate, cfg.momentum)),
            OptimizerKind::Adam => Box::new(Adam::new(cfg.learning_rate)),
        };

        // The wavefront tape expresses exactly the both-optimizations
        // configuration (whole-batch vectorization + one shared bottom-up
        // pass); the §5.1 ablation modes are defined by the per-class
        // arrangement, so they force the oracle engine.
        let mut session = (cfg.train_engine == TrainEngine::Program
            && cfg.opt_mode == OptMode::Both)
            .then(|| {
                let roots: Vec<&qpp_plansim::plan::PlanNode> =
                    plans.iter().map(|p| &p.root).collect();
                ProgramSession::prepare(self.featurizer, self.whitener, self.codec, &roots)
            });

        let mut history = TrainHistory::default();
        let mut order: Vec<usize> = (0..plans.len()).collect();
        let mut best_mae = f64::INFINITY;
        let mut evals_since_best = 0usize;
        let mut total_rows = 0usize;
        let mut total_evals = 0usize;
        let mut total_steps = 0usize;

        for epoch in 0..cfg.epochs {
            let start = Instant::now();
            opt.set_learning_rate(cfg.lr_schedule.lr_at(cfg.learning_rate, epoch, cfg.epochs));
            order.shuffle(&mut rng);
            let mut epoch_sse = 0.0f64;
            let mut epoch_ops = 0usize;

            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let out = match &mut session {
                    Some(session) => self.train_batch_program(units, opt.as_mut(), session, chunk),
                    None => self.train_batch(units, opt.as_mut(), plans, chunk),
                };
                epoch_sse += out.sse;
                epoch_ops += out.ops;
                total_evals += out.unit_evals;
                total_steps += out.steps;
            }
            total_rows += epoch_ops;

            history.train_loss.push(epoch_sse / epoch_ops.max(1) as f64);
            history.epoch_seconds.push(start.elapsed().as_secs_f64());

            if let Some((eval_plans, every)) = eval {
                if every > 0 && (epoch % every == 0 || epoch + 1 == cfg.epochs) {
                    let preds = predict_plans_with(
                        InferEngine::default().with_threads(cfg.threads),
                        units,
                        self.featurizer,
                        self.whitener,
                        self.codec,
                        self.ratio_caps,
                        eval_plans,
                    );
                    let actual: Vec<f64> = eval_plans.iter().map(|p| p.latency_ms()).collect();
                    let metrics = crate::metrics::evaluate(&actual, &preds);
                    let mae = metrics.mae_ms;
                    history.eval_trace.push((epoch, metrics));

                    if let Some(patience) = cfg.early_stop_patience {
                        if mae < best_mae * (1.0 - 1e-4) {
                            best_mae = mae;
                            evals_since_best = 0;
                        } else {
                            evals_since_best += 1;
                            if evals_since_best > patience {
                                history.stopped_at = Some(epoch);
                                break;
                            }
                        }
                    }
                }
            }
        }

        let epochs_run = history.train_loss.len().max(1);
        let layers = units.unit(qpp_plansim::operators::OpKind::ALL[0]).num_layers();
        let (evals, steps) = (total_evals / epochs_run, total_steps / epochs_run);
        history.stats = TrainStats {
            program_engine: session.is_some(),
            classes: equivalence_classes(plans.iter().enumerate().map(|(i, p)| (i, &p.root)))
                .len(),
            steps_per_epoch: steps,
            gemms_per_epoch: (evals + steps) * layers,
            rows_per_epoch: total_rows / epochs_run,
            rows_per_sec: total_rows as f64 / history.total_seconds().max(1e-12),
        };
        history
    }

    /// One gradient step over one batch through the wavefront tape: one
    /// recording forward, the all-operator loss, one reverse sweep —
    /// each gemm spanning every plan of the batch in its wavefront.
    fn train_batch_program(
        &self,
        units: &mut UnitSet,
        opt: &mut dyn Optimizer,
        session: &mut ProgramSession,
        chunk: &[usize],
    ) -> BatchOutcome {
        let cfg = self.config;
        units.zero_grad();
        let tape = session.tape_for(chunk, units);
        tape.forward_threaded(units, cfg.threads);
        let (sse, ops) = tape.loss();
        tape.backward_threaded(units, cfg.threads);
        let steps = tape.num_steps();

        // Unbiased recombination (§5.1.1): normalize the summed SSE
        // gradients by the batch's supervised operator count, then weight
        // decay (which also pulls never-activated one-hot columns toward
        // zero — essential for unseen-template generalization).
        units.scale_grad(1.0 / ops.max(1) as f32);
        units.add_weight_decay(cfg.weight_decay);
        units.apply_grads(opt);
        BatchOutcome { sse, ops, unit_evals: 0, steps }
    }

    /// One gradient step over one batch through the per-class oracle
    /// engine. Returns the batch outcome.
    fn train_batch(
        &self,
        units: &mut UnitSet,
        opt: &mut dyn Optimizer,
        plans: &[&Plan],
        chunk: &[usize],
    ) -> BatchOutcome {
        let cfg = self.config;
        units.zero_grad();
        let mut total_sse = 0.0f64;
        let mut total_ops = 0usize;
        let mut total_evals = 0usize;

        // Partition the chunk into structural equivalence classes (or
        // singletons when vectorization is off).
        let groups: Vec<Vec<usize>> = if cfg.opt_mode.vectorized() {
            equivalence_classes(chunk.iter().map(|&i| (i, &plans[i].root)))
                .into_iter()
                .map(|(_, members)| members)
                .collect()
        } else {
            chunk.iter().map(|&i| vec![i]).collect()
        };

        if cfg.threads > 1 {
            // Data-parallel gradient computation: equivalence classes are
            // distributed round-robin across worker threads, each of which
            // accumulates gradients into its own clone of the units; the
            // clones are then reduced back into the master. Numerically
            // equivalent to the serial path up to f32 summation order.
            let n_threads = cfg.threads.min(groups.len().max(1));
            let units_ro: &UnitSet = units;
            let results: Vec<(f64, usize, usize, UnitSet)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n_threads)
                    .map(|t| {
                        let my_groups: Vec<&Vec<usize>> =
                            groups.iter().skip(t).step_by(n_threads).collect();
                        scope.spawn(move || {
                            let mut local = units_ro.clone();
                            local.zero_grad();
                            let mut sse = 0.0f64;
                            let mut ops = 0usize;
                            let mut evals = 0usize;
                            for members in my_groups {
                                let (s, o, e) = self.process_group(&mut local, plans, members);
                                sse += s;
                                ops += o;
                                evals += e;
                            }
                            (sse, ops, evals, local)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
            for (sse, ops, evals, local) in results {
                units.add_grads_from(&local);
                total_sse += sse;
                total_ops += ops;
                total_evals += evals;
            }
        } else {
            for members in &groups {
                let (sse, ops, evals) = self.process_group(units, plans, members);
                total_sse += sse;
                total_ops += ops;
                total_evals += evals;
            }
        }

        // Unbiased recombination: normalize the summed SSE gradients by the
        // total number of supervised operators in the batch, then add
        // weight decay (which also pulls never-activated one-hot columns
        // toward zero — essential for unseen-template generalization).
        units.scale_grad(1.0 / total_ops.max(1) as f32);
        units.add_weight_decay(cfg.weight_decay);
        units.apply_grads(opt);
        BatchOutcome { sse: total_sse, ops: total_ops, unit_evals: total_evals, steps: 0 }
    }

    /// Forward + backward over one equivalence class (or singleton),
    /// accumulating gradients into `units`. Returns
    /// `(sse, op_count, unit_evals)`.
    fn process_group(
        &self,
        units: &mut UnitSet,
        plans: &[&Plan],
        members: &[usize],
    ) -> (f64, usize, usize) {
        let roots: Vec<&qpp_plansim::plan::PlanNode> =
            members.iter().map(|&i| &plans[i].root).collect();

        if self.config.opt_mode.shares_info() {
            // One bottom-up pass, every operator supervised.
            let tb = TreeBatch::build(self.featurizer, self.whitener, self.codec, &roots);
            let fwd = tb.forward(units);
            let (sse, grads) = tb.loss(&fwd, Supervision::AllOperators);
            tb.backward(units, &fwd, grads);
            (sse, tb.supervised_count(Supervision::AllOperators), tb.num_positions())
        } else {
            // Naive Equation-7 evaluation: one subtree pass per operator,
            // only its root supervised.
            let mut total_sse = 0.0f64;
            let mut total_ops = 0usize;
            let mut total_evals = 0usize;
            let node_lists: Vec<Vec<&qpp_plansim::plan::PlanNode>> =
                roots.iter().map(|r| r.postorder()).collect();
            let n = node_lists[0].len();
            for k in 0..n {
                let sub_roots: Vec<&qpp_plansim::plan::PlanNode> =
                    node_lists.iter().map(|l| l[k]).collect();
                let tb =
                    TreeBatch::build(self.featurizer, self.whitener, self.codec, &sub_roots);
                let fwd = tb.forward(units);
                let (sse, grads) = tb.loss(&fwd, Supervision::RootOnly);
                tb.backward(units, &fwd, grads);
                total_sse += sse;
                total_ops += tb.supervised_count(Supervision::RootOnly);
                total_evals += tb.num_positions();
            }
            (total_sse, total_ops, total_evals)
        }
    }
}

/// Predicts root latencies (milliseconds) for `plans`, vectorizing over
/// structural equivalence classes — the per-class serving path behind
/// [`InferEngine::Classes`] (the wavefront engine serves the default
/// path; see [`crate::infer::predict_plans_with`]).
pub fn predict_plans(
    units: &UnitSet,
    featurizer: &Featurizer,
    whitener: &Whitener,
    codec: &TargetCodec,
    ratio_caps: Option<&RatioCaps>,
    plans: &[&Plan],
) -> Vec<f64> {
    let mut out = vec![0.0f64; plans.len()];
    for (_, members) in equivalence_classes(plans.iter().enumerate().map(|(i, p)| (i, &p.root))) {
        let roots: Vec<&qpp_plansim::plan::PlanNode> =
            members.iter().map(|&i| &plans[i].root).collect();
        let tb = TreeBatch::build(featurizer, whitener, codec, &roots);
        let preds = match ratio_caps {
            Some(caps) => tb.predict_roots_clamped(units, codec, caps),
            None => tb.predict_roots(units, codec),
        };
        for (&i, p) in members.iter().zip(preds) {
            out[i] = p;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptMode, QppConfig};
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    fn setup(n: usize) -> (Dataset, Featurizer, Whitener, TargetCodec) {
        let ds = Dataset::generate(Workload::TpcH, 1.0, n, 21);
        let fz = Featurizer::new(&ds.catalog);
        let wh = Whitener::fit(&fz, ds.plans.iter());
        let codec = TargetCodec::fit(
            crate::config::TargetTransform::Log1p,
            ds.plans.iter().map(|p| p.latency_ms()),
        );
        (ds, fz, wh, codec)
    }

    fn fresh_units(cfg: &QppConfig, fz: &Featurizer) -> UnitSet {
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        UnitSet::new(cfg, fz, &mut rng)
    }

    #[test]
    fn training_reduces_loss() {
        let (ds, fz, wh, codec) = setup(40);
        let cfg = QppConfig { epochs: 15, ..QppConfig::tiny() };
        let mut units = fresh_units(&cfg, &fz);
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let trainer = Trainer { config: &cfg, featurizer: &fz, whitener: &wh, codec: &codec, ratio_caps: None };
        let hist = trainer.train(&mut units, &plans, None);
        assert_eq!(hist.train_loss.len(), 15);
        let first = hist.train_loss[0];
        let last = *hist.train_loss.last().unwrap();
        assert!(last < first * 0.8, "loss {first} -> {last}");
    }

    /// The four §5.1 optimization modes must compute identical gradients —
    /// they differ only in how the computation is arranged. With the
    /// default engine, `Both` runs on the wavefront tape while the other
    /// three run per-class, so this doubles as a cross-engine first-step
    /// agreement check.
    #[test]
    fn all_opt_modes_produce_equivalent_first_steps() {
        let (ds, fz, wh, codec) = setup(12);
        let plans: Vec<&Plan> = ds.plans.iter().collect();

        let mut losses = Vec::new();
        let mut predictions = Vec::new();
        for mode in OptMode::ALL {
            let cfg = QppConfig {
                epochs: 1,
                batch_size: 12,
                opt_mode: mode,
                momentum: 0.0,
                ..QppConfig::tiny()
            };
            let mut units = fresh_units(&cfg, &fz);
            let trainer = Trainer { config: &cfg, featurizer: &fz, whitener: &wh, codec: &codec, ratio_caps: None };
            let hist = trainer.train(&mut units, &plans, None);
            losses.push(hist.train_loss[0]);
            predictions.push(predict_plans(&units, &fz, &wh, &codec, None, &plans));
        }

        for i in 1..losses.len() {
            let rel = (losses[i] - losses[0]).abs() / losses[0].max(1e-9);
            assert!(rel < 1e-3, "mode {i} loss {} vs {}", losses[i], losses[0]);
            for (a, b) in predictions[i].iter().zip(&predictions[0]) {
                let rel = (a - b).abs() / (1.0 + b.abs());
                assert!(rel < 1e-2, "mode {i}: prediction {a} vs {b}");
            }
        }
    }

    /// Both gradient engines, same RNG stream, same config: mini-batched
    /// training must land on models that agree closely after several
    /// optimizer steps (the full differential suite lives in
    /// `tests/train_differential.rs`).
    #[test]
    fn engines_agree_through_minibatched_training() {
        let (ds, fz, wh, codec) = setup(30);
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let run = |engine: TrainEngine| {
            let cfg = QppConfig {
                epochs: 4,
                batch_size: 8, // several chunks per epoch — the recompile path
                train_engine: engine,
                ..QppConfig::tiny()
            };
            let mut units = fresh_units(&cfg, &fz);
            let trainer = Trainer {
                config: &cfg,
                featurizer: &fz,
                whitener: &wh,
                codec: &codec,
                ratio_caps: None,
            };
            let hist = trainer.train(&mut units, &plans, None);
            (hist, predict_plans(&units, &fz, &wh, &codec, None, &plans))
        };
        let (hist_p, preds_p) = run(TrainEngine::Program);
        let (hist_c, preds_c) = run(TrainEngine::Classes);
        assert!(hist_p.stats.program_engine && !hist_c.stats.program_engine);
        for (l_p, l_c) in hist_p.train_loss.iter().zip(&hist_c.train_loss) {
            let rel = (l_p - l_c).abs() / l_c.max(1e-9);
            assert!(rel < 1e-3, "loss {l_p} vs {l_c}");
        }
        for (a, b) in preds_p.iter().zip(&preds_c) {
            let rel = (a - b).abs() / (1.0 + b.abs());
            assert!(rel < 1e-3, "prediction {a} vs {b}");
        }
    }

    #[test]
    fn stats_reflect_the_engine_shape() {
        let (ds, fz, wh, codec) = setup(24);
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let run = |engine: TrainEngine| {
            let cfg = QppConfig { epochs: 2, train_engine: engine, ..QppConfig::tiny() };
            let mut units = fresh_units(&cfg, &fz);
            let trainer = Trainer {
                config: &cfg,
                featurizer: &fz,
                whitener: &wh,
                codec: &codec,
                ratio_caps: None,
            };
            trainer.train(&mut units, &plans, None).stats
        };
        let p = run(TrainEngine::Program);
        let c = run(TrainEngine::Classes);
        let total_ops: usize = plans.iter().map(|p| p.node_count()).sum();
        assert!(p.program_engine && p.steps_per_epoch > 0);
        assert_eq!(p.rows_per_epoch, total_ops);
        assert_eq!(c.rows_per_epoch, total_ops);
        assert_eq!(p.classes, c.classes);
        assert!(p.classes > 0);
        assert!(!c.program_engine && c.steps_per_epoch == 0);
        // The whole point of the wavefront layout: far fewer gemm calls
        // for the same supervised rows.
        assert!(
            p.gemms_per_epoch < c.gemms_per_epoch,
            "tape {} gemms vs per-class {}",
            p.gemms_per_epoch,
            c.gemms_per_epoch
        );
        assert!(p.rows_per_sec > 0.0 && c.rows_per_sec > 0.0);
        let line = p.to_string();
        assert!(line.contains("wavefront") && line.contains("rows/s"), "{line}");
    }

    #[test]
    fn eval_trace_is_recorded() {
        let (ds, fz, wh, codec) = setup(30);
        let cfg = QppConfig { epochs: 10, ..QppConfig::tiny() };
        let mut units = fresh_units(&cfg, &fz);
        let (train, test) = ds.plans.split_at(24);
        let train_refs: Vec<&Plan> = train.iter().collect();
        let test_refs: Vec<&Plan> = test.iter().collect();
        let trainer = Trainer { config: &cfg, featurizer: &fz, whitener: &wh, codec: &codec, ratio_caps: None };
        let hist = trainer.train(&mut units, &train_refs, Some((&test_refs, 3)));
        assert!(!hist.eval_trace.is_empty());
        // Last epoch is always evaluated.
        assert_eq!(hist.eval_trace.last().unwrap().0, cfg.epochs - 1);
    }

    #[test]
    fn predictions_cover_every_plan() {
        let (ds, fz, wh, codec) = setup(20);
        let cfg = QppConfig::tiny();
        let units = fresh_units(&cfg, &fz);
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let preds = predict_plans(&units, &fz, &wh, &codec, None, &plans);
        assert_eq!(preds.len(), 20);
        assert!(preds.iter().all(|p| p.is_finite() && *p >= 0.0));
    }

    /// Parallel gradient computation must match serial training: same
    /// batches, same recombination, only the f32 summation order differs.
    /// Runs on the wavefront engine (the default), whose parallel sweeps
    /// go through the shared level executor.
    #[test]
    fn parallel_training_matches_serial() {
        let (ds, fz, wh, codec) = setup(40);
        let plans: Vec<&Plan> = ds.plans.iter().collect();

        let run = |threads: usize| {
            let cfg = QppConfig { epochs: 5, threads, ..QppConfig::tiny() };
            let mut units = fresh_units(&cfg, &fz);
            let trainer = Trainer {
                config: &cfg,
                featurizer: &fz,
                whitener: &wh,
                codec: &codec,
                ratio_caps: None,
            };
            let hist = trainer.train(&mut units, &plans, None);
            (hist.train_loss.clone(), predict_plans(&units, &fz, &wh, &codec, None, &plans))
        };

        let (loss1, preds1) = run(1);
        let (loss4, preds4) = run(4);
        for (a, b) in loss1.iter().zip(&loss4) {
            let rel = (a - b).abs() / a.max(1e-9);
            assert!(rel < 1e-3, "loss {a} vs {b}");
        }
        for (a, b) in preds1.iter().zip(&preds4) {
            let rel = (a - b).abs() / (1.0 + a.abs());
            assert!(rel < 1e-2, "prediction {a} vs {b}");
        }
    }

    /// The same contract for the per-class oracle engine's data-parallel
    /// path (classes dealt across unit-set clones).
    #[test]
    fn parallel_classes_training_matches_serial() {
        let (ds, fz, wh, codec) = setup(30);
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let run = |threads: usize| {
            let cfg = QppConfig {
                epochs: 3,
                threads,
                train_engine: TrainEngine::Classes,
                ..QppConfig::tiny()
            };
            let mut units = fresh_units(&cfg, &fz);
            let trainer = Trainer {
                config: &cfg,
                featurizer: &fz,
                whitener: &wh,
                codec: &codec,
                ratio_caps: None,
            };
            let hist = trainer.train(&mut units, &plans, None);
            (hist.train_loss.clone(), predict_plans(&units, &fz, &wh, &codec, None, &plans))
        };
        let (loss1, preds1) = run(1);
        let (loss4, preds4) = run(4);
        for (a, b) in loss1.iter().zip(&loss4) {
            assert!((a - b).abs() / a.max(1e-9) < 1e-3, "loss {a} vs {b}");
        }
        for (a, b) in preds1.iter().zip(&preds4) {
            assert!((a - b).abs() / (1.0 + a.abs()) < 1e-2, "prediction {a} vs {b}");
        }
    }

    #[test]
    fn more_threads_than_classes_is_safe() {
        let (ds, fz, wh, codec) = setup(6);
        let cfg = QppConfig { epochs: 2, threads: 64, ..QppConfig::tiny() };
        let mut units = fresh_units(&cfg, &fz);
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let trainer = Trainer {
            config: &cfg,
            featurizer: &fz,
            whitener: &wh,
            codec: &codec,
            ratio_caps: None,
        };
        let hist = trainer.train(&mut units, &plans, None);
        assert_eq!(hist.train_loss.len(), 2);
        assert!(hist.train_loss.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn early_stopping_halts_training() {
        let (ds, fz, wh, codec) = setup(40);
        let cfg = QppConfig {
            epochs: 200,
            early_stop_patience: Some(2),
            // A huge learning rate stalls improvement quickly.
            learning_rate: 0.2,
            ..QppConfig::tiny()
        };
        let mut units = fresh_units(&cfg, &fz);
        let (train, test) = ds.plans.split_at(32);
        let train_refs: Vec<&Plan> = train.iter().collect();
        let test_refs: Vec<&Plan> = test.iter().collect();
        let trainer = Trainer {
            config: &cfg,
            featurizer: &fz,
            whitener: &wh,
            codec: &codec,
            ratio_caps: None,
        };
        let hist = trainer.train(&mut units, &train_refs, Some((&test_refs, 1)));
        assert!(hist.stopped_at.is_some(), "expected early stop");
        assert!(hist.train_loss.len() < 200);
    }

    #[test]
    fn lr_schedule_decays_during_training() {
        let (ds, fz, wh, codec) = setup(20);
        let cfg = QppConfig {
            epochs: 12,
            lr_schedule: crate::config::LrSchedule::StepDecay { every: 4, gamma: 0.1 },
            ..QppConfig::tiny()
        };
        let mut units = fresh_units(&cfg, &fz);
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let trainer = Trainer {
            config: &cfg,
            featurizer: &fz,
            whitener: &wh,
            codec: &codec,
            ratio_caps: None,
        };
        // Just verifies the schedule path runs end-to-end and still learns.
        let hist = trainer.train(&mut units, &plans, None);
        assert_eq!(hist.train_loss.len(), 12);
        assert!(hist.train_loss.last().unwrap() < &hist.train_loss[0]);
    }

    #[test]
    fn adam_optimizer_also_trains() {
        let (ds, fz, wh, codec) = setup(30);
        let cfg = QppConfig {
            epochs: 10,
            optimizer: OptimizerKind::Adam,
            learning_rate: 1e-3,
            ..QppConfig::tiny()
        };
        let mut units = fresh_units(&cfg, &fz);
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let trainer = Trainer { config: &cfg, featurizer: &fz, whitener: &wh, codec: &codec, ratio_caps: None };
        let hist = trainer.train(&mut units, &plans, None);
        assert!(hist.train_loss.last().unwrap() < &hist.train_loss[0]);
    }
}
