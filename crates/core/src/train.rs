//! Training loop (paper §5) with the two §5.1 optimizations.
//!
//! Every epoch shuffles the training plans, draws large random batches, and
//! processes each batch according to the configured [`OptMode`](crate::config::OptMode):
//!
//! * **vectorization** (§5.1.1): the batch is partitioned into structural
//!   equivalence classes; each class is evaluated as one [`TreeBatch`]
//!   (matrix ops over all members at once). Per-class gradients are
//!   *summed* and normalized once by the batch's total operator count —
//!   the paper's size-weighted, unbiased gradient recombination.
//! * **information sharing** (§5.1.2): each plan (or class) is evaluated
//!   bottom-up exactly once with every operator supervised. The unshared
//!   baseline instead re-evaluates the subtree under every operator with
//!   only its root supervised — mathematically identical gradients (a test
//!   asserts this), but `O(n · depth)` unit evaluations instead of `O(n)`.

use crate::config::{OptimizerKind, QppConfig, TargetCodec};
use crate::metrics::Metrics;
use crate::tree::{equivalence_classes, RatioCaps, Supervision, TreeBatch};
use crate::unit::UnitSet;
use qpp_nn::{Adam, Optimizer, Sgd};
use qpp_plansim::features::{Featurizer, Whitener};
use qpp_plansim::plan::Plan;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Per-epoch training trace.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct TrainHistory {
    /// Mean training loss per epoch (MSE per operator, in encoded space).
    pub train_loss: Vec<f64>,
    /// Wall-clock seconds per epoch.
    pub epoch_seconds: Vec<f64>,
    /// `(epoch, metrics)` on the held-out set, when eval tracking is on.
    pub eval_trace: Vec<(usize, Metrics)>,
    /// Epoch at which patience-based early stopping fired, if it did.
    #[serde(default)]
    pub stopped_at: Option<usize>,
}

impl TrainHistory {
    /// Total wall-clock training time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.epoch_seconds.iter().sum()
    }
}

/// Trains [`UnitSet`]s over executed plans.
pub struct Trainer<'a> {
    /// Hyper-parameters.
    pub config: &'a QppConfig,
    /// Featurization (catalog-specific).
    pub featurizer: &'a Featurizer,
    /// Whitening statistics (fit on the training split).
    pub whitener: &'a Whitener,
    /// Target codec (fit on the training split).
    pub codec: &'a TargetCodec,
    /// Ratio caps for clamped evaluation traces (None = unclamped).
    pub ratio_caps: Option<&'a RatioCaps>,
}

impl Trainer<'_> {
    /// Runs the full training loop.
    ///
    /// When `eval` is `Some((plans, every))`, the model is evaluated on
    /// `plans` after every `every`-th epoch (Figure 9b/9c convergence
    /// traces). Pass an `on_epoch` callback to observe progress.
    pub fn train(
        &self,
        units: &mut UnitSet,
        plans: &[&Plan],
        eval: Option<(&[&Plan], usize)>,
    ) -> TrainHistory {
        assert!(!plans.is_empty(), "cannot train on zero plans");
        let cfg = self.config;
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x7e57);
        let mut opt: Box<dyn Optimizer> = match cfg.optimizer {
            OptimizerKind::Sgd => Box::new(Sgd::new(cfg.learning_rate, cfg.momentum)),
            OptimizerKind::Adam => Box::new(Adam::new(cfg.learning_rate)),
        };

        let mut history = TrainHistory::default();
        let mut order: Vec<usize> = (0..plans.len()).collect();
        let mut best_mae = f64::INFINITY;
        let mut evals_since_best = 0usize;

        for epoch in 0..cfg.epochs {
            let start = Instant::now();
            opt.set_learning_rate(cfg.lr_schedule.lr_at(cfg.learning_rate, epoch, cfg.epochs));
            order.shuffle(&mut rng);
            let mut epoch_sse = 0.0f64;
            let mut epoch_ops = 0usize;

            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let (sse, ops) = self.train_batch(units, opt.as_mut(), plans, chunk);
                epoch_sse += sse;
                epoch_ops += ops;
            }

            history.train_loss.push(epoch_sse / epoch_ops.max(1) as f64);
            history.epoch_seconds.push(start.elapsed().as_secs_f64());

            if let Some((eval_plans, every)) = eval {
                if every > 0 && (epoch % every == 0 || epoch + 1 == cfg.epochs) {
                    let preds = predict_plans(
                        units,
                        self.featurizer,
                        self.whitener,
                        self.codec,
                        self.ratio_caps,
                        eval_plans,
                    );
                    let actual: Vec<f64> = eval_plans.iter().map(|p| p.latency_ms()).collect();
                    let metrics = crate::metrics::evaluate(&actual, &preds);
                    let mae = metrics.mae_ms;
                    history.eval_trace.push((epoch, metrics));

                    if let Some(patience) = cfg.early_stop_patience {
                        if mae < best_mae * (1.0 - 1e-4) {
                            best_mae = mae;
                            evals_since_best = 0;
                        } else {
                            evals_since_best += 1;
                            if evals_since_best > patience {
                                history.stopped_at = Some(epoch);
                                break;
                            }
                        }
                    }
                }
            }
        }
        history
    }

    /// One gradient step over one large batch. Returns `(sse, op_count)`.
    fn train_batch(
        &self,
        units: &mut UnitSet,
        opt: &mut dyn Optimizer,
        plans: &[&Plan],
        chunk: &[usize],
    ) -> (f64, usize) {
        let cfg = self.config;
        units.zero_grad();
        let mut total_sse = 0.0f64;
        let mut total_ops = 0usize;

        // Partition the chunk into structural equivalence classes (or
        // singletons when vectorization is off).
        let groups: Vec<Vec<usize>> = if cfg.opt_mode.vectorized() {
            equivalence_classes(chunk.iter().map(|&i| (i, &plans[i].root)))
                .into_iter()
                .map(|(_, members)| members)
                .collect()
        } else {
            chunk.iter().map(|&i| vec![i]).collect()
        };

        if cfg.threads > 1 {
            // Data-parallel gradient computation: equivalence classes are
            // distributed round-robin across worker threads, each of which
            // accumulates gradients into its own clone of the units; the
            // clones are then reduced back into the master. Numerically
            // equivalent to the serial path up to f32 summation order.
            let n_threads = cfg.threads.min(groups.len().max(1));
            let units_ro: &UnitSet = units;
            let results: Vec<(f64, usize, UnitSet)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n_threads)
                    .map(|t| {
                        let my_groups: Vec<&Vec<usize>> =
                            groups.iter().skip(t).step_by(n_threads).collect();
                        scope.spawn(move || {
                            let mut local = units_ro.clone();
                            local.zero_grad();
                            let mut sse = 0.0f64;
                            let mut ops = 0usize;
                            for members in my_groups {
                                let (s, o) = self.process_group(&mut local, plans, members);
                                sse += s;
                                ops += o;
                            }
                            (sse, ops, local)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
            for (sse, ops, local) in results {
                units.add_grads_from(&local);
                total_sse += sse;
                total_ops += ops;
            }
        } else {
            for members in &groups {
                let (sse, ops) = self.process_group(units, plans, members);
                total_sse += sse;
                total_ops += ops;
            }
        }

        // Unbiased recombination: normalize the summed SSE gradients by the
        // total number of supervised operators in the batch, then add
        // weight decay (which also pulls never-activated one-hot columns
        // toward zero — essential for unseen-template generalization).
        units.scale_grad(1.0 / total_ops.max(1) as f32);
        units.add_weight_decay(cfg.weight_decay);
        units.apply_grads(opt);
        (total_sse, total_ops)
    }

    /// Forward + backward over one equivalence class (or singleton),
    /// accumulating gradients into `units`. Returns `(sse, op_count)`.
    fn process_group(
        &self,
        units: &mut UnitSet,
        plans: &[&Plan],
        members: &[usize],
    ) -> (f64, usize) {
        let roots: Vec<&qpp_plansim::plan::PlanNode> =
            members.iter().map(|&i| &plans[i].root).collect();

        if self.config.opt_mode.shares_info() {
            // One bottom-up pass, every operator supervised.
            let tb = TreeBatch::build(self.featurizer, self.whitener, self.codec, &roots);
            let fwd = tb.forward(units);
            let (sse, grads) = tb.loss(&fwd, Supervision::AllOperators);
            tb.backward(units, &fwd, grads);
            (sse, tb.supervised_count(Supervision::AllOperators))
        } else {
            // Naive Equation-7 evaluation: one subtree pass per operator,
            // only its root supervised.
            let mut total_sse = 0.0f64;
            let mut total_ops = 0usize;
            let node_lists: Vec<Vec<&qpp_plansim::plan::PlanNode>> =
                roots.iter().map(|r| r.postorder()).collect();
            let n = node_lists[0].len();
            for k in 0..n {
                let sub_roots: Vec<&qpp_plansim::plan::PlanNode> =
                    node_lists.iter().map(|l| l[k]).collect();
                let tb =
                    TreeBatch::build(self.featurizer, self.whitener, self.codec, &sub_roots);
                let fwd = tb.forward(units);
                let (sse, grads) = tb.loss(&fwd, Supervision::RootOnly);
                tb.backward(units, &fwd, grads);
                total_sse += sse;
                total_ops += tb.supervised_count(Supervision::RootOnly);
            }
            (total_sse, total_ops)
        }
    }
}

/// Predicts root latencies (milliseconds) for `plans`, vectorizing over
/// structural equivalence classes.
pub fn predict_plans(
    units: &UnitSet,
    featurizer: &Featurizer,
    whitener: &Whitener,
    codec: &TargetCodec,
    ratio_caps: Option<&RatioCaps>,
    plans: &[&Plan],
) -> Vec<f64> {
    let mut out = vec![0.0f64; plans.len()];
    for (_, members) in equivalence_classes(plans.iter().enumerate().map(|(i, p)| (i, &p.root))) {
        let roots: Vec<&qpp_plansim::plan::PlanNode> =
            members.iter().map(|&i| &plans[i].root).collect();
        let tb = TreeBatch::build(featurizer, whitener, codec, &roots);
        let preds = match ratio_caps {
            Some(caps) => tb.predict_roots_clamped(units, codec, caps),
            None => tb.predict_roots(units, codec),
        };
        for (&i, p) in members.iter().zip(preds) {
            out[i] = p;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptMode, QppConfig};
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    fn setup(n: usize) -> (Dataset, Featurizer, Whitener, TargetCodec) {
        let ds = Dataset::generate(Workload::TpcH, 1.0, n, 21);
        let fz = Featurizer::new(&ds.catalog);
        let wh = Whitener::fit(&fz, ds.plans.iter());
        let codec = TargetCodec::fit(
            crate::config::TargetTransform::Log1p,
            ds.plans.iter().map(|p| p.latency_ms()),
        );
        (ds, fz, wh, codec)
    }

    fn fresh_units(cfg: &QppConfig, fz: &Featurizer) -> UnitSet {
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        UnitSet::new(cfg, fz, &mut rng)
    }

    #[test]
    fn training_reduces_loss() {
        let (ds, fz, wh, codec) = setup(40);
        let cfg = QppConfig { epochs: 15, ..QppConfig::tiny() };
        let mut units = fresh_units(&cfg, &fz);
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let trainer = Trainer { config: &cfg, featurizer: &fz, whitener: &wh, codec: &codec, ratio_caps: None };
        let hist = trainer.train(&mut units, &plans, None);
        assert_eq!(hist.train_loss.len(), 15);
        let first = hist.train_loss[0];
        let last = *hist.train_loss.last().unwrap();
        assert!(last < first * 0.8, "loss {first} -> {last}");
    }

    /// The four §5.1 optimization modes must compute identical gradients —
    /// they differ only in how the computation is arranged.
    #[test]
    fn all_opt_modes_produce_equivalent_first_steps() {
        let (ds, fz, wh, codec) = setup(12);
        let plans: Vec<&Plan> = ds.plans.iter().collect();

        let mut losses = Vec::new();
        let mut predictions = Vec::new();
        for mode in OptMode::ALL {
            let cfg = QppConfig {
                epochs: 1,
                batch_size: 12,
                opt_mode: mode,
                momentum: 0.0,
                ..QppConfig::tiny()
            };
            let mut units = fresh_units(&cfg, &fz);
            let trainer = Trainer { config: &cfg, featurizer: &fz, whitener: &wh, codec: &codec, ratio_caps: None };
            let hist = trainer.train(&mut units, &plans, None);
            losses.push(hist.train_loss[0]);
            predictions.push(predict_plans(&units, &fz, &wh, &codec, None, &plans));
        }

        for i in 1..losses.len() {
            let rel = (losses[i] - losses[0]).abs() / losses[0].max(1e-9);
            assert!(rel < 1e-3, "mode {i} loss {} vs {}", losses[i], losses[0]);
            for (a, b) in predictions[i].iter().zip(&predictions[0]) {
                let rel = (a - b).abs() / (1.0 + b.abs());
                assert!(rel < 1e-2, "mode {i}: prediction {a} vs {b}");
            }
        }
    }

    #[test]
    fn eval_trace_is_recorded() {
        let (ds, fz, wh, codec) = setup(30);
        let cfg = QppConfig { epochs: 10, ..QppConfig::tiny() };
        let mut units = fresh_units(&cfg, &fz);
        let (train, test) = ds.plans.split_at(24);
        let train_refs: Vec<&Plan> = train.iter().collect();
        let test_refs: Vec<&Plan> = test.iter().collect();
        let trainer = Trainer { config: &cfg, featurizer: &fz, whitener: &wh, codec: &codec, ratio_caps: None };
        let hist = trainer.train(&mut units, &train_refs, Some((&test_refs, 3)));
        assert!(!hist.eval_trace.is_empty());
        // Last epoch is always evaluated.
        assert_eq!(hist.eval_trace.last().unwrap().0, cfg.epochs - 1);
    }

    #[test]
    fn predictions_cover_every_plan() {
        let (ds, fz, wh, codec) = setup(20);
        let cfg = QppConfig::tiny();
        let units = fresh_units(&cfg, &fz);
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let preds = predict_plans(&units, &fz, &wh, &codec, None, &plans);
        assert_eq!(preds.len(), 20);
        assert!(preds.iter().all(|p| p.is_finite() && *p >= 0.0));
    }

    /// Parallel gradient computation must match serial training: same
    /// batches, same recombination, only the f32 summation order differs.
    #[test]
    fn parallel_training_matches_serial() {
        let (ds, fz, wh, codec) = setup(40);
        let plans: Vec<&Plan> = ds.plans.iter().collect();

        let run = |threads: usize| {
            let cfg = QppConfig { epochs: 5, threads, ..QppConfig::tiny() };
            let mut units = fresh_units(&cfg, &fz);
            let trainer = Trainer {
                config: &cfg,
                featurizer: &fz,
                whitener: &wh,
                codec: &codec,
                ratio_caps: None,
            };
            let hist = trainer.train(&mut units, &plans, None);
            (hist.train_loss.clone(), predict_plans(&units, &fz, &wh, &codec, None, &plans))
        };

        let (loss1, preds1) = run(1);
        let (loss4, preds4) = run(4);
        for (a, b) in loss1.iter().zip(&loss4) {
            let rel = (a - b).abs() / a.max(1e-9);
            assert!(rel < 1e-3, "loss {a} vs {b}");
        }
        for (a, b) in preds1.iter().zip(&preds4) {
            let rel = (a - b).abs() / (1.0 + a.abs());
            assert!(rel < 1e-2, "prediction {a} vs {b}");
        }
    }

    #[test]
    fn more_threads_than_classes_is_safe() {
        let (ds, fz, wh, codec) = setup(6);
        let cfg = QppConfig { epochs: 2, threads: 64, ..QppConfig::tiny() };
        let mut units = fresh_units(&cfg, &fz);
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let trainer = Trainer {
            config: &cfg,
            featurizer: &fz,
            whitener: &wh,
            codec: &codec,
            ratio_caps: None,
        };
        let hist = trainer.train(&mut units, &plans, None);
        assert_eq!(hist.train_loss.len(), 2);
        assert!(hist.train_loss.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn early_stopping_halts_training() {
        let (ds, fz, wh, codec) = setup(40);
        let cfg = QppConfig {
            epochs: 200,
            early_stop_patience: Some(2),
            // A huge learning rate stalls improvement quickly.
            learning_rate: 0.2,
            ..QppConfig::tiny()
        };
        let mut units = fresh_units(&cfg, &fz);
        let (train, test) = ds.plans.split_at(32);
        let train_refs: Vec<&Plan> = train.iter().collect();
        let test_refs: Vec<&Plan> = test.iter().collect();
        let trainer = Trainer {
            config: &cfg,
            featurizer: &fz,
            whitener: &wh,
            codec: &codec,
            ratio_caps: None,
        };
        let hist = trainer.train(&mut units, &train_refs, Some((&test_refs, 1)));
        assert!(hist.stopped_at.is_some(), "expected early stop");
        assert!(hist.train_loss.len() < 200);
    }

    #[test]
    fn lr_schedule_decays_during_training() {
        let (ds, fz, wh, codec) = setup(20);
        let cfg = QppConfig {
            epochs: 12,
            lr_schedule: crate::config::LrSchedule::StepDecay { every: 4, gamma: 0.1 },
            ..QppConfig::tiny()
        };
        let mut units = fresh_units(&cfg, &fz);
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let trainer = Trainer {
            config: &cfg,
            featurizer: &fz,
            whitener: &wh,
            codec: &codec,
            ratio_caps: None,
        };
        // Just verifies the schedule path runs end-to-end and still learns.
        let hist = trainer.train(&mut units, &plans, None);
        assert_eq!(hist.train_loss.len(), 12);
        assert!(hist.train_loss.last().unwrap() < &hist.train_loss[0]);
    }

    #[test]
    fn adam_optimizer_also_trains() {
        let (ds, fz, wh, codec) = setup(30);
        let cfg = QppConfig {
            epochs: 10,
            optimizer: OptimizerKind::Adam,
            learning_rate: 1e-3,
            ..QppConfig::tiny()
        };
        let mut units = fresh_units(&cfg, &fz);
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let trainer = Trainer { config: &cfg, featurizer: &fz, whitener: &wh, codec: &codec, ratio_caps: None };
        let hist = trainer.train(&mut units, &plans, None);
        assert!(hist.train_loss.last().unwrap() < &hist.train_loss[0]);
    }
}
