//! Plan-structured network evaluation: trees of neural units (paper §4.2).
//!
//! A [`TreeBatch`] is a *batch of structurally-identical plans* lowered to
//! evaluation order: positions in post order, each holding the operator
//! family, the (whitened) feature rows of every plan in the batch, and the
//! indices of its child positions. Forward evaluation walks positions
//! bottom-up — each neural unit consumes its features concatenated with its
//! children's `(latency ⌢ data)` outputs — and the backward pass routes
//! input gradients from parents into the output gradients of their
//! children, implementing end-to-end training of the opaque data vectors
//! (paper §5).
//!
//! Both §5.1 training optimizations are expressible here:
//!
//! * **batching** — build a `TreeBatch` from many plans of one equivalence
//!   class instead of one plan;
//! * **information sharing** — supervise *all* positions of one pass
//!   ([`Supervision::AllOperators`]); the unshared baseline instead builds a
//!   `TreeBatch` per subtree and supervises only its root
//!   ([`Supervision::RootOnly`]), recomputing descendants once per ancestor
//!   exactly as the naive Equation-7 evaluation would.
//!
//! Since the training loop moved onto the differentiable wavefront engine
//! ([`crate::train_program::ProgramTape`], DESIGN.md §9), this module is
//! the **reference implementation and differential oracle**: it computes
//! gradients in the arrangement the paper describes, one equivalence
//! class at a time, and both the serving engine
//! ([`crate::infer::PlanProgram`]) and the training tape are held to
//! agreement with it (`tests/infer_differential.rs`,
//! `tests/train_differential.rs`; position numbering is shared via
//! [`crate::lower`] so it cannot drift). It remains the *production*
//! gradient path only for the §5.1 ablation modes — which are defined by
//! the per-class arrangement — and via
//! [`crate::config::TrainEngine::Classes`].

use crate::config::TargetCodec;
use crate::unit::UnitSet;
use qpp_nn::{Matrix, MlpCache};
use qpp_plansim::features::{Featurizer, Whitener};
use qpp_plansim::operators::OpKind;
use qpp_plansim::plan::PlanNode;
use serde::{Deserialize, Serialize};

/// Which positions contribute latency-error terms to the loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Supervision {
    /// Every operator in the tree (Equation 7 over the whole plan; used by
    /// the information-sharing fast path).
    AllOperators,
    /// Only the root (used when each operator's subtree is evaluated
    /// separately by the naive path).
    RootOnly,
}

/// One evaluation position (an operator occurrence shared by all plans in
/// the batch).
struct Position {
    kind: OpKind,
    /// Indices (into the position list) of this node's children.
    children: Vec<usize>,
    /// Whitened features, `batch × feature_size(kind)`.
    features: Matrix,
    /// Encoded latency targets, one per plan in the batch.
    targets: Vec<f32>,
}

/// A batch of structurally-identical plans in evaluation order.
pub struct TreeBatch {
    positions: Vec<Position>,
    batch: usize,
}

/// Cached activations from a [`TreeBatch::forward`] pass.
pub struct TreeForward {
    caches: Vec<MlpCache>,
}

impl TreeBatch {
    /// Lowers `roots` (all with identical structure signatures) into a
    /// batch. Features are whitened with `whitener`; targets encoded with
    /// `transform`.
    ///
    /// # Panics
    /// Panics if `roots` is empty or the trees are not structurally
    /// identical.
    pub fn build(
        featurizer: &Featurizer,
        whitener: &Whitener,
        codec: &TargetCodec,
        roots: &[&PlanNode],
    ) -> TreeBatch {
        Self::build_with(|node| whitener.features(featurizer, node), codec, roots)
    }

    /// Like [`TreeBatch::build`], but with an arbitrary feature source.
    ///
    /// `features_of` must return the *whitened* feature vector for a node,
    /// with a consistent size per operator family. Used by the
    /// permutation-importance analysis ([`crate::importance`]) to perturb
    /// individual feature columns without touching the plans.
    ///
    /// # Panics
    /// Panics if `roots` is empty or the trees are not structurally
    /// identical.
    pub fn build_with(
        features_of: impl Fn(&PlanNode) -> Vec<f32>,
        codec: &TargetCodec,
        roots: &[&PlanNode],
    ) -> TreeBatch {
        assert!(!roots.is_empty(), "empty tree batch");
        let batch = roots.len();

        // Post-order node lists per plan; identical signatures guarantee
        // positional alignment.
        let node_lists: Vec<Vec<&PlanNode>> = roots.iter().map(|r| r.postorder()).collect();
        let n = node_lists[0].len();
        for l in &node_lists {
            assert_eq!(l.len(), n, "tree batch requires identical structures");
        }

        // Child indices derived from the first plan's recursive structure
        // (shared with the serving engine via `lower` so position numbering
        // can never drift between the two).
        let mut children = crate::lower::postorder_children(roots[0]);
        debug_assert_eq!(children.len(), n);

        let positions = (0..n)
            .map(|k| {
                let kind = node_lists[0][k].op.kind();
                let first = features_of(node_lists[0][k]);
                let fsize = first.len();
                let mut features = Matrix::zeros(batch, fsize);
                let mut targets = Vec::with_capacity(batch);
                for (b, nodes) in node_lists.iter().enumerate() {
                    let node = nodes[k];
                    assert_eq!(node.op.kind(), kind, "tree batch structure mismatch");
                    let v = if b == 0 { first.clone() } else { features_of(node) };
                    assert_eq!(v.len(), fsize, "inconsistent feature size for {kind:?}");
                    features.row_mut(b).copy_from_slice(&v);
                    targets.push(codec.encode(node.actual.latency_ms));
                }
                Position { kind, children: std::mem::take(&mut children[k]), features, targets }
            })
            .collect();

        TreeBatch { positions, batch }
    }

    /// Number of plans in the batch.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Number of operator positions per plan.
    pub fn num_positions(&self) -> usize {
        self.positions.len()
    }

    /// Total supervised operator instances under `sup`.
    pub fn supervised_count(&self, sup: Supervision) -> usize {
        match sup {
            Supervision::AllOperators => self.batch * self.positions.len(),
            Supervision::RootOnly => self.batch,
        }
    }

    /// Bottom-up forward pass through the neural units, caching
    /// activations for [`TreeBatch::backward`].
    pub fn forward(&self, units: &UnitSet) -> TreeForward {
        let out_w = units.out_size();
        let mut caches: Vec<MlpCache> = Vec::with_capacity(self.positions.len());
        for pos in &self.positions {
            let input = if pos.children.is_empty() {
                pos.features.clone()
            } else {
                let mut parts: Vec<&Matrix> = Vec::with_capacity(1 + pos.children.len());
                parts.push(&pos.features);
                for &c in &pos.children {
                    parts.push(caches[c].output());
                }
                Matrix::hcat(&parts)
            };
            debug_assert_eq!(input.cols(), units.unit(pos.kind).in_dim());
            let cache = units.unit(pos.kind).forward_cached(&input);
            debug_assert_eq!(cache.output().cols(), out_w);
            caches.push(cache);
        }
        TreeForward { caches }
    }

    /// Inference-style forward returning the decoded root latency
    /// predictions (milliseconds), one per plan.
    pub fn predict_roots(&self, units: &UnitSet, codec: &TargetCodec) -> Vec<f64> {
        let fwd = self.forward(units);
        let root = self.positions.len() - 1;
        (0..self.batch)
            .map(|b| codec.decode(fwd.caches[root].output().get(b, 0)))
            .collect()
    }

    /// Decoded latency predictions for every position of every plan
    /// (`result[position][plan]`, milliseconds).
    pub fn predict_all(&self, units: &UnitSet, codec: &TargetCodec) -> Vec<Vec<f64>> {
        let fwd = self.forward(units);
        self.positions
            .iter()
            .enumerate()
            .map(|(k, _)| {
                (0..self.batch)
                    .map(|b| codec.decode(fwd.caches[k].output().get(b, 0)))
                    .collect()
            })
            .collect()
    }

    /// Like [`TreeBatch::predict_all`], additionally projecting the decoded
    /// predictions onto the structural envelope of inclusive latencies:
    ///
    /// * **monotonicity** — a node's inclusive latency is never below its
    ///   largest child's (true of the ground truth by construction);
    /// * **bounded amplification** — a node's inclusive latency is at most
    ///   `caps.cap(kind, child_ms) ×` its largest child's, where the caps
    ///   are maxima observed on the *training set*, stratified by the
    ///   child-latency decade (a 2 ms sort may multiply its child's time
    ///   a thousandfold; a 500 s sort never does).
    ///
    /// In-distribution predictions already satisfy the envelope; the
    /// projection only clips extrapolation blow-ups on unseen templates
    /// (see EXPERIMENTS.md, "Unseen-template guard"). The network's
    /// internal data flow is untouched — clamping is a post-hoc fold over
    /// decoded values.
    // `b` indexes parallel inner vectors of `preds`; an iterator rewrite
    // would obscure the cross-position reads.
    #[allow(clippy::needless_range_loop)]
    pub fn predict_all_clamped(
        &self,
        units: &UnitSet,
        codec: &TargetCodec,
        caps: &RatioCaps,
    ) -> Vec<Vec<f64>> {
        let mut preds = self.predict_all(units, codec);
        for k in 0..self.positions.len() {
            let pos = &self.positions[k];
            if pos.children.is_empty() {
                continue;
            }
            for b in 0..self.batch {
                let max_child = pos
                    .children
                    .iter()
                    .map(|&c| preds[c][b])
                    .fold(0.0f64, f64::max);
                let cap = caps.cap(pos.kind, max_child);
                let (lo, hi) = (max_child, max_child * cap.max(1.0));
                preds[k][b] = preds[k][b].clamp(lo, hi.max(lo));
            }
        }
        preds
    }

    /// Root predictions under the structural envelope (see
    /// [`TreeBatch::predict_all_clamped`]).
    pub fn predict_roots_clamped(
        &self,
        units: &UnitSet,
        codec: &TargetCodec,
        caps: &RatioCaps,
    ) -> Vec<f64> {
        self.predict_all_clamped(units, codec, caps)
            .pop()
            .expect("tree has at least one position")
    }

    /// Computes the summed-squared-error loss over the supervised
    /// positions and the per-position output gradients.
    ///
    /// Returns `(sse, grads)`. Gradients are **unnormalized** (pure SSE):
    /// the trainer accumulates across equivalence classes and normalizes
    /// once by the total operator count — the unbiased recombination of
    /// §5.1.1.
    pub fn loss(&self, fwd: &TreeForward, sup: Supervision) -> (f64, Vec<Matrix>) {
        let out_w = fwd.caches[0].output().cols();
        let mut grads: Vec<Matrix> =
            self.positions.iter().map(|_| Matrix::zeros(self.batch, out_w)).collect();
        let mut sse = 0.0f64;
        let root = self.positions.len() - 1;
        for (k, pos) in self.positions.iter().enumerate() {
            if sup == Supervision::RootOnly && k != root {
                continue;
            }
            let out = fwd.caches[k].output();
            for b in 0..self.batch {
                let err = out.get(b, 0) - pos.targets[b];
                sse += (err as f64) * (err as f64);
                grads[k].set(b, 0, 2.0 * err);
            }
        }
        (sse, grads)
    }

    /// Reverse pass: accumulates parameter gradients into `units` and
    /// routes input gradients from each parent into its children's output
    /// gradients.
    pub fn backward(&self, units: &mut UnitSet, fwd: &TreeForward, mut grads: Vec<Matrix>) {
        let out_w = units.out_size();
        for k in (0..self.positions.len()).rev() {
            let pos = &self.positions[k];
            if grads[k].max_abs() == 0.0 {
                continue;
            }
            let d_in = units.unit_mut(pos.kind).backward(&fwd.caches[k], &grads[k]);
            let feat_w = pos.features.cols();
            for (i, &c) in pos.children.iter().enumerate() {
                let slice = d_in.slice_cols(feat_w + i * out_w, out_w);
                grads[c].add_scaled(&slice, 1.0);
            }
        }
    }
}

/// Number of child-latency decades distinguished by [`RatioCaps`]
/// (bucket `b` covers children in `[10^b, 10^(b+1))` milliseconds).
pub const RATIO_BUCKETS: usize = 10;

/// Per-family, child-latency-stratified inclusive/child ratio caps for
/// the inference-time structural envelope.
///
/// The observation behind the stratification: how much an operator can
/// *multiply* its largest child's inclusive latency depends strongly on
/// that child's magnitude. A sort above a 2 ms index probe can easily be
/// 100× its child; a sort above a 500 s join pipeline never is. A single
/// per-family cap (the maximum over all scales) is therefore dominated by
/// the tiny-child regime and lets large-child extrapolation errors
/// through. Stratifying by the child-latency decade keeps the guard tight
/// exactly where blow-ups hurt the most.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatioCaps {
    /// `caps[family][bucket]`; `-1.0` marks buckets unobserved in training
    /// (a sentinel rather than `NAN` so snapshots survive JSON, which has
    /// no NaN literal).
    caps: Vec<[f64; RATIO_BUCKETS]>,
    /// Per-family global maximum (fallback for unobserved families).
    global: Vec<f64>,
}

/// Sentinel for "bucket unobserved in training".
const UNSET: f64 = -1.0;

impl RatioCaps {
    fn bucket(child_ms: f64) -> usize {
        (child_ms.max(1.0).log10().floor() as usize).min(RATIO_BUCKETS - 1)
    }

    /// The amplification cap for a `kind` node whose largest child has
    /// (predicted) inclusive latency `child_ms`.
    ///
    /// Unobserved buckets fall back to the nearest observed bucket of the
    /// same family (preferring the larger of the two when equidistant);
    /// families with no internal-node observations at all are uncapped.
    pub fn cap(&self, kind: OpKind, child_ms: f64) -> f64 {
        let row = &self.caps[kind.index()];
        let b = Self::bucket(child_ms);
        if row[b] != UNSET {
            return row[b];
        }
        for dist in 1..RATIO_BUCKETS {
            let lo = b.checked_sub(dist).map(|i| row[i]).unwrap_or(UNSET);
            let hi = row.get(b + dist).copied().unwrap_or(UNSET);
            match (lo != UNSET, hi != UNSET) {
                (true, true) => return lo.max(hi),
                (true, false) => return lo,
                (false, true) => return hi,
                (false, false) => {}
            }
        }
        if self.global[kind.index()] > 0.0 {
            self.global[kind.index()]
        } else {
            f64::INFINITY
        }
    }
}

/// Fits the stratified inclusive/child latency ratio caps used by
/// [`TreeBatch::predict_all_clamped`], from ground-truth training plans.
///
/// `margin` widens the observed maxima (e.g. `2.0` doubles them) to leave
/// room for unseen-but-plausible regimes; widened caps are floored at 1.5
/// so the envelope never forbids modest growth.
pub fn fit_ratio_caps<'a>(
    plans: impl IntoIterator<Item = &'a qpp_plansim::plan::Plan>,
    margin: f64,
) -> RatioCaps {
    let nk = OpKind::ALL.len();
    let mut caps = vec![[UNSET; RATIO_BUCKETS]; nk];
    let mut global = vec![0.0f64; nk];
    for plan in plans {
        plan.root.visit_postorder(&mut |n| {
            if n.children.is_empty() {
                return;
            }
            let max_child = n
                .children
                .iter()
                .map(|c| c.actual.latency_ms)
                .fold(0.0f64, f64::max)
                .max(1e-9);
            let ratio = n.actual.latency_ms / max_child;
            let k = n.op.kind().index();
            let b = RatioCaps::bucket(max_child);
            if caps[k][b] == UNSET || ratio > caps[k][b] {
                caps[k][b] = ratio;
            }
            global[k] = global[k].max(ratio);
        });
    }
    let margin = margin.max(1.0);
    for row in &mut caps {
        for c in row.iter_mut() {
            if *c != UNSET {
                *c = (*c * margin).max(1.5);
            }
        }
    }
    for g in &mut global {
        if *g > 0.0 {
            *g = (*g * margin).max(1.5);
        }
    }
    RatioCaps { caps, global }
}

/// Groups plans into the structural equivalence classes of §5.1.1.
///
/// Returns `(signature, member indices)` pairs in first-seen order.
pub fn equivalence_classes<'a>(
    plans: impl IntoIterator<Item = (usize, &'a PlanNode)>,
) -> Vec<(String, Vec<usize>)> {
    let mut order: Vec<String> = Vec::new();
    let mut classes: std::collections::HashMap<String, Vec<usize>> = Default::default();
    for (idx, root) in plans {
        let sig = root.signature();
        let entry = classes.entry(sig.clone()).or_insert_with(|| {
            order.push(sig);
            Vec::new()
        });
        entry.push(idx);
    }
    order
        .into_iter()
        .map(|sig| {
            let members = classes.remove(&sig).expect("class recorded");
            (sig, members)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{QppConfig, TargetTransform};
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;
    use rand::SeedableRng;

    fn setup() -> (Dataset, Featurizer, Whitener, UnitSet) {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 24, 11);
        let fz = Featurizer::new(&ds.catalog);
        let wh = Whitener::fit(&fz, ds.plans.iter());
        let cfg = QppConfig::tiny();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let units = UnitSet::new(&cfg, &fz, &mut rng);
        (ds, fz, wh, units)
    }

    #[test]
    fn forward_produces_one_output_per_position() {
        let (ds, fz, wh, units) = setup();
        let tb = TreeBatch::build(&fz, &wh, &TargetCodec::identity(TargetTransform::Log1p), &[&ds.plans[0].root]);
        assert_eq!(tb.num_positions(), ds.plans[0].node_count());
        let fwd = tb.forward(&units);
        assert_eq!(fwd.caches.len(), tb.num_positions());
    }

    #[test]
    fn batched_forward_equals_single_plan_forward() {
        let (ds, fz, wh, units) = setup();
        // Find two plans with identical signatures.
        let classes = equivalence_classes(ds.plans.iter().enumerate().map(|(i, p)| (i, &p.root)));
        let class = classes.iter().find(|(_, m)| m.len() >= 2).expect("a repeated structure");
        let (a, b) = (class.1[0], class.1[1]);

        let codec = TargetCodec::identity(TargetTransform::Log1p);
        let both = TreeBatch::build(&fz, &wh, &codec, &[&ds.plans[a].root, &ds.plans[b].root]);
        let preds_both = both.predict_roots(&units, &TargetCodec::identity(TargetTransform::Log1p));

        for (i, idx) in [(0usize, a), (1usize, b)] {
            let single = TreeBatch::build(&fz, &wh, &TargetCodec::identity(TargetTransform::Log1p), &[&ds.plans[idx].root]);
            let pred = single.predict_roots(&units, &TargetCodec::identity(TargetTransform::Log1p))[0];
            let rel = (pred - preds_both[i]).abs() / (1.0 + pred.abs());
            assert!(rel < 1e-4, "plan {idx}: single {pred} vs batched {}", preds_both[i]);
        }
    }

    #[test]
    fn root_only_loss_counts_fewer_terms() {
        let (ds, fz, wh, units) = setup();
        let tb = TreeBatch::build(&fz, &wh, &TargetCodec::identity(TargetTransform::Log1p), &[&ds.plans[0].root]);
        let fwd = tb.forward(&units);
        let (all, _) = tb.loss(&fwd, Supervision::AllOperators);
        let (root, _) = tb.loss(&fwd, Supervision::RootOnly);
        assert!(all >= root);
        assert_eq!(tb.supervised_count(Supervision::AllOperators), tb.num_positions());
        assert_eq!(tb.supervised_count(Supervision::RootOnly), 1);
    }

    #[test]
    fn backward_fills_gradients_for_used_units() {
        let (ds, fz, wh, mut units) = setup();
        let tb = TreeBatch::build(&fz, &wh, &TargetCodec::identity(TargetTransform::Log1p), &[&ds.plans[0].root]);
        let fwd = tb.forward(&units);
        let (_, grads) = tb.loss(&fwd, Supervision::AllOperators);
        units.zero_grad();
        tb.backward(&mut units, &fwd, grads);
        // The scan unit is always used; its first-layer gradient must be
        // non-zero.
        let g = &units.unit(OpKind::Scan).layers()[0].gw;
        assert!(g.norm() > 0.0);
    }

    /// Finite-difference check through an entire plan-structured network:
    /// perturb a weight of the *scan* unit and verify the loss moves as the
    /// analytic gradient (accumulated through parent units) predicts.
    #[test]
    fn plan_structured_gradients_match_finite_differences() {
        let (ds, fz, wh, mut units) = setup();
        // Pick a plan with at least 3 nodes so the scan output feeds a parent.
        let plan = ds.plans.iter().find(|p| p.node_count() >= 3).unwrap();
        let tb = TreeBatch::build(&fz, &wh, &TargetCodec::identity(TargetTransform::Log1p), &[&plan.root]);

        let loss_of = |units: &UnitSet| -> f64 {
            let fwd = tb.forward(units);
            tb.loss(&fwd, Supervision::AllOperators).0
        };

        units.zero_grad();
        let fwd = tb.forward(&units);
        let (_, grads) = tb.loss(&fwd, Supervision::AllOperators);
        tb.backward(&mut units, &fwd, grads);

        let mut worst: f64 = 0.0;
        let mut compared = 0usize;
        let h = 5e-3f32;
        for kind in [OpKind::Scan, OpKind::Join, OpKind::Aggregate] {
            let layer0_params = {
                let u = units.unit(kind);
                (u.layers()[0].w.rows(), u.layers()[0].w.cols())
            };
            // Check a handful of weights in layer 0. Points where a ReLU
            // kink inside ±h makes the central difference step-size
            // dependent are skipped by the shared stability filter
            // (`qpp_nn::gradcheck::stable_central_diff`).
            for (r, c) in [(0, 0), (1, 2), (layer0_params.0 - 1, layer0_params.1 - 1)] {
                let analytic = units.unit(kind).layers()[0].gw.get(r, c) as f64;
                let orig = units.unit(kind).layers()[0].w.get(r, c);
                let numeric = qpp_nn::gradcheck::stable_central_diff(
                    |offset| {
                        units.unit_mut(kind).layers_mut()[0].w.set(r, c, orig + offset);
                        let l = loss_of(&units);
                        units.unit_mut(kind).layers_mut()[0].w.set(r, c, orig);
                        l
                    },
                    h,
                    0.01,
                );
                let Some(numeric) = numeric else { continue };
                let denom = analytic.abs().max(numeric.abs()).max(1e-2);
                worst = worst.max((analytic - numeric).abs() / denom);
                compared += 1;
            }
        }
        // Guard against a vacuous pass: the kink filter must not have
        // discarded every sampled point.
        assert!(compared >= 5, "only {compared} of 9 points were kink-stable");
        assert!(worst < 0.05, "worst relative gradient error {worst}");
    }

    #[test]
    fn clamped_predictions_respect_the_structural_envelope() {
        let (ds, fz, wh, units) = setup();
        let codec = TargetCodec::identity(TargetTransform::Log1p);
        let caps = crate::tree::fit_ratio_caps(ds.plans.iter(), 2.0);
        for plan in ds.plans.iter().take(6) {
            let tb = TreeBatch::build(&fz, &wh, &codec, &[&plan.root]);
            let preds = tb.predict_all_clamped(&units, &codec, &caps);
            // Walk positions: every parent within [max child, max child*cap].
            let nodes = plan.root.postorder();
            let children = crate::lower::postorder_children(&plan.root);
            for (k, kids) in children.iter().enumerate() {
                if kids.is_empty() {
                    continue;
                }
                let max_child = kids.iter().map(|&c| preds[c][0]).fold(0.0f64, f64::max);
                let cap = caps.cap(nodes[k].op.kind(), max_child);
                assert!(preds[k][0] + 1e-9 >= max_child, "monotonicity violated");
                assert!(preds[k][0] <= max_child * cap.max(1.0) + 1e-6, "cap violated");
            }
        }
    }

    #[test]
    fn ratio_caps_cover_training_ground_truth() {
        let (ds, ..) = setup();
        let caps = crate::tree::fit_ratio_caps(ds.plans.iter(), 1.0);
        for p in &ds.plans {
            p.root.visit_postorder(&mut |n| {
                if n.children.is_empty() {
                    return;
                }
                let max_child = n
                    .children
                    .iter()
                    .map(|c| c.actual.latency_ms)
                    .fold(0.0f64, f64::max)
                    .max(1e-9);
                let ratio = n.actual.latency_ms / max_child;
                // The bucket-matched cap covers every training node (caps
                // are per-bucket maxima, floored at 1.5).
                assert!(
                    ratio <= caps.cap(n.op.kind(), max_child) + 1e-9,
                    "{:?}: ratio {ratio} above cap",
                    n.op.kind()
                );
            });
        }
    }

    #[test]
    fn stratified_caps_are_tighter_for_expensive_children() {
        // The stratification's whole point: the cap the envelope applies
        // to a node above a multi-minute child must be far smaller than
        // the cap above a millisecond child (whose training ratios are
        // huge). Uses a larger workload so both decades are populated.
        let ds = Dataset::generate(Workload::TpcH, 1.0, 200, 13);
        let caps = crate::tree::fit_ratio_caps(ds.plans.iter(), 2.0);
        let cheap = caps.cap(OpKind::Aggregate, 2.0);
        let expensive = caps.cap(OpKind::Aggregate, 5.0 * 60_000.0);
        assert!(
            expensive < cheap,
            "expensive-child cap {expensive} should be tighter than cheap-child cap {cheap}"
        );
    }

    #[test]
    fn caps_fall_back_to_neighbours_and_global() {
        let (ds, ..) = setup();
        let caps = crate::tree::fit_ratio_caps(ds.plans.iter(), 2.0);
        // Every queryable point returns something positive and finite or
        // infinity (never NaN), across 12 decades.
        for kind in OpKind::ALL {
            for exp in 0..12 {
                let c = caps.cap(kind, 10f64.powi(exp));
                assert!(!c.is_nan(), "{kind:?} 1e{exp}");
                assert!(c >= 1.5 || c.is_infinite());
            }
        }
    }

    #[test]
    fn equivalence_classes_partition_the_input() {
        let (ds, ..) = setup();
        let classes = equivalence_classes(ds.plans.iter().enumerate().map(|(i, p)| (i, &p.root)));
        let total: usize = classes.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, ds.plans.len());
        // All members of a class share a signature.
        for (sig, members) in &classes {
            for &m in members {
                assert_eq!(&ds.plans[m].signature(), sig);
            }
        }
    }
}
