//! Thread-local allocation counting behind the process allocator.
//!
//! The serve fast path's contract is *measured*, not claimed: "zero
//! allocation at steady state" is asserted by tests and surfaced as a
//! live counter in `ServeStats::steady_allocs`. That needs a way to ask
//! "how many heap allocations has **this thread** performed?" —
//! [`thread_alloc_count`] — which in turn needs the global allocator to
//! count. [`CountingAlloc`] forwards every call to [`std::alloc::System`]
//! and bumps a thread-local counter on the allocating entry points
//! (`alloc`, `alloc_zeroed`, and `realloc`; frees are not counted — the
//! contract is about *acquiring* memory on the hot path).
//!
//! The counter is a `Cell<u64>` in a `const`-initialized `thread_local!`,
//! which itself never allocates and has no destructor to register, so the
//! bookkeeping cannot recurse into the allocator.
//!
//! Overhead is one thread-local increment per allocation — noise next to
//! the allocation itself — and the crate installs it as the
//! `#[global_allocator]` unconditionally so test, bench and production
//! binaries all measure the same code.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A [`System`]-forwarding allocator that counts allocating calls per
/// thread (see the [module docs](self)).
pub struct CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[inline]
fn bump() {
    ALLOCS.with(|c| c.set(c.get() + 1));
}

// SAFETY: pure forwarding to `System`; the only addition is a
// thread-local counter increment, which neither allocates nor panics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Number of heap allocations (`alloc` + `alloc_zeroed` + `realloc`)
/// performed by the **calling thread** since it started. Monotonic;
/// subtract two readings to count a region's allocations.
pub fn thread_alloc_count() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_allocations_on_this_thread() {
        let before = thread_alloc_count();
        let v: Vec<u64> = Vec::with_capacity(32);
        let after = thread_alloc_count();
        assert!(after > before, "an allocation must bump the counter");
        drop(v);
        // Frees don't count.
        assert_eq!(thread_alloc_count(), after);
        // A no-alloc region reads zero delta.
        let base = thread_alloc_count();
        let x = std::hint::black_box(3u64) + 4;
        assert_eq!(thread_alloc_count() - base, 0, "x={x}");
    }

    #[test]
    fn other_threads_do_not_bleed_into_this_counter() {
        let before = thread_alloc_count();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut v = Vec::new();
                for i in 0..1000u64 {
                    v.push(i);
                }
                assert!(thread_alloc_count() > 0);
            });
        });
        // Spawning the scope thread allocates *on this thread* (stack
        // handle etc.), but the worker's 1000-element growth must not.
        let delta = thread_alloc_count() - before;
        assert!(delta < 100, "worker allocations bled into the parent: {delta}");
    }
}
