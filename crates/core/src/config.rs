//! QPPNet hyper-parameters.
//!
//! Defaults follow the paper's §6 ("Neural networks"): 5 hidden layers of
//! 128 neurons per neural unit, data-vector size `d = 32`, ReLU activations,
//! SGD with learning rate 0.001 and momentum 0.9, trained for 1000 epochs.
//! Epoch counts are the one default we scale down (see EXPERIMENTS.md): the
//! paper's 1000 epochs took ~28 hours on its testbed.

use serde::{Deserialize, Serialize};

/// Which gradient-descent rule to use.
///
/// The paper uses SGD and names Adam \[16\] as future work (§8); both are
/// implemented, and the optimizer ablation bench compares them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// SGD with momentum (the paper's choice).
    Sgd,
    /// Adam (paper §8 future work).
    Adam,
}

/// Transform applied to latency targets before regression.
///
/// Latencies span ~5 orders of magnitude across templates; `Log1p` trains
/// in log-space (and decodes at prediction time), which keeps `f32`
/// gradients well-conditioned. `Raw` reproduces the paper's formulation
/// literally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetTransform {
    /// Regress raw milliseconds.
    Raw,
    /// Regress `ln(1 + ms)` (default).
    Log1p,
}

impl TargetTransform {
    /// Encodes a latency in milliseconds into model space.
    #[inline]
    pub fn encode(self, latency_ms: f64) -> f32 {
        match self {
            TargetTransform::Raw => latency_ms as f32,
            TargetTransform::Log1p => (latency_ms.max(0.0)).ln_1p() as f32,
        }
    }

    /// Decodes a model-space prediction back to milliseconds (clamped
    /// non-negative).
    #[inline]
    pub fn decode(self, value: f32) -> f64 {
        match self {
            TargetTransform::Raw => (value as f64).max(0.0),
            TargetTransform::Log1p => (value as f64).exp_m1().max(0.0),
        }
    }
}

/// A fitted target codec: transform + standardization statistics.
///
/// Latency targets are whitened in encoded space exactly like the input
/// features are (paper §6, "Numeric… scaled so that the mean… is zero and
/// the variance is one"); predictions are de-standardized and decoded.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TargetCodec {
    /// The underlying transform.
    pub transform: TargetTransform,
    /// Mean of encoded training targets.
    pub mean: f32,
    /// Standard deviation of encoded training targets.
    pub std: f32,
}

impl TargetCodec {
    /// An identity codec (no standardization) for the given transform.
    pub fn identity(transform: TargetTransform) -> TargetCodec {
        TargetCodec { transform, mean: 0.0, std: 1.0 }
    }

    /// Fits standardization statistics over encoded latencies.
    pub fn fit(transform: TargetTransform, latencies_ms: impl IntoIterator<Item = f64>) -> TargetCodec {
        let encoded: Vec<f32> = latencies_ms.into_iter().map(|l| transform.encode(l)).collect();
        if encoded.is_empty() {
            return TargetCodec::identity(transform);
        }
        let n = encoded.len() as f64;
        let mean = encoded.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = encoded.iter().map(|&v| (v as f64 - mean) * (v as f64 - mean)).sum::<f64>() / n;
        TargetCodec { transform, mean: mean as f32, std: (var.sqrt().max(1e-6)) as f32 }
    }

    /// Encodes a latency (ms) into standardized model space.
    #[inline]
    pub fn encode(&self, latency_ms: f64) -> f32 {
        (self.transform.encode(latency_ms) - self.mean) / self.std
    }

    /// Decodes a standardized model output back to milliseconds.
    #[inline]
    pub fn decode(&self, value: f32) -> f64 {
        self.transform.decode(value * self.std + self.mean)
    }
}

/// The two training optimizations of §5.1, independently toggleable —
/// exactly the four configurations of the paper's Figure 9a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptMode {
    /// Neither optimization: every operator's output is recomputed from its
    /// subtree, one plan at a time.
    None,
    /// Plan-based batch training only (§5.1.1): structurally-identical
    /// plans are vectorized, but subtree outputs are still recomputed per
    /// operator.
    Batching,
    /// Information sharing only (§5.1.2): one bottom-up pass per plan
    /// caches child outputs, but plans are processed one at a time.
    InfoSharing,
    /// Both optimizations (the default).
    Both,
}

impl OptMode {
    /// All four modes in the order Figure 9a reports them.
    pub const ALL: [OptMode; 4] = [OptMode::None, OptMode::Batching, OptMode::InfoSharing, OptMode::Both];

    /// Whether structurally-identical plans are processed as one batch.
    pub fn vectorized(self) -> bool {
        matches!(self, OptMode::Batching | OptMode::Both)
    }

    /// Whether subtree outputs are computed once and shared.
    pub fn shares_info(self) -> bool {
        matches!(self, OptMode::InfoSharing | OptMode::Both)
    }

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            OptMode::None => "None",
            OptMode::Batching => "Batching",
            OptMode::InfoSharing => "Shared info",
            OptMode::Both => "Both",
        }
    }
}

/// Which engine computes training gradients.
///
/// Both engines implement the same mathematics — Equation 7's
/// all-operator supervision with §5.1.1's unbiased recombination — and
/// are held to agreement by `tests/train_differential.rs`; they differ
/// only in how operator rows are grouped into gemm calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainEngine {
    /// Per-equivalence-class [`crate::tree::TreeBatch`] evaluation: one
    /// forward/backward per structural class per position. The §5.1
    /// ablation layout (and the differential oracle for the wavefront
    /// engine); also forced automatically whenever
    /// [`QppConfig::opt_mode`] is not [`OptMode::Both`], since the
    /// ablation modes are *defined* by the per-class arrangement.
    Classes,
    /// The differentiable wavefront program
    /// ([`crate::train_program::ProgramTape`], default): the whole
    /// heterogeneous batch compiled onto the serving engine's
    /// `(height, OpKind)` wavefront layout, one gemm per operator family
    /// per wavefront in each direction.
    Program,
}

impl TrainEngine {
    /// Parses the CLI spelling (`classes` | `program`).
    pub fn parse(s: &str) -> Option<TrainEngine> {
        match s {
            "classes" => Some(TrainEngine::Classes),
            "program" => Some(TrainEngine::Program),
            _ => None,
        }
    }

    /// Display name (the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            TrainEngine::Classes => "classes",
            TrainEngine::Program => "program",
        }
    }
}

/// Learning-rate schedule applied across epochs.
///
/// The paper trains with a constant learning rate; decay schedules are a
/// production convenience (and pair well with the early-stopping
/// extension).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant learning rate (the paper's setting).
    Constant,
    /// Multiply the learning rate by `gamma` every `every` epochs.
    StepDecay {
        /// Epochs between decays.
        every: usize,
        /// Multiplicative decay factor in `(0, 1]`.
        gamma: f32,
    },
    /// Cosine annealing from the base rate down to `min_frac ×` base.
    Cosine {
        /// Final learning rate as a fraction of the base rate.
        min_frac: f32,
    },
}

impl LrSchedule {
    /// Learning rate for `epoch` (0-based) out of `total` epochs, given the
    /// base rate.
    pub fn lr_at(self, base: f32, epoch: usize, total: usize) -> f32 {
        match self {
            LrSchedule::Constant => base,
            LrSchedule::StepDecay { every, gamma } => {
                base * gamma.powi((epoch / every.max(1)) as i32)
            }
            LrSchedule::Cosine { min_frac } => {
                let t = epoch as f32 / (total.saturating_sub(1).max(1)) as f32;
                let floor = base * min_frac;
                floor + 0.5 * (base - floor) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

/// Full hyper-parameter set for a QPPNet model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QppConfig {
    /// Hidden layers per neural unit (paper: 5).
    pub hidden_layers: usize,
    /// Neurons per hidden layer (paper: 128).
    pub hidden_units: usize,
    /// Data-vector size `d` (paper: 32); units output `d + 1` values.
    pub data_size: usize,
    /// Learning rate (paper: 0.001).
    pub learning_rate: f32,
    /// SGD momentum (paper: 0.9).
    pub momentum: f32,
    /// Training epochs (paper: 1000; scaled down by default).
    pub epochs: usize,
    /// Large-batch size for plan-based batch training (§5.1.1).
    pub batch_size: usize,
    /// Gradient rule.
    pub optimizer: OptimizerKind,
    /// Latency-target transform.
    pub target_transform: TargetTransform,
    /// Training-optimization mode (Figure 9a ablation).
    pub opt_mode: OptMode,
    /// Project decoded predictions onto the structural envelope of
    /// inclusive latencies at inference time (monotone along the tree,
    /// per-family amplification caps observed in training). Clips
    /// log-space extrapolation blow-ups on unseen templates.
    pub monotone_clamp: bool,
    /// L2 weight decay applied to all unit weights each step.
    ///
    /// Crucial for generalization to *unseen templates* (the TPC-DS
    /// protocol): one-hot feature columns that never activate during
    /// training keep their random initialization unless decayed toward
    /// zero, and would otherwise inject noise on held-out templates.
    pub weight_decay: f32,
    /// Seed for weight initialization and batch shuffling.
    pub seed: u64,
    /// Worker threads for gradient computation (1 = serial). The
    /// wavefront engine deals each height level's steps across a worker
    /// pool in both sweeps (the forward is bit-identical at any thread
    /// count; gradient sums differ only by f32 summation order); the
    /// per-class engine distributes equivalence classes across threads
    /// and sums their gradients, with the same up-to-summation-order
    /// contract.
    #[serde(default = "default_threads")]
    pub threads: usize,
    /// Gradient engine (see [`TrainEngine`]; default: the wavefront
    /// program).
    #[serde(default = "default_train_engine")]
    pub train_engine: TrainEngine,
    /// Learning-rate schedule (paper: constant).
    #[serde(default = "default_schedule")]
    pub lr_schedule: LrSchedule,
    /// Stop training if the evaluation MAE has not improved for this many
    /// consecutive evaluations (requires an eval set via
    /// [`crate::model::QppNet::fit_tracked`]). `None` = train all epochs,
    /// as the paper does.
    #[serde(default)]
    pub early_stop_patience: Option<usize>,
}

fn default_threads() -> usize {
    1
}

fn default_train_engine() -> TrainEngine {
    TrainEngine::Program
}

fn default_schedule() -> LrSchedule {
    LrSchedule::Constant
}

impl Default for QppConfig {
    fn default() -> Self {
        QppConfig {
            hidden_layers: 5,
            hidden_units: 128,
            data_size: 32,
            learning_rate: 1e-3,
            momentum: 0.9,
            epochs: 100,
            batch_size: 512,
            optimizer: OptimizerKind::Sgd,
            target_transform: TargetTransform::Log1p,
            opt_mode: OptMode::Both,
            monotone_clamp: true,
            weight_decay: 1e-4,
            seed: 0xC0FFEE,
            threads: 1,
            train_engine: TrainEngine::Program,
            lr_schedule: LrSchedule::Constant,
            early_stop_patience: None,
        }
    }
}

impl QppConfig {
    /// The paper's exact configuration (including 1000 epochs).
    pub fn paper() -> Self {
        QppConfig { epochs: 1000, ..Default::default() }
    }

    /// A small, fast configuration for tests and examples.
    pub fn tiny() -> Self {
        QppConfig {
            hidden_layers: 2,
            hidden_units: 32,
            data_size: 8,
            epochs: 30,
            batch_size: 64,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_architecture() {
        let c = QppConfig::default();
        assert_eq!(c.hidden_layers, 5);
        assert_eq!(c.hidden_units, 128);
        assert_eq!(c.data_size, 32);
        assert_eq!(c.learning_rate, 1e-3);
        assert_eq!(c.momentum, 0.9);
        assert_eq!(c.optimizer, OptimizerKind::Sgd);
    }

    #[test]
    fn log1p_transform_round_trips() {
        let t = TargetTransform::Log1p;
        for ms in [0.0, 1.0, 123.456, 1e6] {
            let back = t.decode(t.encode(ms));
            assert!((back - ms).abs() < 1e-2 * (1.0 + ms), "{ms} -> {back}");
        }
    }

    #[test]
    fn raw_transform_clamps_negative_predictions() {
        assert_eq!(TargetTransform::Raw.decode(-5.0), 0.0);
    }

    #[test]
    fn constant_schedule_never_changes() {
        let s = LrSchedule::Constant;
        for e in [0, 10, 999] {
            assert_eq!(s.lr_at(1e-3, e, 1000), 1e-3);
        }
    }

    #[test]
    fn step_decay_halves_at_boundaries() {
        let s = LrSchedule::StepDecay { every: 10, gamma: 0.5 };
        assert_eq!(s.lr_at(1.0, 0, 100), 1.0);
        assert_eq!(s.lr_at(1.0, 9, 100), 1.0);
        assert_eq!(s.lr_at(1.0, 10, 100), 0.5);
        assert_eq!(s.lr_at(1.0, 25, 100), 0.25);
    }

    #[test]
    fn cosine_schedule_anneals_to_floor() {
        let s = LrSchedule::Cosine { min_frac: 0.1 };
        let start = s.lr_at(1.0, 0, 100);
        let mid = s.lr_at(1.0, 50, 100);
        let end = s.lr_at(1.0, 99, 100);
        assert!((start - 1.0).abs() < 1e-6);
        assert!(mid < start && mid > end);
        assert!((end - 0.1).abs() < 1e-3);
    }

    #[test]
    fn config_json_without_new_fields_still_loads() {
        // Backwards compatibility: snapshots serialized before the
        // threads / schedule / early-stop extensions must deserialize.
        let mut v = serde_json::to_value(QppConfig::default()).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("threads");
        obj.remove("lr_schedule");
        obj.remove("early_stop_patience");
        obj.remove("train_engine");
        let cfg: QppConfig = serde_json::from_value(v).unwrap();
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.lr_schedule, LrSchedule::Constant);
        assert_eq!(cfg.early_stop_patience, None);
        assert_eq!(cfg.train_engine, TrainEngine::Program);
    }

    #[test]
    fn train_engine_parses_cli_spellings() {
        assert_eq!(TrainEngine::parse("classes"), Some(TrainEngine::Classes));
        assert_eq!(TrainEngine::parse("program"), Some(TrainEngine::Program));
        assert_eq!(TrainEngine::parse("wavefront"), None);
        assert_eq!(TrainEngine::Program.name(), "program");
        assert_eq!(TrainEngine::Classes.name(), "classes");
    }

    #[test]
    fn opt_mode_flags() {
        assert!(!OptMode::None.vectorized() && !OptMode::None.shares_info());
        assert!(OptMode::Batching.vectorized() && !OptMode::Batching.shares_info());
        assert!(!OptMode::InfoSharing.vectorized() && OptMode::InfoSharing.shares_info());
        assert!(OptMode::Both.vectorized() && OptMode::Both.shares_info());
    }
}
