//! Post-hoc error analysis for trained models.
//!
//! The paper evaluates models with aggregate metrics (§6); production
//! deployments need to know *where* the error lives before trusting a
//! predictor for admission control or scheduling. This module attributes
//! a fitted QPPNet's error to operator families (which neural unit is
//! wrong) and to latency magnitudes (is the model calibrated across the
//! five orders of magnitude the workloads span) — both computable from
//! per-operator predictions, which plan-structured models uniquely expose.
//!
//! A single flat number is a known QPP evaluation failure mode: a
//! predictor can post a respectable aggregate Q-error while being
//! uselessly wrong on exactly the stratum a scheduler cares about (deep
//! join pipelines, one misbehaving operator family). The stratified
//! surface here — [`error_by_family`] with Q-error quantiles,
//! [`error_by_height`] over plan-tree heights, bundled by
//! [`crate::QppNet::evaluate_stratified`] into a [`StratifiedReport`] —
//! keeps the breakdown next to the headline metrics.

use crate::metrics::{sorted_quantile, Metrics};
use crate::model::QppNet;
use qpp_plansim::operators::OpKind;
use qpp_plansim::plan::Plan;
use serde::{Deserialize, Serialize};

fn one() -> f64 {
    1.0
}

/// Error attribution for one operator family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyErrors {
    /// The operator family.
    pub kind: OpKind,
    /// Number of operator instances evaluated.
    pub count: usize,
    /// Mean absolute error of the family's *inclusive* latency
    /// predictions, in milliseconds.
    pub mae_ms: f64,
    /// Mean R(q) factor over the family's instances.
    pub mean_r: f64,
    /// Median R(q) over the family's instances (robust to the outliers
    /// that dominate `mean_r`).
    #[serde(default = "one")]
    pub median_r: f64,
    /// 90th-percentile R(q) over the family's instances.
    #[serde(default = "one")]
    pub p90_r: f64,
    /// Fraction of instances within a factor 1.5 of truth.
    pub r_le_15: f64,
}

/// Plan-level error attribution for one plan-tree height: all evaluated
/// plans whose tree height ([`Plan::depth`]) equals `height`. Deep plans
/// chain more units root-ward, so error *compounds* with height — a flat
/// aggregate hides exactly this axis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeightErrors {
    /// Plan tree height (a single leaf has height 1).
    pub height: usize,
    /// Plans evaluated at this height.
    pub count: usize,
    /// Mean absolute error of the root latency predictions (ms).
    pub mae_ms: f64,
    /// Mean R(q) over the stratum's plans.
    pub mean_r: f64,
    /// Median R(q) over the stratum's plans.
    pub median_r: f64,
    /// 90th-percentile R(q) over the stratum's plans.
    pub p90_r: f64,
    /// Fraction of plans within a factor 1.5 of truth.
    pub r_le_15: f64,
}

/// Plan-level error attribution for one latency decile: the evaluated
/// plans whose *actual* latency rank falls in the decile. Aggregate
/// Q-error is dominated by whichever magnitude has the most queries; a
/// scheduler that admission-controls the long tail needs the top decile
/// to be calibrated on its own ("Breaking Flat": report error where the
/// latency lives, not where the query count lives).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecileErrors {
    /// Latency decile by actual-latency rank (0 = fastest tenth,
    /// 9 = slowest).
    pub decile: usize,
    /// Plans in the decile.
    pub count: usize,
    /// Smallest actual latency in the decile (ms).
    pub lo_ms: f64,
    /// Largest actual latency in the decile (ms).
    pub hi_ms: f64,
    /// Mean absolute error of the root latency predictions (ms).
    pub mae_ms: f64,
    /// Mean R(q) over the decile's plans.
    pub mean_r: f64,
    /// Median R(q) over the decile's plans.
    pub median_r: f64,
    /// 90th-percentile R(q) over the decile's plans.
    pub p90_r: f64,
    /// Fraction of plans within a factor 1.5 of truth.
    pub r_le_15: f64,
}

/// Aggregate metrics plus the stratified breakdowns that qualify them:
/// the output of [`QppNet::evaluate_stratified`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StratifiedReport {
    /// Headline point metrics over the whole test set.
    pub overall: Metrics,
    /// Per-operator-family breakdown (descending MAE).
    pub families: Vec<FamilyErrors>,
    /// Per-plan-height breakdown (heights ascending).
    pub heights: Vec<HeightErrors>,
    /// Per-latency-decile breakdown (deciles ascending; empty when
    /// deserialized from a pre-decile snapshot).
    #[serde(default)]
    pub deciles: Vec<DecileErrors>,
}

/// One row of the calibration report: queries whose *actual* latency
/// falls in `[lo_ms, hi_ms)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationBucket {
    /// Bucket lower bound (inclusive), milliseconds.
    pub lo_ms: f64,
    /// Bucket upper bound (exclusive), milliseconds.
    pub hi_ms: f64,
    /// Queries in the bucket.
    pub count: usize,
    /// Mean actual latency (ms).
    pub mean_actual_ms: f64,
    /// Mean predicted latency (ms).
    pub mean_predicted_ms: f64,
    /// Mean prediction/actual ratio — `> 1` means the model systematically
    /// over-predicts at this magnitude, `< 1` under-predicts.
    pub mean_bias: f64,
}

/// Attributes per-operator prediction error to operator families.
///
/// Families that never occur in `plans` are omitted. Sorted by descending
/// MAE so the worst unit leads.
///
/// # Panics
/// Panics if the model is unfitted or `plans` is empty.
pub fn error_by_family(model: &QppNet, plans: &[&Plan]) -> Vec<FamilyErrors> {
    assert!(!plans.is_empty(), "cannot analyse zero plans");
    let nk = OpKind::ALL.len();
    let mut count = vec![0usize; nk];
    let mut abs_err = vec![0.0f64; nk];
    let mut rs: Vec<Vec<f64>> = vec![Vec::new(); nk];
    let mut r_ok = vec![0usize; nk];

    for plan in plans {
        let preds = model.predict_operators(plan);
        for (node, pred) in plan.root.postorder().iter().zip(preds) {
            let k = node.op.kind().index();
            let actual = node.actual.latency_ms;
            count[k] += 1;
            abs_err[k] += (actual - pred).abs();
            let r = crate::metrics::r_factor(actual, pred);
            rs[k].push(r);
            if r <= 1.5 {
                r_ok[k] += 1;
            }
        }
    }

    let mut out: Vec<FamilyErrors> = OpKind::ALL
        .iter()
        .filter(|k| count[k.index()] > 0)
        .map(|&kind| {
            let k = kind.index();
            let n = count[k] as f64;
            let r = &mut rs[k];
            r.sort_by(|x, y| x.partial_cmp(y).expect("finite R values"));
            FamilyErrors {
                kind,
                count: count[k],
                mae_ms: abs_err[k] / n,
                mean_r: r.iter().sum::<f64>() / n,
                median_r: sorted_quantile(r, 0.5),
                p90_r: sorted_quantile(r, 0.9),
                r_le_15: r_ok[k] as f64 / n,
            }
        })
        .collect();
    out.sort_by(|a, b| b.mae_ms.partial_cmp(&a.mae_ms).expect("finite MAE"));
    out
}

/// Stratifies *plan-level* (root latency) error by plan-tree height.
///
/// Heights that never occur in `plans` are omitted; rows ascend by
/// height. Deep plans route error through more chained units, so this is
/// the first place to look when the aggregate looks fine but scheduling
/// decisions on complex queries keep going wrong.
///
/// # Panics
/// Panics if the model is unfitted or `plans` is empty.
pub fn error_by_height(model: &QppNet, plans: &[&Plan]) -> Vec<HeightErrors> {
    assert!(!plans.is_empty(), "cannot analyse zero plans");
    let preds = model.predict_batch(plans);
    let mut strata: std::collections::BTreeMap<usize, Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    for (plan, pred) in plans.iter().zip(preds) {
        strata.entry(plan.depth()).or_default().push((plan.latency_ms(), pred));
    }
    strata
        .into_iter()
        .map(|(height, pairs)| {
            let n = pairs.len() as f64;
            let mae: f64 = pairs.iter().map(|(a, p)| (a - p).abs()).sum::<f64>() / n;
            let mut rs: Vec<f64> =
                pairs.iter().map(|&(a, p)| crate::metrics::r_factor(a, p)).collect();
            rs.sort_by(|x, y| x.partial_cmp(y).expect("finite R values"));
            let ok = rs.iter().filter(|&&r| r <= 1.5).count();
            HeightErrors {
                height,
                count: pairs.len(),
                mae_ms: mae,
                mean_r: rs.iter().sum::<f64>() / n,
                median_r: sorted_quantile(&rs, 0.5),
                p90_r: sorted_quantile(&rs, 0.9),
                r_le_15: ok as f64 / n,
            }
        })
        .collect()
}

/// Stratifies plan-level (root latency) error by *actual-latency decile*.
///
/// Plans are ranked by actual latency ascending; rank `i` of `n` lands in
/// decile `i·10/n`, so the deciles partition the test set into (near-)
/// equal-count strata regardless of how skewed the latency distribution
/// is — unlike [`calibration`]'s fixed decade buckets, every row here has
/// statistical weight. Ties in actual latency are broken by input order.
/// Rows ascend by decile; with fewer than 10 plans the unoccupied
/// deciles are omitted.
///
/// # Panics
/// Panics if the model is unfitted or `plans` is empty.
pub fn error_by_latency_decile(model: &QppNet, plans: &[&Plan]) -> Vec<DecileErrors> {
    assert!(!plans.is_empty(), "cannot analyse zero plans");
    let preds = model.predict_batch(plans);
    let mut pairs: Vec<(f64, f64)> =
        plans.iter().zip(preds).map(|(p, pred)| (p.latency_ms(), pred)).collect();
    pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite latencies"));

    let n = pairs.len();
    let mut strata: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 10];
    for (rank, pair) in pairs.into_iter().enumerate() {
        strata[rank * 10 / n].push(pair);
    }

    strata
        .into_iter()
        .enumerate()
        .filter(|(_, pairs)| !pairs.is_empty())
        .map(|(decile, pairs)| {
            let n = pairs.len() as f64;
            let mae: f64 = pairs.iter().map(|(a, p)| (a - p).abs()).sum::<f64>() / n;
            let mut rs: Vec<f64> =
                pairs.iter().map(|&(a, p)| crate::metrics::r_factor(a, p)).collect();
            rs.sort_by(|x, y| x.partial_cmp(y).expect("finite R values"));
            let ok = rs.iter().filter(|&&r| r <= 1.5).count();
            DecileErrors {
                decile,
                count: pairs.len(),
                lo_ms: pairs.first().expect("non-empty stratum").0,
                hi_ms: pairs.last().expect("non-empty stratum").0,
                mae_ms: mae,
                mean_r: rs.iter().sum::<f64>() / n,
                median_r: sorted_quantile(&rs, 0.5),
                p90_r: sorted_quantile(&rs, 0.9),
                r_le_15: ok as f64 / n,
            }
        })
        .collect()
}

/// Builds a calibration report over latency decades.
///
/// Queries are bucketed by actual latency (one bucket per decade between
/// 1 ms and 10⁸ ms); empty buckets are omitted.
///
/// # Panics
/// Panics if the model is unfitted or `plans` is empty.
pub fn calibration(model: &QppNet, plans: &[&Plan]) -> Vec<CalibrationBucket> {
    assert!(!plans.is_empty(), "cannot analyse zero plans");
    const DECADES: usize = 9;
    let mut buckets: Vec<(usize, f64, f64, f64)> = vec![(0, 0.0, 0.0, 0.0); DECADES];

    let preds = model.predict_batch(plans);
    for (plan, pred) in plans.iter().zip(preds) {
        let actual = plan.latency_ms();
        let b = (actual.max(1.0).log10().floor() as usize).min(DECADES - 1);
        let e = &mut buckets[b];
        e.0 += 1;
        e.1 += actual;
        e.2 += pred;
        e.3 += pred / actual.max(1e-9);
    }

    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, (n, ..))| *n > 0)
        .map(|(b, (n, actual, pred, bias))| CalibrationBucket {
            lo_ms: 10f64.powi(b as i32),
            hi_ms: 10f64.powi(b as i32 + 1),
            count: n,
            mean_actual_ms: actual / n as f64,
            mean_predicted_ms: pred / n as f64,
            mean_bias: bias / n as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QppConfig;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    fn fitted() -> (Dataset, QppNet) {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 70, 33);
        let mut model = QppNet::new(QppConfig { epochs: 15, ..QppConfig::tiny() }, &ds.catalog);
        model.fit(&ds.plans.iter().collect::<Vec<_>>());
        (ds, model)
    }

    #[test]
    fn family_errors_cover_observed_families_only() {
        let (ds, model) = fitted();
        let plans: Vec<&Plan> = ds.plans.iter().take(25).collect();
        let fams = error_by_family(&model, &plans);
        // Scans always occur; every row has data.
        assert!(fams.iter().any(|f| f.kind == OpKind::Scan));
        let mut seen = std::collections::HashSet::new();
        for f in &fams {
            assert!(f.count > 0);
            assert!(f.mae_ms.is_finite() && f.mean_r >= 1.0);
            assert!((0.0..=1.0).contains(&f.r_le_15));
            assert!(seen.insert(f.kind), "duplicate family");
        }
        // Sorted by descending MAE.
        for w in fams.windows(2) {
            assert!(w[0].mae_ms >= w[1].mae_ms);
        }
    }

    #[test]
    fn family_instance_counts_match_plan_contents() {
        let (ds, model) = fitted();
        let plans: Vec<&Plan> = ds.plans.iter().take(10).collect();
        let fams = error_by_family(&model, &plans);
        let total: usize = fams.iter().map(|f| f.count).sum();
        let expected: usize = plans.iter().map(|p| p.node_count()).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn height_strata_partition_the_queries() {
        let (ds, model) = fitted();
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let heights = error_by_height(&model, &plans);
        let total: usize = heights.iter().map(|h| h.count).sum();
        assert_eq!(total, plans.len());
        for h in &heights {
            assert!(h.count > 0);
            assert!(h.mae_ms.is_finite());
            assert!(h.mean_r >= 1.0 && h.median_r >= 1.0);
            assert!(h.median_r <= h.p90_r + 1e-12, "quantiles must be ordered");
            assert!((0.0..=1.0).contains(&h.r_le_15));
            let expected = plans.iter().filter(|p| p.depth() == h.height).count();
            assert_eq!(h.count, expected, "height {} stratum miscounted", h.height);
        }
        for w in heights.windows(2) {
            assert!(w[0].height < w[1].height, "heights must ascend");
        }
    }

    #[test]
    fn latency_deciles_partition_the_queries_into_ordered_strata() {
        let (ds, model) = fitted();
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let deciles = error_by_latency_decile(&model, &plans);
        assert_eq!(deciles.len(), 10, "70 plans fill every decile");
        let total: usize = deciles.iter().map(|d| d.count).sum();
        assert_eq!(total, plans.len());
        for d in &deciles {
            assert!(d.count > 0);
            assert!(d.lo_ms <= d.hi_ms);
            assert!(d.mae_ms.is_finite());
            assert!(d.mean_r >= 1.0 && d.median_r >= 1.0);
            assert!(d.median_r <= d.p90_r + 1e-12, "quantiles must be ordered");
            assert!((0.0..=1.0).contains(&d.r_le_15));
        }
        // Rank-based strata: deciles ascend, and so do their latency
        // ranges (equal-count, not equal-width).
        for w in deciles.windows(2) {
            assert!(w[0].decile < w[1].decile, "deciles must ascend");
            assert!(w[0].hi_ms <= w[1].lo_ms + 1e-9, "latency ranges must ascend");
            assert!(w[0].count.abs_diff(w[1].count) <= 1, "near-equal counts");
        }
    }

    #[test]
    fn latency_deciles_omit_unoccupied_strata_on_tiny_sets() {
        let (ds, model) = fitted();
        let plans: Vec<&Plan> = ds.plans.iter().take(4).collect();
        let deciles = error_by_latency_decile(&model, &plans);
        assert_eq!(deciles.len(), 4, "4 plans occupy 4 deciles");
        let total: usize = deciles.iter().map(|d| d.count).sum();
        assert_eq!(total, plans.len());
    }

    #[test]
    fn stratified_report_is_consistent_with_its_parts() {
        let (ds, model) = fitted();
        let plans: Vec<&Plan> = ds.plans.iter().take(30).collect();
        let report = model.evaluate_stratified(&plans);
        assert_eq!(report.overall.count, plans.len());
        assert_eq!(report.families.len(), error_by_family(&model, &plans).len());
        assert_eq!(report.heights.len(), error_by_height(&model, &plans).len());
        assert_eq!(report.deciles.len(), error_by_latency_decile(&model, &plans).len());
        for f in &report.families {
            assert!(f.median_r >= 1.0 && f.median_r <= f.p90_r + 1e-12);
        }
        // Round-trips through serde (the CLI emits this as JSON).
        let json = serde_json::to_string(&report).unwrap();
        let back: StratifiedReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.overall.count, report.overall.count);
        assert_eq!(back.heights.len(), report.heights.len());
        assert_eq!(back.deciles.len(), report.deciles.len());
        // Pre-decile snapshots (no `deciles` field) still deserialize.
        let legacy = json.replace("\"deciles\"", "\"_ignored\"");
        assert!(legacy.contains("_ignored"), "field rename must have matched");
        let back: StratifiedReport = serde_json::from_str(&legacy).unwrap();
        assert!(back.deciles.is_empty());
    }

    #[test]
    fn calibration_buckets_partition_the_queries() {
        let (ds, model) = fitted();
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let cal = calibration(&model, &plans);
        let total: usize = cal.iter().map(|b| b.count).sum();
        assert_eq!(total, plans.len());
        for b in &cal {
            assert!(b.lo_ms < b.hi_ms);
            assert!(b.mean_actual_ms >= b.lo_ms && b.mean_actual_ms < b.hi_ms);
            assert!(b.mean_bias.is_finite() && b.mean_bias > 0.0);
        }
        // Buckets ascend by latency.
        for w in cal.windows(2) {
            assert!(w[0].hi_ms <= w[1].lo_ms + 1e-9);
        }
    }

    #[test]
    fn perfect_predictions_have_unit_bias() {
        // Feed the model's own predictions back as "actuals" by checking
        // the bias identity instead: a model evaluated against itself is
        // perfectly calibrated. We emulate it via the public API by
        // asserting bias is finite and within a broad trained range.
        let (ds, model) = fitted();
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let cal = calibration(&model, &plans);
        // Trained on these exact plans: bias should be within [0.2, 5].
        for b in cal {
            assert!(
                b.mean_bias > 0.2 && b.mean_bias < 5.0,
                "bucket {}..{} bias {}",
                b.lo_ms,
                b.hi_ms,
                b.mean_bias
            );
        }
    }
}
