//! Post-hoc error analysis for trained models.
//!
//! The paper evaluates models with aggregate metrics (§6); production
//! deployments need to know *where* the error lives before trusting a
//! predictor for admission control or scheduling. This module attributes
//! a fitted QPPNet's error to operator families (which neural unit is
//! wrong) and to latency magnitudes (is the model calibrated across the
//! five orders of magnitude the workloads span) — both computable from
//! per-operator predictions, which plan-structured models uniquely expose.

use crate::model::QppNet;
use qpp_plansim::operators::OpKind;
use qpp_plansim::plan::Plan;
use serde::{Deserialize, Serialize};

/// Error attribution for one operator family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyErrors {
    /// The operator family.
    pub kind: OpKind,
    /// Number of operator instances evaluated.
    pub count: usize,
    /// Mean absolute error of the family's *inclusive* latency
    /// predictions, in milliseconds.
    pub mae_ms: f64,
    /// Mean R(q) factor over the family's instances.
    pub mean_r: f64,
    /// Fraction of instances within a factor 1.5 of truth.
    pub r_le_15: f64,
}

/// One row of the calibration report: queries whose *actual* latency
/// falls in `[lo_ms, hi_ms)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationBucket {
    /// Bucket lower bound (inclusive), milliseconds.
    pub lo_ms: f64,
    /// Bucket upper bound (exclusive), milliseconds.
    pub hi_ms: f64,
    /// Queries in the bucket.
    pub count: usize,
    /// Mean actual latency (ms).
    pub mean_actual_ms: f64,
    /// Mean predicted latency (ms).
    pub mean_predicted_ms: f64,
    /// Mean prediction/actual ratio — `> 1` means the model systematically
    /// over-predicts at this magnitude, `< 1` under-predicts.
    pub mean_bias: f64,
}

/// Attributes per-operator prediction error to operator families.
///
/// Families that never occur in `plans` are omitted. Sorted by descending
/// MAE so the worst unit leads.
///
/// # Panics
/// Panics if the model is unfitted or `plans` is empty.
pub fn error_by_family(model: &QppNet, plans: &[&Plan]) -> Vec<FamilyErrors> {
    assert!(!plans.is_empty(), "cannot analyse zero plans");
    let nk = OpKind::ALL.len();
    let mut count = vec![0usize; nk];
    let mut abs_err = vec![0.0f64; nk];
    let mut r_sum = vec![0.0f64; nk];
    let mut r_ok = vec![0usize; nk];

    for plan in plans {
        let preds = model.predict_operators(plan);
        for (node, pred) in plan.root.postorder().iter().zip(preds) {
            let k = node.op.kind().index();
            let actual = node.actual.latency_ms;
            count[k] += 1;
            abs_err[k] += (actual - pred).abs();
            let r = crate::metrics::r_factor(actual, pred);
            r_sum[k] += r;
            if r <= 1.5 {
                r_ok[k] += 1;
            }
        }
    }

    let mut out: Vec<FamilyErrors> = OpKind::ALL
        .iter()
        .filter(|k| count[k.index()] > 0)
        .map(|&kind| {
            let k = kind.index();
            let n = count[k] as f64;
            FamilyErrors {
                kind,
                count: count[k],
                mae_ms: abs_err[k] / n,
                mean_r: r_sum[k] / n,
                r_le_15: r_ok[k] as f64 / n,
            }
        })
        .collect();
    out.sort_by(|a, b| b.mae_ms.partial_cmp(&a.mae_ms).expect("finite MAE"));
    out
}

/// Builds a calibration report over latency decades.
///
/// Queries are bucketed by actual latency (one bucket per decade between
/// 1 ms and 10⁸ ms); empty buckets are omitted.
///
/// # Panics
/// Panics if the model is unfitted or `plans` is empty.
pub fn calibration(model: &QppNet, plans: &[&Plan]) -> Vec<CalibrationBucket> {
    assert!(!plans.is_empty(), "cannot analyse zero plans");
    const DECADES: usize = 9;
    let mut buckets: Vec<(usize, f64, f64, f64)> = vec![(0, 0.0, 0.0, 0.0); DECADES];

    let preds = model.predict_batch(plans);
    for (plan, pred) in plans.iter().zip(preds) {
        let actual = plan.latency_ms();
        let b = (actual.max(1.0).log10().floor() as usize).min(DECADES - 1);
        let e = &mut buckets[b];
        e.0 += 1;
        e.1 += actual;
        e.2 += pred;
        e.3 += pred / actual.max(1e-9);
    }

    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, (n, ..))| *n > 0)
        .map(|(b, (n, actual, pred, bias))| CalibrationBucket {
            lo_ms: 10f64.powi(b as i32),
            hi_ms: 10f64.powi(b as i32 + 1),
            count: n,
            mean_actual_ms: actual / n as f64,
            mean_predicted_ms: pred / n as f64,
            mean_bias: bias / n as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QppConfig;
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;

    fn fitted() -> (Dataset, QppNet) {
        let ds = Dataset::generate(Workload::TpcH, 1.0, 70, 33);
        let mut model = QppNet::new(QppConfig { epochs: 15, ..QppConfig::tiny() }, &ds.catalog);
        model.fit(&ds.plans.iter().collect::<Vec<_>>());
        (ds, model)
    }

    #[test]
    fn family_errors_cover_observed_families_only() {
        let (ds, model) = fitted();
        let plans: Vec<&Plan> = ds.plans.iter().take(25).collect();
        let fams = error_by_family(&model, &plans);
        // Scans always occur; every row has data.
        assert!(fams.iter().any(|f| f.kind == OpKind::Scan));
        let mut seen = std::collections::HashSet::new();
        for f in &fams {
            assert!(f.count > 0);
            assert!(f.mae_ms.is_finite() && f.mean_r >= 1.0);
            assert!((0.0..=1.0).contains(&f.r_le_15));
            assert!(seen.insert(f.kind), "duplicate family");
        }
        // Sorted by descending MAE.
        for w in fams.windows(2) {
            assert!(w[0].mae_ms >= w[1].mae_ms);
        }
    }

    #[test]
    fn family_instance_counts_match_plan_contents() {
        let (ds, model) = fitted();
        let plans: Vec<&Plan> = ds.plans.iter().take(10).collect();
        let fams = error_by_family(&model, &plans);
        let total: usize = fams.iter().map(|f| f.count).sum();
        let expected: usize = plans.iter().map(|p| p.node_count()).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn calibration_buckets_partition_the_queries() {
        let (ds, model) = fitted();
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let cal = calibration(&model, &plans);
        let total: usize = cal.iter().map(|b| b.count).sum();
        assert_eq!(total, plans.len());
        for b in &cal {
            assert!(b.lo_ms < b.hi_ms);
            assert!(b.mean_actual_ms >= b.lo_ms && b.mean_actual_ms < b.hi_ms);
            assert!(b.mean_bias.is_finite() && b.mean_bias > 0.0);
        }
        // Buckets ascend by latency.
        for w in cal.windows(2) {
            assert!(w[0].hi_ms <= w[1].lo_ms + 1e-9);
        }
    }

    #[test]
    fn perfect_predictions_have_unit_bias() {
        // Feed the model's own predictions back as "actuals" by checking
        // the bias identity instead: a model evaluated against itself is
        // perfectly calibrated. We emulate it via the public API by
        // asserting bias is finite and within a broad trained range.
        let (ds, model) = fitted();
        let plans: Vec<&Plan> = ds.plans.iter().collect();
        let cal = calibration(&model, &plans);
        // Trained on these exact plans: bias should be within [0.2, 5].
        for b in cal {
            assert!(
                b.mean_bias > 0.2 && b.mean_bias < 5.0,
                "bucket {}..{} bias {}",
                b.lo_ms,
                b.hi_ms,
                b.mean_bias
            );
        }
    }
}
