//! JSON-lines serving front end: a long-running prediction daemon over
//! TCP or unix sockets.
//!
//! This module turns the resident serving machinery — [`Tenants`] of
//! per-model [`ShardedStream`]s with [`MicroBatcher`] coalescing on the
//! process-wide executor — into an actual network service:
//!
//! * **Protocol** ([`proto`]): one JSON object per line, versioned
//!   (`"v":1`), with `admit` / `retire` / `predict` / `admit_predict` /
//!   `stats` / `shutdown` verbs. Every reply carries `"ok"`; failures are
//!   structured [`proto::ErrorReply`] objects, never bare disconnects.
//! * **u64 precision pin**: the vendored serde stub transports numbers as
//!   `f64` (exact only below 2^53), so plan ids cross the wire as
//!   **decimal strings** and model fingerprints as **16-digit hex
//!   strings**. Numeric ids are *rejected* with a `bad_request` citing
//!   the precision bound — `tests/serve_protocol.rs` pins this choice.
//! * **Framing** ([`LineBuf`]): length-safe line reads with a hard
//!   per-line cap (oversized lines are discarded to the next newline and
//!   reported as one `line_too_long` error, the connection survives) and
//!   a string-aware nesting-depth pre-scan ([`nesting_depth`]) so deeply
//!   nested payloads cannot stack-overflow the recursive vendored parser.
//! * **Server** ([`Server`]): one blocking handler thread per connection
//!   inside a [`std::thread::scope`]; `admit_predict` requests coalesce
//!   through a leader/follower queue into one [`MicroBatcher`] flush
//!   (burst width [`ServeConfig::burst`], leader deadline
//!   [`ServeConfig::burst_wait_us`]). All stream mutation happens under
//!   one state lock with [`std::panic::catch_unwind`] backstops, so a
//!   poisoned run is reported as an `internal` error to the offending
//!   client while the daemon keeps serving (the PR 3/6 executor contract
//!   already guarantees the worker pool itself survives panics).
//! * **Fast path** ([`scratch`], DESIGN.md §13): eligible one-shot
//!   `admit_predict` lines (when [`ServeConfig::fast_path`] is on and
//!   `burst <= 1`) parse directly into per-connection scratch CSR
//!   arrays, run `ShardedStream::predict_oneshot` without touching a
//!   builder, and reply from a reused buffer in one write — zero heap
//!   allocations per request at steady state (after a per-connection
//!   warmup window; measured by the `steady_allocs` counter and a
//!   regression test). Anything the scratch decoder cannot prove
//!   eligible falls back to the general path, so error replies come
//!   from exactly one code path and stay byte-identical.
//! * **Why served bits equal in-process bits**: the wavefront kernels
//!   are row-invariant and [`ShardedStream`] routing is content-hashed
//!   (thread- and shard-count invariant), so any admit/retire/predict
//!   interleaving served here produces *bitwise* the same `f64` as a
//!   single in-process [`ProgramBuilder`](crate::stream::ProgramBuilder)
//!   replaying the same sequence; the vendored JSON formatter prints
//!   `f64` via Rust's shortest-round-trip `Display`, which parses back
//!   to the identical bits. `tests/serve_differential.rs` asserts this
//!   end to end through the socket.
//!
//! [`Tenants`]: crate::model::Tenants
//! [`ShardedStream`]: crate::stream::ShardedStream
//! [`MicroBatcher`]: crate::stream::MicroBatcher

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::model::{QppNet, Tenants};
use crate::stream::{MicroBatcher, PlanId};
use qpp_plansim::plan::PlanNode;

pub use proto::{ErrorCode, ErrorReply, Request, Response, ServeStats};

/// Wire protocol message types and their line-level JSON codecs.
pub mod proto {
    use qpp_plansim::plan::PlanNode;
    use serde::{Map, Value};

    /// Protocol version spoken by this build. Every line carries `"v"`.
    pub const VERSION: u64 = 1;

    /// Largest integer the vendored serde stub (numbers as `f64`) can
    /// transport exactly. Ids at or above this bound MUST be string-coded.
    pub const MAX_EXACT_INT: u64 = 1 << 53;

    /// Machine-readable failure category carried in every error reply.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum ErrorCode {
        /// The line was not valid JSON (or exceeded the nesting cap).
        Parse,
        /// Structurally valid JSON that violates the protocol schema.
        BadRequest,
        /// The `"op"` field named no known verb.
        UnknownOp,
        /// The plan id is not resident in any session.
        UnknownId,
        /// The tenant fingerprint matched no registered model.
        UnknownTenant,
        /// The plan tree failed admission validation (operator arity).
        InvalidPlan,
        /// The line exceeded the framing cap and was discarded.
        LineTooLong,
        /// The server hit an internal failure serving this request.
        Internal,
    }

    impl ErrorCode {
        /// The wire spelling of this code.
        pub fn as_str(self) -> &'static str {
            match self {
                ErrorCode::Parse => "parse",
                ErrorCode::BadRequest => "bad_request",
                ErrorCode::UnknownOp => "unknown_op",
                ErrorCode::UnknownId => "unknown_id",
                ErrorCode::UnknownTenant => "unknown_tenant",
                ErrorCode::InvalidPlan => "invalid_plan",
                ErrorCode::LineTooLong => "line_too_long",
                ErrorCode::Internal => "internal",
            }
        }

        /// Parses a wire spelling back into a code.
        pub fn parse(s: &str) -> Option<ErrorCode> {
            Some(match s {
                "parse" => ErrorCode::Parse,
                "bad_request" => ErrorCode::BadRequest,
                "unknown_op" => ErrorCode::UnknownOp,
                "unknown_id" => ErrorCode::UnknownId,
                "unknown_tenant" => ErrorCode::UnknownTenant,
                "invalid_plan" => ErrorCode::InvalidPlan,
                "line_too_long" => ErrorCode::LineTooLong,
                "internal" => ErrorCode::Internal,
                _ => return None,
            })
        }

        /// Every code, for exhaustive round-trip testing.
        pub const ALL: [ErrorCode; 8] = [
            ErrorCode::Parse,
            ErrorCode::BadRequest,
            ErrorCode::UnknownOp,
            ErrorCode::UnknownId,
            ErrorCode::UnknownTenant,
            ErrorCode::InvalidPlan,
            ErrorCode::LineTooLong,
            ErrorCode::Internal,
        ];
    }

    /// A structured failure reply: category plus human-readable detail.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ErrorReply {
        /// Failure category.
        pub code: ErrorCode,
        /// Human-readable detail (not part of the stable protocol).
        pub msg: String,
    }

    impl ErrorReply {
        /// Builds an error reply.
        pub fn new(code: ErrorCode, msg: impl Into<String>) -> ErrorReply {
            ErrorReply { code, msg: msg.into() }
        }
    }

    /// One client request line.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Request {
        /// Admit a plan into a resident stream; it stays resident until
        /// retired. `tenant` selects a registered model by fingerprint
        /// (default tenant when `None`).
        Admit {
            /// The plan tree to admit.
            plan: Box<PlanNode>,
            /// Target model fingerprint; `None` = default tenant.
            tenant: Option<u64>,
        },
        /// Retire a previously admitted plan by wire id.
        Retire {
            /// Wire id returned by a prior `admit`.
            id: u64,
        },
        /// Predict the root latency of a resident plan.
        Predict {
            /// Wire id returned by a prior `admit`.
            id: u64,
        },
        /// One-shot admit + predict; coalesces with concurrent requests
        /// into one micro-batched wavefront run.
        AdmitPredict {
            /// The plan tree to predict.
            plan: Box<PlanNode>,
            /// Keep the plan resident (reply carries its wire id).
            keep: bool,
            /// Target model fingerprint; `None` = default tenant.
            tenant: Option<u64>,
        },
        /// Fetch server-wide counters and resident-stream aggregates.
        Stats,
        /// Stop the daemon (drains handler threads, then unblocks `run`).
        Shutdown,
    }

    /// One server reply line.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Response {
        /// Plan admitted; `id` names it in later `predict`/`retire`.
        Admitted {
            /// Wire id of the now-resident plan.
            id: u64,
        },
        /// Plan retired.
        Retired {
            /// Wire id that was retired.
            id: u64,
        },
        /// Root-latency prediction, in the model's target units (ms).
        Predicted {
            /// Wire id if the plan was kept resident.
            id: Option<u64>,
            /// Predicted root latency (bit-exact `f64` round trip).
            latency_ms: f64,
        },
        /// Server counters snapshot.
        Stats(ServeStats),
        /// Acknowledges `shutdown`.
        Bye,
        /// Structured failure.
        Error(ErrorReply),
    }

    /// Server-wide counters reported by the `stats` verb.
    ///
    /// Counts are JSON numbers: exact below [`MAX_EXACT_INT`], which a
    /// daemon cannot plausibly exceed (2^53 requests at 1M req/s is
    /// ~285 years).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct ServeStats {
        /// Connections accepted since start.
        pub connections: u64,
        /// Request lines decoded (well-formed or not).
        pub requests: u64,
        /// Error replies sent.
        pub errors: u64,
        /// Plans admitted (including kept `admit_predict`).
        pub admitted: u64,
        /// Plans retired (explicit retires + one-shot auto-retires).
        pub retired: u64,
        /// Predictions served.
        pub predicted: u64,
        /// Micro-batch flushes run.
        pub batches: u64,
        /// Requests that went through a micro-batch flush.
        pub batched_requests: u64,
        /// Registered tenant models.
        pub tenants: u64,
        /// Plans currently resident across all tenants.
        pub resident_plans: u64,
        /// Logical operator nodes resident across all tenants.
        pub logical_nodes: u64,
        /// Physical feature rows after CSE, across all tenants.
        pub shared_rows: u64,
        /// One-shot `admit_predict` replies served by the zero-allocation
        /// fast path (scratch decode → one-shot run → hand-rolled reply).
        pub fast_path_predicted: u64,
        /// Cumulative wall time decoding fast-path request lines (ns).
        pub parse_ns: u64,
        /// Cumulative wall time featurizing fast-path plans (ns).
        pub featurize_ns: u64,
        /// Cumulative wall time in fast-path forward runs (ns).
        pub run_ns: u64,
        /// Cumulative wall time serializing fast-path replies (ns).
        pub serialize_ns: u64,
        /// Heap allocations observed across whole fast-path request
        /// lifecycles (read → decode → run → reply write) after each
        /// connection's warmup window. Stays 0 at steady state on a
        /// warmed plan mix; novel feature rows still cost their
        /// one-time cache inserts.
        pub steady_allocs: u64,
        /// Predict requests answered from the whole-plan prediction memo
        /// ([`qppnet::stream::PredictionCache`](crate::stream::PredictionCache)),
        /// across all tenants and serve surfaces.
        pub cache_hits: u64,
        /// Predict requests that missed the memo (and then seeded it).
        pub cache_misses: u64,
        /// Memo entries dropped by generational resets at the entry cap.
        pub cache_evictions: u64,
        /// Whole-plan predictions currently memoized across all tenants.
        pub cache_entries: u64,
        /// Cumulative wall time of memo hits (key assembly + probe), ns.
        pub cache_hit_ns: u64,
    }

    // --- field-level codecs -----------------------------------------------

    /// Encodes a plan id for the wire: decimal string (precision pin).
    pub fn encode_id(id: u64) -> Value {
        Value::String(id.to_string())
    }

    /// Decodes a wire plan id. Strings only — a JSON number is rejected
    /// because the vendored serde stub stores numbers as `f64` and ids
    /// at or above 2^53 would silently round.
    pub fn decode_id(v: &Value) -> Result<u64, ErrorReply> {
        match v {
            Value::String(s) => s.parse::<u64>().map_err(|_| {
                ErrorReply::new(ErrorCode::BadRequest, format!("id `{s}` is not a decimal u64"))
            }),
            Value::Number(_) => Err(ErrorReply::new(
                ErrorCode::BadRequest,
                "numeric ids are rejected: JSON numbers are f64 (exact < 2^53); \
                 send the id as a decimal string",
            )),
            other => Err(ErrorReply::new(
                ErrorCode::BadRequest,
                format!("id must be a decimal string, got {other:?}"),
            )),
        }
    }

    /// Encodes a model fingerprint for the wire: 16-digit hex string.
    pub fn encode_fingerprint(fp: u64) -> Value {
        Value::String(format!("{fp:016x}"))
    }

    /// Decodes a wire fingerprint (hex string, numeric forms rejected).
    pub fn decode_fingerprint(v: &Value) -> Result<u64, ErrorReply> {
        match v {
            Value::String(s) => u64::from_str_radix(s, 16).map_err(|_| {
                ErrorReply::new(
                    ErrorCode::BadRequest,
                    format!("tenant `{s}` is not a hex u64 fingerprint"),
                )
            }),
            _ => Err(ErrorReply::new(
                ErrorCode::BadRequest,
                "tenant must be a hex string fingerprint (numbers are f64 on this wire)",
            )),
        }
    }

    fn obj(pairs: Vec<(&str, Value)>) -> Value {
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert(k.to_string(), v);
        }
        Value::Object(m)
    }

    fn get<'v>(m: &'v Map, key: &str) -> Result<&'v Value, ErrorReply> {
        m.get(key)
            .ok_or_else(|| ErrorReply::new(ErrorCode::BadRequest, format!("missing `{key}`")))
    }

    fn check_version(m: &Map) -> Result<(), ErrorReply> {
        match get(m, "v")? {
            Value::Number(n) if *n == VERSION as f64 => Ok(()),
            other => Err(ErrorReply::new(
                ErrorCode::BadRequest,
                format!("unsupported protocol version {other:?} (speak v{VERSION})"),
            )),
        }
    }

    fn decode_plan(v: &Value) -> Result<Box<PlanNode>, ErrorReply> {
        serde_json::from_value::<PlanNode>(v.clone())
            .map(Box::new)
            .map_err(|e| ErrorReply::new(ErrorCode::InvalidPlan, format!("bad plan: {e}")))
    }

    // --- request codec ----------------------------------------------------

    /// Encodes a request as one JSON line (no trailing newline).
    pub fn encode_request(req: &Request) -> String {
        let v = Value::Number(VERSION as f64);
        let val = match req {
            Request::Admit { plan, tenant } => {
                let mut pairs = vec![
                    ("v", v),
                    ("op", Value::String("admit".into())),
                    ("plan", serde_json::to_value(plan.as_ref()).expect("plan serializes")),
                ];
                if let Some(fp) = tenant {
                    pairs.push(("tenant", encode_fingerprint(*fp)));
                }
                obj(pairs)
            }
            Request::Retire { id } => obj(vec![
                ("v", v),
                ("op", Value::String("retire".into())),
                ("id", encode_id(*id)),
            ]),
            Request::Predict { id } => obj(vec![
                ("v", v),
                ("op", Value::String("predict".into())),
                ("id", encode_id(*id)),
            ]),
            Request::AdmitPredict { plan, keep, tenant } => {
                let mut pairs = vec![
                    ("v", v),
                    ("op", Value::String("admit_predict".into())),
                    ("plan", serde_json::to_value(plan.as_ref()).expect("plan serializes")),
                    ("keep", Value::Bool(*keep)),
                ];
                if let Some(fp) = tenant {
                    pairs.push(("tenant", encode_fingerprint(*fp)));
                }
                obj(pairs)
            }
            Request::Stats => obj(vec![("v", v), ("op", Value::String("stats".into()))]),
            Request::Shutdown => obj(vec![("v", v), ("op", Value::String("shutdown".into()))]),
        };
        serde_json::to_string(&val).expect("request serializes")
    }

    /// Decodes one request line. The caller has already applied framing
    /// limits; this applies the nesting guard, parses, and validates the
    /// schema.
    pub fn decode_request(line: &str) -> Result<Request, ErrorReply> {
        let val = parse_guarded(line)?;
        let m = val
            .as_object()
            .ok_or_else(|| ErrorReply::new(ErrorCode::BadRequest, "request must be an object"))?;
        check_version(m)?;
        let op = get(m, "op")?
            .as_str()
            .ok_or_else(|| ErrorReply::new(ErrorCode::BadRequest, "`op` must be a string"))?;
        let tenant = match m.get("tenant") {
            Some(t) => Some(decode_fingerprint(t)?),
            None => None,
        };
        match op {
            "admit" => Ok(Request::Admit { plan: decode_plan(get(m, "plan")?)?, tenant }),
            "retire" => Ok(Request::Retire { id: decode_id(get(m, "id")?)? }),
            "predict" => Ok(Request::Predict { id: decode_id(get(m, "id")?)? }),
            "admit_predict" => {
                let keep = match m.get("keep") {
                    None => false,
                    Some(Value::Bool(b)) => *b,
                    Some(other) => {
                        return Err(ErrorReply::new(
                            ErrorCode::BadRequest,
                            format!("`keep` must be a bool, got {other:?}"),
                        ))
                    }
                };
                Ok(Request::AdmitPredict { plan: decode_plan(get(m, "plan")?)?, keep, tenant })
            }
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ErrorReply::new(
                ErrorCode::UnknownOp,
                format!("unknown op `{other}`"),
            )),
        }
    }

    // --- response codec ---------------------------------------------------

    fn stats_value(s: &ServeStats) -> Value {
        obj(vec![
            ("connections", Value::Number(s.connections as f64)),
            ("requests", Value::Number(s.requests as f64)),
            ("errors", Value::Number(s.errors as f64)),
            ("admitted", Value::Number(s.admitted as f64)),
            ("retired", Value::Number(s.retired as f64)),
            ("predicted", Value::Number(s.predicted as f64)),
            ("batches", Value::Number(s.batches as f64)),
            ("batched_requests", Value::Number(s.batched_requests as f64)),
            ("tenants", Value::Number(s.tenants as f64)),
            ("resident_plans", Value::Number(s.resident_plans as f64)),
            ("logical_nodes", Value::Number(s.logical_nodes as f64)),
            ("shared_rows", Value::Number(s.shared_rows as f64)),
            ("fast_path_predicted", Value::Number(s.fast_path_predicted as f64)),
            ("parse_ns", Value::Number(s.parse_ns as f64)),
            ("featurize_ns", Value::Number(s.featurize_ns as f64)),
            ("run_ns", Value::Number(s.run_ns as f64)),
            ("serialize_ns", Value::Number(s.serialize_ns as f64)),
            ("steady_allocs", Value::Number(s.steady_allocs as f64)),
            ("cache_hits", Value::Number(s.cache_hits as f64)),
            ("cache_misses", Value::Number(s.cache_misses as f64)),
            ("cache_evictions", Value::Number(s.cache_evictions as f64)),
            ("cache_entries", Value::Number(s.cache_entries as f64)),
            ("cache_hit_ns", Value::Number(s.cache_hit_ns as f64)),
        ])
    }

    fn stats_field(m: &Map, key: &str) -> Result<u64, ErrorReply> {
        let n = get(m, key)?.as_f64().ok_or_else(|| {
            ErrorReply::new(ErrorCode::BadRequest, format!("stats `{key}` must be a number"))
        })?;
        if !(0.0..MAX_EXACT_INT as f64).contains(&n) || n.fract() != 0.0 {
            return Err(ErrorReply::new(
                ErrorCode::BadRequest,
                format!("stats `{key}` out of exact-integer range: {n}"),
            ));
        }
        Ok(n as u64)
    }

    fn decode_stats(v: &Value) -> Result<ServeStats, ErrorReply> {
        let m = v
            .as_object()
            .ok_or_else(|| ErrorReply::new(ErrorCode::BadRequest, "stats must be an object"))?;
        Ok(ServeStats {
            connections: stats_field(m, "connections")?,
            requests: stats_field(m, "requests")?,
            errors: stats_field(m, "errors")?,
            admitted: stats_field(m, "admitted")?,
            retired: stats_field(m, "retired")?,
            predicted: stats_field(m, "predicted")?,
            batches: stats_field(m, "batches")?,
            batched_requests: stats_field(m, "batched_requests")?,
            tenants: stats_field(m, "tenants")?,
            resident_plans: stats_field(m, "resident_plans")?,
            logical_nodes: stats_field(m, "logical_nodes")?,
            shared_rows: stats_field(m, "shared_rows")?,
            fast_path_predicted: stats_field(m, "fast_path_predicted")?,
            parse_ns: stats_field(m, "parse_ns")?,
            featurize_ns: stats_field(m, "featurize_ns")?,
            run_ns: stats_field(m, "run_ns")?,
            serialize_ns: stats_field(m, "serialize_ns")?,
            steady_allocs: stats_field(m, "steady_allocs")?,
            cache_hits: stats_field(m, "cache_hits")?,
            cache_misses: stats_field(m, "cache_misses")?,
            cache_evictions: stats_field(m, "cache_evictions")?,
            cache_entries: stats_field(m, "cache_entries")?,
            cache_hit_ns: stats_field(m, "cache_hit_ns")?,
        })
    }

    /// Encodes a response as one JSON line (no trailing newline).
    pub fn encode_response(resp: &Response) -> String {
        let v = Value::Number(VERSION as f64);
        let val = match resp {
            Response::Admitted { id } => obj(vec![
                ("v", v),
                ("ok", Value::Bool(true)),
                ("op", Value::String("admit".into())),
                ("id", encode_id(*id)),
            ]),
            Response::Retired { id } => obj(vec![
                ("v", v),
                ("ok", Value::Bool(true)),
                ("op", Value::String("retire".into())),
                ("id", encode_id(*id)),
            ]),
            Response::Predicted { id, latency_ms } => {
                let mut pairs = vec![
                    ("v", v),
                    ("ok", Value::Bool(true)),
                    ("op", Value::String("predict".into())),
                    ("latency_ms", Value::Number(*latency_ms)),
                ];
                if let Some(id) = id {
                    pairs.push(("id", encode_id(*id)));
                }
                obj(pairs)
            }
            Response::Stats(s) => obj(vec![
                ("v", v),
                ("ok", Value::Bool(true)),
                ("op", Value::String("stats".into())),
                ("stats", stats_value(s)),
            ]),
            Response::Bye => obj(vec![
                ("v", v),
                ("ok", Value::Bool(true)),
                ("op", Value::String("shutdown".into())),
            ]),
            Response::Error(e) => obj(vec![
                ("v", v),
                ("ok", Value::Bool(false)),
                (
                    "error",
                    obj(vec![
                        ("code", Value::String(e.code.as_str().into())),
                        ("msg", Value::String(e.msg.clone())),
                    ]),
                ),
            ]),
        };
        serde_json::to_string(&val).expect("response serializes")
    }

    /// Decodes one response line.
    pub fn decode_response(line: &str) -> Result<Response, ErrorReply> {
        let val = parse_guarded(line)?;
        let m = val
            .as_object()
            .ok_or_else(|| ErrorReply::new(ErrorCode::BadRequest, "response must be an object"))?;
        check_version(m)?;
        let ok = match get(m, "ok")? {
            Value::Bool(b) => *b,
            other => {
                return Err(ErrorReply::new(
                    ErrorCode::BadRequest,
                    format!("`ok` must be a bool, got {other:?}"),
                ))
            }
        };
        if !ok {
            let em = get(m, "error")?.as_object().ok_or_else(|| {
                ErrorReply::new(ErrorCode::BadRequest, "`error` must be an object")
            })?;
            let code_str = get(em, "code")?
                .as_str()
                .ok_or_else(|| ErrorReply::new(ErrorCode::BadRequest, "`code` must be a string"))?;
            let code = ErrorCode::parse(code_str).ok_or_else(|| {
                ErrorReply::new(ErrorCode::BadRequest, format!("unknown error code `{code_str}`"))
            })?;
            let msg = get(em, "msg")?
                .as_str()
                .ok_or_else(|| ErrorReply::new(ErrorCode::BadRequest, "`msg` must be a string"))?
                .to_string();
            return Ok(Response::Error(ErrorReply { code, msg }));
        }
        let op = get(m, "op")?
            .as_str()
            .ok_or_else(|| ErrorReply::new(ErrorCode::BadRequest, "`op` must be a string"))?;
        match op {
            "admit" => Ok(Response::Admitted { id: decode_id(get(m, "id")?)? }),
            "retire" => Ok(Response::Retired { id: decode_id(get(m, "id")?)? }),
            "predict" => {
                let latency_ms = get(m, "latency_ms")?.as_f64().ok_or_else(|| {
                    ErrorReply::new(ErrorCode::BadRequest, "`latency_ms` must be a number")
                })?;
                let id = match m.get("id") {
                    Some(v) => Some(decode_id(v)?),
                    None => None,
                };
                Ok(Response::Predicted { id, latency_ms })
            }
            "stats" => Ok(Response::Stats(decode_stats(get(m, "stats")?)?)),
            "shutdown" => Ok(Response::Bye),
            other => Err(ErrorReply::new(
                ErrorCode::UnknownOp,
                format!("unknown response op `{other}`"),
            )),
        }
    }

    /// Parses a line after applying the nesting-depth guard, mapping both
    /// failures to [`ErrorCode::Parse`].
    pub fn parse_guarded(line: &str) -> Result<Value, ErrorReply> {
        let depth = super::nesting_depth(line);
        if depth > super::MAX_NESTING_DEPTH {
            return Err(ErrorReply::new(
                ErrorCode::Parse,
                format!("nesting depth {depth} exceeds cap {}", super::MAX_NESTING_DEPTH),
            ));
        }
        serde_json::parse(line)
            .map_err(|e| ErrorReply::new(ErrorCode::Parse, format!("invalid JSON: {e}")))
    }
}

pub mod scratch;

// --- framing ---------------------------------------------------------------

/// Default per-line byte cap (1 MiB — a paper-tier plan line is ~10 KiB).
pub const MAX_LINE_DEFAULT: usize = 1 << 20;

/// Maximum JSON bracket-nesting depth accepted before parsing. The
/// vendored parser is recursive; unbounded depth is a stack-overflow DoS.
pub const MAX_NESTING_DEPTH: usize = 512;

/// Maximum `[`/`{` nesting depth of `s`, ignoring brackets inside JSON
/// strings (escape-aware). Cheap single pass run before the recursive
/// parser ever sees the line.
pub fn nesting_depth(s: &str) -> usize {
    let (mut depth, mut max) = (0usize, 0usize);
    let (mut in_str, mut escaped) = (false, false);
    for b in s.bytes() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' | b'[' => {
                depth += 1;
                max = max.max(depth);
            }
            b'}' | b']' => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    max
}

/// One framing event from [`LineBuf::read_line`].
#[derive(Debug)]
pub enum LineEvent {
    /// A complete line (without the trailing newline / carriage return).
    Line(String),
    /// A line exceeded the cap; its bytes were discarded up to the next
    /// newline and the stream is resynchronized.
    TooLong,
    /// Clean end of stream (a partial trailing line is dropped).
    Eof,
}

/// One framing event from [`LineBuf::read_line_ref`]: like [`LineEvent`]
/// but the line borrows the reader's internal buffer, so a warmed
/// steady-state read performs zero heap allocations.
#[derive(Debug)]
pub enum LineRef<'a> {
    /// A complete line (without the trailing newline / carriage return).
    Line(&'a str),
    /// A line exceeded the cap; its bytes were discarded up to the next
    /// newline and the stream is resynchronized.
    TooLong,
    /// Clean end of stream (a partial trailing line is dropped).
    Eof,
}

/// Buffered, length-capped line reader over any [`Read`].
///
/// Unlike [`std::io::BufReader`], an oversized line does not grow the
/// buffer unboundedly: once a line passes the cap its bytes are thrown
/// away until the next newline, one [`LineEvent::TooLong`] is reported,
/// and subsequent lines parse normally — a misbehaving client costs one
/// error reply, not the connection (and certainly not the server's
/// memory). Read timeouts ([`io::ErrorKind::WouldBlock`] /
/// [`io::ErrorKind::TimedOut`]) bubble up so callers can poll a shutdown
/// flag between reads.
#[derive(Debug)]
pub struct LineBuf {
    buf: Vec<u8>,
    /// Bytes `buf[..filled]` hold unconsumed input.
    filled: usize,
    /// Bytes `buf[..consumed]` were handed out by the previous
    /// [`LineBuf::read_line_ref`] call and are shifted out lazily on the
    /// next call (the borrowed line must stay put while the caller
    /// holds it).
    consumed: usize,
    max_line: usize,
    discarding: bool,
    /// Reusable scratch for the rare invalid-UTF-8 line.
    lossy: String,
}

impl LineBuf {
    /// A reader enforcing `max_line` bytes per line.
    pub fn new(max_line: usize) -> LineBuf {
        LineBuf {
            buf: vec![0u8; 8192],
            filled: 0,
            consumed: 0,
            max_line,
            discarding: false,
            lossy: String::new(),
        }
    }

    /// Pops one framing event, reading from `r` as needed. Allocating
    /// wrapper over [`LineBuf::read_line_ref`], kept for callers that
    /// need an owned line.
    pub fn read_line(&mut self, r: &mut impl Read) -> io::Result<LineEvent> {
        Ok(match self.read_line_ref(r)? {
            LineRef::Line(s) => LineEvent::Line(s.to_owned()),
            LineRef::TooLong => LineEvent::TooLong,
            LineRef::Eof => LineEvent::Eof,
        })
    }

    /// Pops one framing event, reading from `r` as needed; the returned
    /// line borrows this reader's buffer (valid until the next call).
    /// Once the buffer has grown to the connection's working line size,
    /// steady-state calls on valid-UTF-8 input allocate nothing.
    pub fn read_line_ref(&mut self, r: &mut impl Read) -> io::Result<LineRef<'_>> {
        // Shift out the line handed to the caller by the previous call.
        if self.consumed > 0 {
            self.buf.copy_within(self.consumed..self.filled, 0);
            self.filled -= self.consumed;
            self.consumed = 0;
        }
        loop {
            if let Some(pos) = self.buf[..self.filled].iter().position(|&b| b == b'\n') {
                self.consumed = pos + 1;
                if self.discarding {
                    self.discarding = false;
                    return Ok(LineRef::TooLong);
                }
                if pos > self.max_line {
                    // The whole line fit in the read buffer but still
                    // exceeds the cap.
                    return Ok(LineRef::TooLong);
                }
                let mut line = &self.buf[..pos];
                if line.last() == Some(&b'\r') {
                    line = &line[..pos - 1];
                }
                return Ok(LineRef::Line(match std::str::from_utf8(line) {
                    Ok(s) => s,
                    Err(_) => {
                        // Same replacement-character semantics as
                        // `String::from_utf8_lossy`, into a reusable
                        // buffer.
                        self.lossy.clear();
                        for chunk in line.utf8_chunks() {
                            self.lossy.push_str(chunk.valid());
                            if !chunk.invalid().is_empty() {
                                self.lossy.push(char::REPLACEMENT_CHARACTER);
                            }
                        }
                        &self.lossy
                    }
                }));
            }
            if self.discarding {
                // Throw away everything buffered; keep scanning for '\n'.
                self.filled = 0;
            } else if self.filled > self.max_line {
                self.discarding = true;
                self.filled = 0;
            }
            if self.filled == self.buf.len() {
                let new_len = (self.buf.len() * 2).min(self.max_line + 2);
                if new_len <= self.buf.len() {
                    // Cap reached exactly; next pass flips to discarding.
                    self.discarding = true;
                    self.filled = 0;
                } else {
                    self.buf.resize(new_len, 0);
                }
            }
            let n = r.read(&mut self.buf[self.filled..])?;
            if n == 0 {
                return Ok(LineRef::Eof);
            }
            self.filled += n;
        }
    }
}

// --- transport -------------------------------------------------------------

/// A serve endpoint: TCP (`host:port`) or a unix-domain socket path
/// (`unix:/path/to.sock`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAddr {
    /// TCP endpoint, e.g. `127.0.0.1:7878` (port `0` binds ephemeral).
    Tcp(String),
    /// Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl ServeAddr {
    /// Parses `host:port` or `unix:<path>`.
    pub fn parse(s: &str) -> Result<ServeAddr, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                if path.is_empty() {
                    return Err("empty unix socket path".into());
                }
                return Ok(ServeAddr::Unix(PathBuf::from(path)));
            }
            #[cfg(not(unix))]
            return Err(format!("unix sockets unsupported on this platform: `{path}`"));
        }
        if s.contains(':') {
            Ok(ServeAddr::Tcp(s.to_string()))
        } else {
            Err(format!("invalid address `{s}`: want host:port or unix:<path>"))
        }
    }
}

impl std::fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAddr::Tcp(a) => write!(f, "{a}"),
            #[cfg(unix)]
            ServeAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// One accepted connection, TCP or unix.
#[derive(Debug)]
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn connect(addr: &ServeAddr) -> io::Result<Conn> {
        match addr {
            ServeAddr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                // One JSON line per request/reply: Nagle + delayed ACK
                // would add ~40ms per round trip.
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            ServeAddr::Unix(p) => UnixStream::connect(p).map(Conn::Unix),
        }
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn bind(addr: &ServeAddr) -> io::Result<(Listener, ServeAddr)> {
        match addr {
            ServeAddr::Tcp(a) => {
                let l = TcpListener::bind(a)?;
                let actual = ServeAddr::Tcp(l.local_addr()?.to_string());
                Ok((Listener::Tcp(l), actual))
            }
            #[cfg(unix)]
            ServeAddr::Unix(p) => {
                // A stale socket file from a crashed daemon would make
                // bind fail; remove it if nothing is listening there.
                if p.exists() && UnixStream::connect(p).is_err() {
                    let _ = std::fs::remove_file(p);
                }
                let l = UnixListener::bind(p)?;
                Ok((Listener::Unix(l), ServeAddr::Unix(p.clone())))
            }
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

// --- server ----------------------------------------------------------------

/// Tunables for [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shards per tenant stream (see
    /// [`QppNet::serve_sharded`](crate::QppNet::serve_sharded)).
    pub shards: usize,
    /// Worker threads per wavefront run (bits are thread-invariant).
    pub threads: usize,
    /// Coalescing width: an `admit_predict` flushes as soon as this many
    /// requests are pending. `1` disables coalescing (flush immediately).
    pub burst: usize,
    /// How long a pending `admit_predict` waits for companions before
    /// its handler flushes the partial batch itself (microseconds).
    pub burst_wait_us: u64,
    /// Per-line byte cap for the framing layer.
    pub max_line: usize,
    /// Handler read-timeout granularity: how often a blocked handler
    /// wakes to poll the shutdown flag (milliseconds).
    pub poll_ms: u64,
    /// Serve eligible one-shot `admit_predict` requests over the
    /// zero-allocation fast path (scratch decode → one-shot run →
    /// hand-rolled reply, bitwise-equal to the builder path). Only
    /// engages when `burst <= 1`; micro-batch coalescing takes
    /// precedence. The default honors the `QPP_SERVE_FAST_PATH` env var
    /// (`0` disables, anything else — including unset — enables).
    pub fast_path: bool,
    /// Serve exact repeats of previously-answered plans from the
    /// whole-plan prediction memo
    /// ([`PredictionCache`](crate::stream::PredictionCache)): a lossless
    /// full-key match, bitwise-equal to a fresh run, on every predict
    /// surface (fast path, one-shot, micro-batch). The default honors
    /// the `QPP_SERVE_CACHE` env var (`0` disables, anything else —
    /// including unset — enables).
    pub cache: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            shards: 1,
            threads: 1,
            burst: 1,
            burst_wait_us: 200,
            max_line: MAX_LINE_DEFAULT,
            poll_ms: 25,
            fast_path: std::env::var("QPP_SERVE_FAST_PATH").map_or(true, |v| v != "0"),
            cache: std::env::var("QPP_SERVE_CACHE").map_or(true, |v| v != "0"),
        }
    }
}

/// Validates a plan tree's operator arities, the same check
/// [`ProgramBuilder::admit`](crate::stream::ProgramBuilder::admit)
/// enforces by panic. Run on every wire plan before it touches stream
/// state, so a malformed plan costs one `invalid_plan` reply.
pub fn validate_plan(plan: &PlanNode) -> Result<(), String> {
    let mut bad = None;
    plan.visit_postorder(&mut |n| {
        if n.children.len() != n.op.kind().arity() && bad.is_none() {
            bad = Some(format!(
                "{:?} node with {} children (expected {})",
                n.op.kind(),
                n.children.len(),
                n.op.kind().arity()
            ));
        }
    });
    match bad {
        Some(why) => Err(why),
        None => Ok(()),
    }
}

/// Serializes `resp` through the oracle encoder into `out` and sends it
/// as one `write` call — replies are single lines, one syscall each.
fn write_reply(conn: &mut Conn, resp: &Response, out: &mut Vec<u8>) -> io::Result<()> {
    out.clear();
    out.extend_from_slice(proto::encode_response(resp).as_bytes());
    out.push(b'\n');
    conn.write_all(out)
}

/// Writes an `f64` exactly as the vendored JSON writer does: integral
/// values with magnitude below 2^53 print as integers, everything else
/// via shortest-round-trip `Display`. Streams into `out` without
/// allocating. The caller has already rejected non-finite values.
fn write_wire_f64(n: f64, out: &mut Vec<u8>) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

type SlotResult = Result<(Option<u64>, f64), ErrorReply>;

/// Rendezvous cell between an `admit_predict` handler (follower) and
/// whichever handler runs the coalesced flush (leader).
#[derive(Debug, Default)]
struct Slot {
    done: Mutex<Option<SlotResult>>,
    cv: Condvar,
}

#[derive(Debug)]
struct PendingReq {
    plan: Box<PlanNode>,
    keep: bool,
    fp: u64,
    slot: Arc<Slot>,
}

struct State<'m> {
    tenants: Tenants<'m>,
    default_fp: Option<u64>,
    /// Wire id → (tenant fingerprint, resident plan id).
    sessions: HashMap<u64, (u64, PlanId)>,
    next_id: u64,
    pending: Vec<PendingReq>,
    stats: proto::ServeStats,
}

/// Fast-path requests a connection serves before its allocation deltas
/// start feeding [`ServeStats::steady_allocs`] — the first few requests
/// legitimately grow per-connection scratch to the working-set size.
const FAST_WARMUP: u64 = 64;

/// Fast-path counters, kept as atomics outside the state lock so the
/// post-unlock phases (reply serialization, allocation accounting) never
/// retake it. Folded into [`ServeStats`] by the `stats` verb.
#[derive(Debug, Default)]
struct FastStats {
    predicted: AtomicU64,
    parse_ns: AtomicU64,
    featurize_ns: AtomicU64,
    run_ns: AtomicU64,
    serialize_ns: AtomicU64,
    steady_allocs: AtomicU64,
}

/// The serving daemon: owns registered models' resident streams and
/// serves the [`proto`] protocol to any number of blocking clients.
///
/// ```no_run
/// # use qppnet::{QppConfig, QppNet};
/// # use qppnet::serve::{Server, ServeAddr, ServeConfig};
/// # use qpp_plansim::prelude::*;
/// # let ds = Dataset::generate(Workload::TpcH, 1.0, 60, 7);
/// # let mut model = QppNet::new(QppConfig::tiny(), &ds.catalog);
/// # model.fit(&ds.select(&(0..50).collect::<Vec<_>>()));
/// let mut server = Server::bind(
///     &ServeAddr::parse("127.0.0.1:0").unwrap(),
///     ServeConfig::default(),
/// ).unwrap();
/// server.register(&model);
/// println!("listening on {}", server.local_addr());
/// server.run().unwrap(); // blocks until a client sends `shutdown`
/// ```
pub struct Server<'m> {
    listener: Listener,
    addr: ServeAddr,
    cfg: ServeConfig,
    state: Mutex<State<'m>>,
    fast: FastStats,
    shutdown: AtomicBool,
}

impl<'m> Server<'m> {
    /// Binds the listening socket. Register at least one model before
    /// calling [`Server::run`].
    pub fn bind(addr: &ServeAddr, cfg: ServeConfig) -> io::Result<Server<'m>> {
        let (listener, addr) = Listener::bind(addr)?;
        Ok(Server {
            listener,
            addr,
            cfg,
            state: Mutex::new(State {
                tenants: Tenants::new(),
                default_fp: None,
                sessions: HashMap::new(),
                next_id: 1,
                pending: Vec::new(),
                stats: proto::ServeStats::default(),
            }),
            fast: FastStats::default(),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The bound address (with the actual port when `0` was requested).
    pub fn local_addr(&self) -> &ServeAddr {
        &self.addr
    }

    /// Registers a fitted model as a tenant, returning its fingerprint.
    /// The first registered model becomes the default tenant for
    /// requests that name none.
    ///
    /// # Panics
    /// Panics if the model is not fitted.
    pub fn register(&mut self, model: &'m QppNet) -> u64 {
        let st = self.state.get_mut().unwrap_or_else(|e| e.into_inner());
        let fp = st.tenants.register(model, self.cfg.shards);
        if let Some(stream) = st.tenants.stream(fp) {
            stream.set_prediction_cache(self.cfg.cache);
        }
        st.default_fp.get_or_insert(fp);
        fp
    }

    /// Asks a running server to stop: handlers drain, `run` returns.
    /// Safe to call from any thread (e.g. a ctrl-c hook).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = Conn::connect(&self.addr);
    }

    /// Serves until a client sends `shutdown` (or
    /// [`Server::request_shutdown`] is called). One blocking handler
    /// thread per connection; all of them join before this returns.
    pub fn run(&self) -> io::Result<()> {
        std::thread::scope(|scope| {
            loop {
                let conn = match self.listener.accept() {
                    Ok(c) => c,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                };
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                self.lock().stats.connections += 1;
                scope.spawn(move || self.handle(conn));
            }
            Ok(())
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<'m>> {
        // A handler that panicked mid-request poisons the state lock;
        // the shared invariants it protects are per-request (the panic
        // backstops below roll their request back), so serving continues.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn handle(&self, mut conn: Conn) {
        let _ = conn.set_read_timeout(Some(Duration::from_millis(self.cfg.poll_ms)));
        let mut lb = LineBuf::new(self.cfg.max_line);
        // Coalescing parks handlers on a condvar mid-request; the fast
        // path only engages when bursts are disabled.
        let fast = self.cfg.fast_path && self.cfg.burst <= 1;
        let mut scratch = scratch::RequestScratch::new();
        let mut out: Vec<u8> = Vec::with_capacity(256);
        let mut fast_served = 0u64;
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let allocs0 = crate::alloc::thread_alloc_count();
            let event = match lb.read_line_ref(&mut conn) {
                Ok(ev) => ev,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                // Mid-request disconnect or hard I/O error: clean drop.
                Err(_) => return,
            };
            let reply = match event {
                LineRef::Eof => return,
                LineRef::TooLong => {
                    self.count_request(true);
                    Response::Error(ErrorReply::new(
                        ErrorCode::LineTooLong,
                        format!("line exceeded {} bytes and was discarded", self.cfg.max_line),
                    ))
                }
                LineRef::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    if fast && self.try_fast_path(line, &mut scratch, &mut out) {
                        if conn.write_all(&out).is_err() {
                            return;
                        }
                        fast_served += 1;
                        if fast_served > FAST_WARMUP {
                            let delta = crate::alloc::thread_alloc_count() - allocs0;
                            self.fast.steady_allocs.fetch_add(delta, Ordering::Relaxed);
                        }
                        continue;
                    }
                    match proto::decode_request(line) {
                        Err(rep) => {
                            self.count_request(true);
                            Response::Error(rep)
                        }
                        Ok(req) => {
                            let is_shutdown = matches!(req, Request::Shutdown);
                            let resp = self.dispatch(req);
                            self.count_request(matches!(resp, Response::Error(_)));
                            if write_reply(&mut conn, &resp, &mut out).is_err() {
                                return;
                            }
                            if is_shutdown {
                                self.request_shutdown();
                            }
                            continue;
                        }
                    }
                }
            };
            if write_reply(&mut conn, &reply, &mut out).is_err() {
                return;
            }
        }
    }

    /// Attempts the zero-allocation fast path on one request line. On
    /// success the complete reply line (newline included) is in `out`.
    /// Any ineligibility — decode fallback, unknown tenant, no
    /// registered models, non-finite prediction, panicked run — returns
    /// `false` *without* replying, and the caller re-runs the line
    /// through the oracle decoder so every error reply stays
    /// byte-identical to the slow path.
    fn try_fast_path(
        &self,
        line: &str,
        scratch: &mut scratch::RequestScratch,
        out: &mut Vec<u8>,
    ) -> bool {
        let t0 = Instant::now();
        let tenant = match scratch.decode(line) {
            scratch::FastDecode::Ready { tenant } => tenant,
            scratch::FastDecode::Fallback => return false,
        };
        let parse_ns = t0.elapsed().as_nanos() as u64;
        let run = {
            let mut st = self.lock();
            let st = &mut *st;
            let Some(fp) = tenant.or(st.default_fp) else {
                return false;
            };
            let Some(stream) = st.tenants.stream(fp) else {
                return false;
            };
            let plan = scratch.plan();
            let Ok(run) = catch_unwind(AssertUnwindSafe(|| stream.predict_oneshot(plan))) else {
                return false;
            };
            if !run.latency_ms.is_finite() {
                // The oracle writer refuses non-finite numbers; let the
                // slow path reproduce its exact behavior.
                return false;
            }
            st.stats.requests += 1;
            st.stats.admitted += 1;
            st.stats.predicted += 1;
            st.stats.retired += 1;
            run
        };
        // Hand-rolled reply, field order matching the oracle encoder's
        // BTreeMap (alphabetical) serialization of
        // `Response::Predicted { id: None, .. }`.
        let t1 = Instant::now();
        out.clear();
        out.extend_from_slice(b"{\"latency_ms\":");
        write_wire_f64(run.latency_ms, out);
        out.extend_from_slice(b",\"ok\":true,\"op\":\"predict\",\"v\":");
        write_wire_f64(proto::VERSION as f64, out);
        out.extend_from_slice(b"}\n");
        let serialize_ns = t1.elapsed().as_nanos() as u64;
        self.fast.predicted.fetch_add(1, Ordering::Relaxed);
        self.fast.parse_ns.fetch_add(parse_ns, Ordering::Relaxed);
        self.fast.featurize_ns.fetch_add(run.featurize_ns, Ordering::Relaxed);
        self.fast.run_ns.fetch_add(run.run_ns, Ordering::Relaxed);
        self.fast.serialize_ns.fetch_add(serialize_ns, Ordering::Relaxed);
        true
    }

    fn count_request(&self, is_error: bool) {
        let mut st = self.lock();
        st.stats.requests += 1;
        if is_error {
            st.stats.errors += 1;
        }
    }

    fn dispatch(&self, req: Request) -> Response {
        match req {
            Request::Admit { plan, tenant } => self.do_admit(plan, tenant),
            Request::Retire { id } => self.do_retire(id),
            Request::Predict { id } => self.do_predict(id),
            Request::AdmitPredict { plan, keep, tenant } => {
                self.do_admit_predict(plan, keep, tenant)
            }
            Request::Stats => self.do_stats(),
            Request::Shutdown => Response::Bye,
        }
    }

    fn resolve_fp(st: &State<'m>, tenant: Option<u64>) -> Result<u64, ErrorReply> {
        match tenant.or(st.default_fp) {
            Some(fp) if st.tenants.fingerprints().contains(&fp) => Ok(fp),
            Some(fp) => Err(ErrorReply::new(
                ErrorCode::UnknownTenant,
                format!("no tenant with fingerprint {fp:016x}"),
            )),
            None => Err(ErrorReply::new(ErrorCode::UnknownTenant, "no models registered")),
        }
    }

    fn do_admit(&self, plan: Box<PlanNode>, tenant: Option<u64>) -> Response {
        if let Err(why) = validate_plan(&plan) {
            return Response::Error(ErrorReply::new(ErrorCode::InvalidPlan, why));
        }
        let mut st = self.lock();
        let fp = match Self::resolve_fp(&st, tenant) {
            Ok(fp) => fp,
            Err(e) => return Response::Error(e),
        };
        let st = &mut *st;
        let stream = st.tenants.stream(fp).expect("resolved fingerprint is registered");
        let admitted = catch_unwind(AssertUnwindSafe(|| stream.admit(&plan)));
        match admitted {
            Ok(pid) => {
                let wire = st.next_id;
                st.next_id += 1;
                st.sessions.insert(wire, (fp, pid));
                st.stats.admitted += 1;
                Response::Admitted { id: wire }
            }
            Err(_) => Response::Error(ErrorReply::new(
                ErrorCode::Internal,
                "admission panicked; plan rejected, stream state unchanged",
            )),
        }
    }

    fn do_retire(&self, id: u64) -> Response {
        let mut st = self.lock();
        let Some((fp, pid)) = st.sessions.remove(&id) else {
            return Response::Error(ErrorReply::new(
                ErrorCode::UnknownId,
                format!("no resident plan with id {id}"),
            ));
        };
        let st = &mut *st;
        let stream = st.tenants.stream(fp).expect("session tenant is registered");
        match catch_unwind(AssertUnwindSafe(|| stream.retire(pid))) {
            Ok(()) => {
                st.stats.retired += 1;
                Response::Retired { id }
            }
            Err(_) => Response::Error(ErrorReply::new(
                ErrorCode::Internal,
                "retire panicked; session dropped",
            )),
        }
    }

    fn do_predict(&self, id: u64) -> Response {
        let mut st = self.lock();
        let Some(&(fp, pid)) = st.sessions.get(&id) else {
            return Response::Error(ErrorReply::new(
                ErrorCode::UnknownId,
                format!("no resident plan with id {id}"),
            ));
        };
        let threads = self.cfg.threads;
        let st = &mut *st;
        let stream = st.tenants.stream(fp).expect("session tenant is registered");
        match catch_unwind(AssertUnwindSafe(|| stream.predict_root_threaded(pid, threads))) {
            Ok(latency_ms) => {
                st.stats.predicted += 1;
                Response::Predicted { id: Some(id), latency_ms }
            }
            Err(_) => Response::Error(ErrorReply::new(
                ErrorCode::Internal,
                "prediction run panicked; plan remains resident",
            )),
        }
    }

    fn do_admit_predict(&self, plan: Box<PlanNode>, keep: bool, tenant: Option<u64>) -> Response {
        if let Err(why) = validate_plan(&plan) {
            return Response::Error(ErrorReply::new(ErrorCode::InvalidPlan, why));
        }
        let slot = Arc::new(Slot::default());
        let flush_now = {
            let mut st = self.lock();
            let fp = match Self::resolve_fp(&st, tenant) {
                Ok(fp) => fp,
                Err(e) => return Response::Error(e),
            };
            st.pending.push(PendingReq { plan, keep, fp, slot: Arc::clone(&slot) });
            st.pending.len() >= self.cfg.burst.max(1)
        };
        if flush_now {
            self.flush_pending();
        } else {
            // Follower: give companions burst_wait_us to coalesce, then
            // lead the flush ourselves if nobody else has.
            let wait = Duration::from_micros(self.cfg.burst_wait_us);
            let guard = slot.done.lock().unwrap_or_else(|e| e.into_inner());
            let (guard, _) = slot
                .cv
                .wait_timeout_while(guard, wait, |done| done.is_none())
                .unwrap_or_else(|e| e.into_inner());
            let resolved = guard.is_some();
            drop(guard);
            if !resolved {
                self.flush_pending();
            }
        }
        // flush_pending resolves every drained slot before returning (and
        // runs under the state lock, so a concurrent leader's flush has
        // finished once ours returns); the slot must be filled now.
        let guard = slot.done.lock().unwrap_or_else(|e| e.into_inner());
        match guard.clone() {
            Some(Ok((id, latency_ms))) => Response::Predicted { id, latency_ms },
            Some(Err(rep)) => Response::Error(rep),
            None => Response::Error(ErrorReply::new(
                ErrorCode::Internal,
                "coalesced request was never flushed",
            )),
        }
    }

    /// Drains the pending `admit_predict` queue and serves it as one
    /// micro-batched run per tenant, resolving every slot.
    fn flush_pending(&self) {
        let mut st = self.lock();
        let drained = std::mem::take(&mut st.pending);
        if drained.is_empty() {
            return;
        }
        st.stats.batches += 1;
        st.stats.batched_requests += drained.len() as u64;
        // Group requests by tenant, preserving arrival order per tenant.
        let mut by_fp: Vec<(u64, Vec<&PendingReq>)> = Vec::new();
        for req in &drained {
            match by_fp.iter_mut().find(|(fp, _)| *fp == req.fp) {
                Some((_, group)) => group.push(req),
                None => by_fp.push((req.fp, vec![req])),
            }
        }
        let threads = self.cfg.threads;
        let st = &mut *st;
        for (fp, group) in by_fp {
            let stream = st.tenants.stream(fp).expect("pending tenant is registered");
            let run = catch_unwind(AssertUnwindSafe(|| {
                let mut batcher = MicroBatcher::new();
                for req in &group {
                    batcher.submit(&req.plan);
                }
                batcher.flush_resident(stream, threads)
            }));
            match run {
                Ok((pids, preds)) => {
                    for ((req, pid), pred) in group.iter().zip(pids).zip(preds) {
                        st.stats.admitted += 1;
                        st.stats.predicted += 1;
                        let wire = if req.keep {
                            let wire = st.next_id;
                            st.next_id += 1;
                            st.sessions.insert(wire, (fp, pid));
                            Some(wire)
                        } else {
                            // One-shot: retire immediately, same as
                            // MicroBatcher::flush would.
                            st.tenants
                                .stream(fp)
                                .expect("tenant still registered")
                                .retire(pid);
                            st.stats.retired += 1;
                            None
                        };
                        resolve(&req.slot, Ok((wire, pred)));
                    }
                }
                Err(_) => {
                    for req in &group {
                        resolve(
                            &req.slot,
                            Err(ErrorReply::new(
                                ErrorCode::Internal,
                                "micro-batch run panicked; batch rejected",
                            )),
                        );
                    }
                }
            }
        }
    }

    fn do_stats(&self) -> Response {
        let st = self.lock();
        let mut stats = st.stats;
        stats.tenants = st.tenants.len() as u64;
        for (_, stream) in st.tenants.iter() {
            let ps = stream.stats();
            stats.resident_plans += ps.resident_plans as u64;
            stats.logical_nodes += ps.logical_nodes as u64;
            stats.shared_rows += ps.shared_rows as u64;
            stats.cache_hits += ps.pred_cache_hits;
            stats.cache_misses += ps.pred_cache_misses;
            stats.cache_evictions += ps.pred_cache_evictions;
            stats.cache_entries += ps.pred_cache_entries as u64;
            stats.cache_hit_ns += ps.pred_cache_hit_ns;
        }
        stats.fast_path_predicted = self.fast.predicted.load(Ordering::Relaxed);
        stats.parse_ns = self.fast.parse_ns.load(Ordering::Relaxed);
        stats.featurize_ns = self.fast.featurize_ns.load(Ordering::Relaxed);
        stats.run_ns = self.fast.run_ns.load(Ordering::Relaxed);
        stats.serialize_ns = self.fast.serialize_ns.load(Ordering::Relaxed);
        stats.steady_allocs = self.fast.steady_allocs.load(Ordering::Relaxed);
        Response::Stats(stats)
    }
}

impl Drop for Server<'_> {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let ServeAddr::Unix(p) = &self.addr {
            let _ = std::fs::remove_file(p);
        }
    }
}

fn resolve(slot: &Slot, result: SlotResult) {
    let mut done = slot.done.lock().unwrap_or_else(|e| e.into_inner());
    *done = Some(result);
    slot.cv.notify_all();
}

// --- client ----------------------------------------------------------------

/// Failures surfaced by [`Client`] calls.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level I/O failure (includes read timeouts).
    Io(io::Error),
    /// The server's reply did not parse or did not match the request.
    Protocol(String),
    /// The server replied with a structured error.
    Server(ErrorReply),
    /// The server closed the connection.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(e) => write!(f, "server error [{}]: {}", e.code.as_str(), e.msg),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A blocking protocol client: one request in flight per connection.
pub struct Client {
    conn: Conn,
    lb: LineBuf,
}

impl Client {
    /// Connects to a running [`Server`].
    pub fn connect(addr: &ServeAddr) -> io::Result<Client> {
        Ok(Client { conn: Conn::connect(addr)?, lb: LineBuf::new(MAX_LINE_DEFAULT) })
    }

    /// Sets the read timeout for replies (`None` blocks forever).
    pub fn set_timeout(&mut self, d: Option<Duration>) -> io::Result<()> {
        self.conn.set_read_timeout(d)
    }

    /// Writes one raw line (plus newline). For fault-injection tests.
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.conn, "{line}")?;
        self.conn.flush()
    }

    /// Reads the next reply line.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        loop {
            match self.lb.read_line(&mut self.conn)? {
                LineEvent::Eof => return Err(ClientError::Disconnected),
                LineEvent::TooLong => {
                    return Err(ClientError::Protocol("oversized reply line".into()))
                }
                LineEvent::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    return proto::decode_response(&line)
                        .map_err(|e| ClientError::Protocol(format!("{}: {}", e.code.as_str(), e.msg)));
                }
            }
        }
    }

    /// Sends a request and reads its reply (structured errors come back
    /// as [`ClientError::Server`]).
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send_raw(&proto::encode_request(req))?;
        match self.recv()? {
            Response::Error(e) => Err(ClientError::Server(e)),
            resp => Ok(resp),
        }
    }

    /// Admits a plan into the default tenant; returns its wire id.
    pub fn admit(&mut self, plan: &PlanNode) -> Result<u64, ClientError> {
        self.admit_to(plan, None)
    }

    /// Admits a plan into a specific tenant; returns its wire id.
    pub fn admit_to(&mut self, plan: &PlanNode, tenant: Option<u64>) -> Result<u64, ClientError> {
        match self.call(&Request::Admit { plan: Box::new(plan.clone()), tenant })? {
            Response::Admitted { id } => Ok(id),
            other => Err(ClientError::Protocol(format!("expected admit reply, got {other:?}"))),
        }
    }

    /// Retires a resident plan.
    pub fn retire(&mut self, id: u64) -> Result<(), ClientError> {
        match self.call(&Request::Retire { id })? {
            Response::Retired { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!("expected retire reply, got {other:?}"))),
        }
    }

    /// Predicts the root latency of a resident plan.
    pub fn predict(&mut self, id: u64) -> Result<f64, ClientError> {
        match self.call(&Request::Predict { id })? {
            Response::Predicted { latency_ms, .. } => Ok(latency_ms),
            other => Err(ClientError::Protocol(format!("expected predict reply, got {other:?}"))),
        }
    }

    /// One-shot admit + predict against the default tenant.
    pub fn admit_predict(
        &mut self,
        plan: &PlanNode,
        keep: bool,
    ) -> Result<(Option<u64>, f64), ClientError> {
        self.admit_predict_to(plan, keep, None)
    }

    /// One-shot admit + predict against a specific tenant.
    pub fn admit_predict_to(
        &mut self,
        plan: &PlanNode,
        keep: bool,
        tenant: Option<u64>,
    ) -> Result<(Option<u64>, f64), ClientError> {
        let req = Request::AdmitPredict { plan: Box::new(plan.clone()), keep, tenant };
        match self.call(&req)? {
            Response::Predicted { id, latency_ms } => Ok((id, latency_ms)),
            other => Err(ClientError::Protocol(format!("expected predict reply, got {other:?}"))),
        }
    }

    /// Fetches server counters.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!("expected stats reply, got {other:?}"))),
        }
    }

    /// Asks the server to stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Protocol(format!("expected bye reply, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn lines(input: &str, cap: usize) -> Vec<String> {
        let mut r = Cursor::new(input.as_bytes().to_vec());
        let mut lb = LineBuf::new(cap);
        let mut out = Vec::new();
        loop {
            match lb.read_line(&mut r).unwrap() {
                LineEvent::Line(l) => out.push(l),
                LineEvent::TooLong => out.push("<TOOLONG>".into()),
                LineEvent::Eof => return out,
            }
        }
    }

    #[test]
    fn linebuf_splits_and_trims() {
        assert_eq!(lines("a\nbb\r\nccc\n", 64), vec!["a", "bb", "ccc"]);
    }

    #[test]
    fn linebuf_drops_partial_trailing_line() {
        assert_eq!(lines("complete\npartial", 64), vec!["complete"]);
    }

    #[test]
    fn linebuf_oversized_line_resyncs() {
        let big = "x".repeat(200);
        let input = format!("ok1\n{big}\nok2\n");
        assert_eq!(lines(&input, 64), vec!["ok1", "<TOOLONG>", "ok2"]);
    }

    #[test]
    fn linebuf_oversized_spanning_many_reads() {
        // 10x the cap, then a healthy line: exactly one TooLong event.
        let big = "y".repeat(640);
        let input = format!("{big}\nafter\n");
        assert_eq!(lines(&input, 64), vec!["<TOOLONG>", "after"]);
    }

    #[test]
    fn linebuf_line_at_exact_cap_passes() {
        let edge = "z".repeat(64);
        assert_eq!(lines(&format!("{edge}\n"), 64), vec![edge]);
    }

    #[test]
    fn nesting_depth_counts_brackets_not_strings() {
        assert_eq!(nesting_depth(r#"{"a":[1,{"b":2}]}"#), 3);
        // Brackets inside strings (and escaped quotes) are ignored.
        assert_eq!(nesting_depth(r#"{"a":"[[[[","b":"\"{"}"#), 1);
        assert_eq!(nesting_depth("plain"), 0);
    }

    #[test]
    fn deep_nesting_is_rejected_before_parse() {
        let bomb = "[".repeat(MAX_NESTING_DEPTH + 1);
        let err = proto::parse_guarded(&bomb).unwrap_err();
        assert_eq!(err.code, ErrorCode::Parse);
        // At the cap itself the guard passes (the parser then reports the
        // unterminated array as a plain parse error).
        let at_cap = format!("{}{}", "[".repeat(MAX_NESTING_DEPTH), "]".repeat(MAX_NESTING_DEPTH));
        assert!(proto::parse_guarded(&at_cap).is_ok());
    }

    #[test]
    fn numeric_ids_are_rejected_with_precision_pin() {
        let err = proto::decode_id(&serde::Value::Number(17.0)).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.msg.contains("2^53"), "precision bound must be cited: {}", err.msg);
        // String-coded ids round-trip the full u64 range.
        let big = u64::MAX;
        assert_eq!(proto::decode_id(&proto::encode_id(big)).unwrap(), big);
    }

    #[test]
    fn serve_addr_parses_both_transports() {
        assert_eq!(ServeAddr::parse("127.0.0.1:0").unwrap(), ServeAddr::Tcp("127.0.0.1:0".into()));
        #[cfg(unix)]
        assert_eq!(
            ServeAddr::parse("unix:/tmp/q.sock").unwrap(),
            ServeAddr::Unix(PathBuf::from("/tmp/q.sock"))
        );
        assert!(ServeAddr::parse("nonsense").is_err());
    }
}
