//! Differentiable wavefront programs: the training engine that runs on
//! the serving engine's data layout (DESIGN.md §9).
//!
//! The legacy training path ([`crate::tree::TreeBatch`]) batches only
//! *structurally identical* plans, so a realistic mixed workload fragments
//! into dozens of equivalence classes and every operator position costs
//! one tiny gemm plus a per-position activation cache allocation — in both
//! directions. A [`ProgramTape`] instead compiles a training batch exactly
//! like the serving compiler does (`WavefrontBuilder`, the shared
//! grouping/chunking code in `crate::infer`): all nodes of all plans
//! keyed by `(height-from-leaf, OpKind)`, one gemm per operator family
//! per wavefront across the whole heterogeneous batch. The tape then
//! makes that program differentiable:
//!
//! * **forward** records every layer activation per wavefront step into
//!   preallocated tape buffers (activations suffice — every
//!   [`qpp_nn::Activation`] derivative is computable from its output, so
//!   no pre-activations are stored);
//! * **loss** seeds a per-node gradient buffer with `2·(prediction −
//!   target)` in the latency column — Equation 7's every-operator
//!   supervision, over the *entire* batch at once;
//! * **backward** replays the levels in reverse: each step gathers its
//!   members' output gradients, walks its unit's layers backwards
//!   (fused activation backward → bias/weight-gradient gemms → input
//!   gradient gemm), and scatter-adds the child column blocks of the
//!   input gradient onto the children's gradient rows — the exact adjoint
//!   of the forward's child-row gather.
//!
//! The arithmetic per node is identical to the per-class path — same
//! whitened features, same weights, same supervision — only the grouping
//! of rows into gemm calls changes, and neither a gemm row nor its
//! reverse-mode adjoints depend on other rows of the same call. The
//! differential suite (`tests/train_differential.rs`) holds accumulated
//! weight gradients to within `1e-5` relative of the `TreeBatch` oracle
//! and the resulting *trained models* to within `1e-5` on held-out
//! predictions.
//!
//! # Multicore execution
//!
//! Both sweeps run on the shared level-barrier executor
//! (`run_levels_parallel_with` in `crate::infer`) that powers multicore
//! serving — and therefore on the same resident worker pool
//! ([`qpp_nn::Executor::global`]): training and serving are tenants of
//! one set of parked workers and their persistent buffer pools. The forward is parallel for the same reason serving is: steps
//! of one level write disjoint output rows and read only lower levels.
//! The backward is the mirror image: levels run top-down, each gradient
//! row is written by exactly one step (a node has at most one parent;
//! the loss seed is written before the sweep), and reads are
//! barrier-sequenced. Weight gradients are the one shared accumulator —
//! each worker owns a private `GradSet` (weights stay shared and
//! read-only), reduced into the unit set after the sweep, so the hot path
//! stays lock-free. Forward results are bit-identical at any thread
//! count; gradient sums differ only by f32 summation order, exactly like
//! the legacy data-parallel trainer.

use crate::config::TargetCodec;
use crate::infer::{
    gather_child_columns, max_level_width, run_levels_parallel_with, SharedRows, Step,
    WavefrontBuilder,
};
use crate::lower::{lower, Lowering};
use crate::unit::{PackedUnits, UnitSet};
use qpp_nn::{activation_backward_inplace, BufferPool, Executor, Matrix, PackedWeights};
use qpp_plansim::features::{Featurizer, Whitener};
use qpp_plansim::operators::OpKind;
use qpp_plansim::plan::PlanNode;

/// Maximum rows per compiled training step. Larger than the serving
/// engine's latency-tuned [`crate::infer::STEP_CHUNK_ROWS`]: a training
/// step runs *three* gemms per layer (forward, weight gradient, input
/// gradient) plus a gather, a scatter and two gradient-row passes, so
/// per-step overhead is ~3x serving's and worth amortizing over more
/// rows — while a 128-row chunk's working set (input, activations, one
/// unit's weights) still fits L2 for both model tiers. Measured on
/// `train_throughput`: 128-row training chunks beat 32-row ones on both
/// tiers; chunk size changes which rows share a gemm call, never any
/// row's arithmetic.
pub(crate) const TRAIN_CHUNK_ROWS: usize = 128;

/// Per-kind, per-layer weight/bias gradient accumulators, decoupled from
/// the weights they correspond to.
///
/// The tape backward reads weights from the tape's shared packed panels
/// and accumulates into one of these — which is what lets worker threads
/// run backward concurrently without cloning weights or locking: each
/// worker owns a `GradSet`, and the per-parameter sums are reduced into
/// the unit set's accumulators afterwards ([`GradSet::add_into`]).
///
/// Weight-gradient accumulators are [`PackedWeights`] panels in the same
/// layout as the weights they correspond to, so the backward's
/// `dW += Xᵀ·dZ` gemm writes cache-line-aligned panel groups at full
/// SIMD width with no remainder-column tail; the panels are folded into
/// the unit set's row-major `gw` once per sweep, not once per step.
pub(crate) struct GradSet {
    /// `grads[kind][layer] = (packed weight grad, bias grad)`, shaped
    /// like the unit set this was built from.
    grads: Vec<Vec<(PackedWeights, Vec<f32>)>>,
}

impl GradSet {
    /// Zeroed accumulators shaped like `units`.
    pub(crate) fn new_like(units: &UnitSet) -> GradSet {
        GradSet {
            grads: OpKind::ALL
                .iter()
                .map(|&kind| {
                    units
                        .unit(kind)
                        .layers()
                        .iter()
                        .map(|l| {
                            (PackedWeights::zeros(l.w.rows(), l.w.cols()), vec![0.0; l.b.len()])
                        })
                        .collect()
                })
                .collect(),
        }
    }

    /// Resets every accumulator to zero (keeping allocations).
    pub(crate) fn zero(&mut self) {
        for unit in &mut self.grads {
            for (gw, gb) in unit {
                gw.fill_zero();
                gb.fill(0.0);
            }
        }
    }

    /// Mutably borrows the `(weight grad, bias grad)` pair of one layer.
    #[inline]
    fn layer_mut(&mut self, kind: OpKind, layer: usize) -> (&mut PackedWeights, &mut [f32]) {
        let (gw, gb) = &mut self.grads[kind.index()][layer];
        (gw, gb)
    }

    /// Adds these accumulators into `units`' gradient accumulators — the
    /// reduction step after a backward sweep (and the single point where
    /// packed panel gradients unfold back into row-major `gw`).
    pub(crate) fn add_into(&self, units: &mut UnitSet) {
        for (&kind, unit) in OpKind::ALL.iter().zip(&self.grads) {
            for (layer, (gw, gb)) in units.unit_mut(kind).layers_mut().iter_mut().zip(unit) {
                gw.add_unpacked_into(&mut layer.gw);
                for (d, &s) in layer.gb.iter_mut().zip(gb) {
                    *d += s;
                }
            }
        }
    }
}

/// One plan of a [`TrainSet`]: its lowering plus everything featurization
/// and supervision derive from it, cached once per training run.
struct PlanRecord {
    lowering: Lowering,
    kinds: Vec<OpKind>,
    /// Whitened feature rows, concatenated; node `k`'s row is
    /// `feat[feat_offsets[k]..feat_offsets[k + 1]]`.
    feat: Vec<f32>,
    feat_offsets: Vec<usize>,
    /// Encoded latency target per node (every operator is supervised).
    targets: Vec<f32>,
}

impl PlanRecord {
    fn len(&self) -> usize {
        self.kinds.len()
    }

    fn feat_of(&self, k: usize) -> &[f32] {
        &self.feat[self.feat_offsets[k]..self.feat_offsets[k + 1]]
    }
}

/// The per-training-run cache behind the wavefront trainer: every plan
/// lowered, featurized and target-encoded **once**, so per-epoch tape
/// compilation is pure row grouping — no tree walks, no Table-2
/// featurization, no whitening in the epoch loop (the training-time
/// analogue of the streaming engine's feature-row cache).
pub(crate) struct TrainSet {
    records: Vec<PlanRecord>,
}

impl TrainSet {
    /// Lowers, featurizes and target-encodes `plans`.
    ///
    /// # Panics
    /// Panics if a node's child count does not match its family's arity —
    /// training data can arrive from unvalidated JSON (`qpp train
    /// --dataset`), and a malformed tree must fail loudly here rather
    /// than corrupt row routing later.
    pub(crate) fn prepare(
        featurizer: &Featurizer,
        whitener: &Whitener,
        codec: &TargetCodec,
        plans: &[&PlanNode],
    ) -> TrainSet {
        let mut scratch = Vec::new();
        let records = plans
            .iter()
            .map(|root| {
                let nodes = root.postorder();
                let lowering = lower(root);
                let mut feat = Vec::new();
                let mut feat_offsets = Vec::with_capacity(nodes.len() + 1);
                let mut targets = Vec::with_capacity(nodes.len());
                let mut kinds = Vec::with_capacity(nodes.len());
                feat_offsets.push(0);
                for (k, node) in nodes.iter().enumerate() {
                    let kind = node.op.kind();
                    assert_eq!(
                        lowering.children_of(k).len(),
                        kind.arity(),
                        "malformed plan: {kind:?} node with {} children (arity {})",
                        lowering.children_of(k).len(),
                        kind.arity()
                    );
                    whitener.features_into(featurizer, node, &mut scratch);
                    feat.extend_from_slice(&scratch);
                    feat_offsets.push(feat.len());
                    targets.push(codec.encode(node.actual.latency_ms));
                    kinds.push(kind);
                }
                PlanRecord { lowering, kinds, feat, feat_offsets, targets }
            })
            .collect();
        TrainSet { records }
    }

    /// Number of cached plans.
    pub(crate) fn len(&self) -> usize {
        self.records.len()
    }

    /// Total operator nodes across all cached plans.
    #[cfg(test)]
    fn total_nodes(&self) -> usize {
        self.records.iter().map(PlanRecord::len).sum()
    }
}

/// The reusable pieces a retiring tape hands to its successor: the
/// buffer pool (holding every drained matrix), per-worker gradient
/// accumulators, the target buffer, and the packed panel state (same
/// model shapes across a session, so the allocation carries over; every
/// forward refreshes the contents anyway). (Per-worker *pools* are no
/// longer tape state — they live in the resident executor.)
type TapeParts = (BufferPool, Vec<GradSet>, Vec<f32>, PackedUnits);

/// A compiled, differentiable wavefront program over a training batch —
/// the gradient-carrying twin of [`crate::infer::PlanProgram`].
///
/// Compile once per batch (for full-batch training, once per *run* — the
/// trainer reuses the tape across epochs), then per gradient step:
/// [`ProgramTape::forward`] → [`ProgramTape::loss`] →
/// [`ProgramTape::backward`], which accumulates summed-SSE weight
/// gradients into the unit set exactly like
/// [`crate::tree::TreeBatch::backward`] does — the caller normalizes and
/// applies them. All buffers (step inputs, recorded activations, output
/// and gradient rows) are preallocated at compile time and reused across
/// epochs; recompiling for a different batch recycles them through the
/// tape's [`BufferPool`].
///
/// ```
/// use qppnet::config::{TargetCodec, TargetTransform};
/// use qppnet::{ProgramTape, QppConfig, UnitSet};
/// use qpp_plansim::features::{Featurizer, Whitener};
/// use qpp_plansim::prelude::*;
/// use rand::SeedableRng;
///
/// let ds = Dataset::generate(Workload::TpcH, 1.0, 12, 3);
/// let fz = Featurizer::new(&ds.catalog);
/// let wh = Whitener::fit(&fz, ds.plans.iter());
/// let codec = TargetCodec::fit(TargetTransform::Log1p,
///                              ds.plans.iter().map(|p| p.latency_ms()));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut units = UnitSet::new(&QppConfig::tiny(), &fz, &mut rng);
///
/// let roots: Vec<_> = ds.plans.iter().map(|p| &p.root).collect();
/// let mut tape = ProgramTape::compile(&fz, &wh, &codec, &units, &roots);
/// units.zero_grad();
/// tape.forward(&units);
/// let (sse, ops) = tape.loss();
/// tape.backward(&mut units);           // grads now live in `units`
/// assert!(sse >= 0.0 && ops == tape.num_nodes());
/// ```
pub struct ProgramTape {
    steps: Vec<Step>,
    /// Recorded layer activations, parallel to `steps`: `acts[s][l]` is
    /// layer `l`'s activation over step `s`'s members. Written by every
    /// forward, consumed by the following backward.
    acts: Vec<Vec<Matrix>>,
    levels: Vec<Vec<u32>>,
    /// `total_nodes × out_w`; row `r` holds node `r`'s forward output.
    outputs: Matrix,
    /// `total_nodes × out_w`; row `r` holds `∂loss/∂output(r)` — seeded by
    /// [`ProgramTape::loss`], routed top-down by the backward sweep.
    grad_outputs: Matrix,
    /// Encoded latency target per global node row.
    targets: Vec<f32>,
    out_w: usize,
    num_plans: usize,
    /// Scratch + recycling pool: gradient ping-pong buffers during
    /// backward, and retired tape buffers between recompiles. (Per-worker
    /// pools for the parallel sweeps come from the resident
    /// [`qpp_nn::Executor`], which keeps them warm across epochs.)
    pool: BufferPool,
    /// Per-worker gradient accumulators (index 0 also serves the
    /// sequential path), grown lazily and kept warm across epochs.
    worker_grads: Vec<GradSet>,
    /// Packed panel state (forward **and** transposed backward panels),
    /// refreshed from the authoritative unit set at the start of every
    /// forward sweep: the trainer mutates weights in place between
    /// gradient steps, so — unlike the borrow-pinned streaming builder —
    /// the tape can never cache panels across sweeps. Refresh is
    /// O(params), the same order as the optimizer step it follows.
    packed: PackedUnits,
}

impl ProgramTape {
    /// Compiles `roots` into a differentiable wavefront program against
    /// the fitted model's shape, featurizing every node (one-shot
    /// convenience; the trainer goes through a per-run feature cache
    /// instead — `TrainSet` — which featurizes once per run, not once
    /// per batch).
    ///
    /// # Panics
    /// Panics if a node's child count does not match its family's arity,
    /// or if feature sizes disagree with the unit set (a featurizer/model
    /// mismatch).
    pub fn compile(
        featurizer: &Featurizer,
        whitener: &Whitener,
        codec: &TargetCodec,
        units: &UnitSet,
        roots: &[&PlanNode],
    ) -> ProgramTape {
        let set = TrainSet::prepare(featurizer, whitener, codec, roots);
        let chunk: Vec<usize> = (0..roots.len()).collect();
        ProgramTape::compile_from(&set, &chunk, units, None)
    }

    /// Compiles the tape for one batch (`chunk` indexes into `set`),
    /// recycling a retired tape's buffers when one is handed back — the
    /// mini-batch path reuses every allocation across recompiles, so the
    /// epoch loop is allocation-free in steady state.
    pub(crate) fn compile_from(
        set: &TrainSet,
        chunk: &[usize],
        units: &UnitSet,
        recycled: Option<ProgramTape>,
    ) -> ProgramTape {
        let out_w = units.out_size();
        let (mut pool, worker_grads, mut targets, packed) = match recycled {
            Some(tape) => tape.into_parts(),
            None => {
                (BufferPool::new(), Vec::new(), Vec::new(), PackedUnits::pack(units, true))
            }
        };

        let mut builder = WavefrontBuilder::new();
        let mut total_nodes = 0usize;
        let mut child_scratch = Vec::new();
        targets.clear();
        for &pi in chunk {
            let rec = &set.records[pi];
            let base = total_nodes;
            total_nodes += rec.len();
            for k in 0..rec.len() {
                child_scratch.clear();
                child_scratch.extend(rec.lowering.children_of(k).iter().map(|&c| base + c));
                builder.push(
                    rec.lowering.height_of(k),
                    rec.kinds[k],
                    base + k,
                    rec.feat_of(k),
                    &child_scratch,
                );
                targets.push(rec.targets[k]);
            }
        }

        let (steps, levels) =
            builder.finish(units, TRAIN_CHUNK_ROWS, &mut |rows, cols| pool.take(rows, cols));
        // Every recorded activation is fully overwritten by each forward
        // (and outputs/grad rows by each run/loss), so pooled buffers with
        // unspecified contents are safe everywhere here.
        let acts = steps
            .iter()
            .map(|s| {
                units
                    .unit(s.kind)
                    .layers()
                    .iter()
                    .map(|l| pool.take(s.rows.len(), l.out_dim()))
                    .collect()
            })
            .collect();
        let outputs = pool.take(total_nodes, out_w);
        let grad_outputs = pool.take(total_nodes, out_w);

        ProgramTape {
            steps,
            acts,
            levels,
            outputs,
            grad_outputs,
            targets,
            out_w,
            num_plans: chunk.len(),
            pool,
            worker_grads,
            packed,
        }
    }

    /// Tears the tape down to its reusable parts: every matrix drains into
    /// the pool; worker state and the target buffer carry over.
    fn into_parts(mut self) -> TapeParts {
        for step in self.steps {
            self.pool.give(step.input);
        }
        for acts in self.acts {
            for a in acts {
                self.pool.give(a);
            }
        }
        self.pool.give(self.outputs);
        self.pool.give(self.grad_outputs);
        (self.pool, self.worker_grads, self.targets, self.packed)
    }

    /// Number of plans in the compiled batch.
    pub fn num_plans(&self) -> usize {
        self.num_plans
    }

    /// Total operator nodes (= supervised rows) across all plans.
    pub fn num_nodes(&self) -> usize {
        self.targets.len()
    }

    /// Number of wavefront steps — gemm calls per unit-layer per forward
    /// sweep (the backward executes two more per layer: weight and input
    /// gradients). The per-class path would execute one gemm per
    /// (equivalence class, position) instead.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of height levels (the barrier count of a parallel sweep).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    fn check_units_width(&self, units: &UnitSet) {
        assert_eq!(
            units.out_size(),
            self.out_w,
            "unit set output width {} does not match compiled width {}",
            units.out_size(),
            self.out_w
        );
    }

    /// Runs the recording forward pass on the calling thread: levels
    /// ascending, each step gathering child outputs into its input,
    /// running its unit layer by layer into the tape's activation buffers,
    /// and scattering the final activation into the global output rows.
    pub fn forward(&mut self, units: &UnitSet) {
        self.forward_threaded(units, 1)
    }

    /// [`ProgramTape::forward`] across `threads` workers on the shared
    /// level-barrier executor. Bit-identical to the sequential pass at any
    /// thread count: workers run the same kernels on the same tape
    /// buffers — only the assignment of steps to workers changes.
    pub fn forward_threaded(&mut self, units: &UnitSet, threads: usize) {
        self.check_units_width(units);
        // Refresh the packed panels from the authoritative weights (the
        // trainer mutates them in place between gradient steps). The
        // following backward reads the same packed state — exactly the
        // weights this forward used.
        self.packed.repack_from(units);
        let threads = threads.min(max_level_width(&self.levels));
        let out_w = self.out_w;
        if threads <= 1 {
            for level_idx in 0..self.levels.len() {
                for s in 0..self.levels[level_idx].len() {
                    let id = self.levels[level_idx][s] as usize;
                    let step = &mut self.steps[id];
                    let outputs = &mut self.outputs;
                    gather_child_columns(
                        &step.child_rows,
                        step.arity,
                        step.feat_width,
                        out_w,
                        &mut step.input,
                        |r| outputs.row(r),
                    );
                    let last = forward_layers(step, &mut self.acts[id], &self.packed);
                    last.scatter_rows_into(&step.rows, outputs);
                }
            }
        } else {
            let packed = &self.packed;
            let steps = SharedSlab::new(&mut self.steps);
            let acts = SharedSlab::new(&mut self.acts);
            let outputs = SharedRows::new(&mut self.outputs);
            // The workers carry no private state in the forward — the tape
            // buffers themselves are the storage (disjoint per step).
            let mut workers = vec![(); threads];
            let exec = Executor::global();
            run_levels_parallel_with(exec, &self.levels, false, &mut workers, &|(), _pool, id| {
                // SAFETY: each step id appears in exactly one level list
                // once, and the round-robin deal hands it to exactly one
                // worker — no two threads touch the same step's input or
                // activation buffers within a level.
                let step = unsafe { steps.get_mut(id as usize) };
                let step_acts = unsafe { acts.get_mut(id as usize) };
                // SAFETY (row reads): child rows live at strictly lower
                // heights — written in an earlier level, sequenced by the
                // inter-level barrier.
                gather_child_columns(
                    &step.child_rows,
                    step.arity,
                    step.feat_width,
                    out_w,
                    &mut step.input,
                    |r| unsafe { outputs.row(r) },
                );
                let last = forward_layers(step, step_acts, packed);
                for (k, &r) in step.rows.iter().enumerate() {
                    // SAFETY: each output row belongs to exactly one step.
                    unsafe { outputs.write_row(r, last.row(k)) };
                }
            });
        }
    }

    /// Computes the summed-squared-error loss over **every operator of
    /// every plan** (Equation 7's all-operator supervision) from the last
    /// forward, and seeds the gradient buffer the backward sweep consumes:
    /// `∂loss/∂output(r) = 2·(outputs[r, 0] − target[r])` in the latency
    /// column, zero elsewhere.
    ///
    /// Returns `(sse, supervised row count)`. Like
    /// [`crate::tree::TreeBatch::loss`], gradients are **unnormalized**
    /// (pure SSE): the trainer normalizes once by the batch's total
    /// operator count — §5.1.1's unbiased recombination.
    pub fn loss(&mut self) -> (f64, usize) {
        self.grad_outputs.fill_zero();
        let mut sse = 0.0f64;
        for (r, &target) in self.targets.iter().enumerate() {
            let err = self.outputs.get(r, 0) - target;
            sse += (err as f64) * (err as f64);
            self.grad_outputs.set(r, 0, 2.0 * err);
        }
        (sse, self.targets.len())
    }

    /// Runs the reverse sweep on the calling thread, accumulating weight
    /// and bias gradients into `units` (summed with whatever is already
    /// there, exactly like [`crate::tree::TreeBatch::backward`]): levels
    /// descending, each step gathering its members' output gradients,
    /// walking its unit's layers in reverse, and scatter-adding child
    /// gradient blocks onto the children's rows.
    ///
    /// Call [`ProgramTape::loss`] (after a forward) first — it seeds the
    /// gradient buffer this sweep drains.
    pub fn backward(&mut self, units: &mut UnitSet) {
        self.backward_threaded(units, 1)
    }

    /// [`ProgramTape::backward`] across `threads` workers: levels run
    /// top-down on the shared executor, each worker accumulating into its
    /// own private gradient set against the shared read-only weights,
    /// reduced into `units` after the sweep. Equivalent to the sequential sweep up to
    /// f32 summation order (the same contract as the legacy data-parallel
    /// trainer).
    pub fn backward_threaded(&mut self, units: &mut UnitSet, threads: usize) {
        self.check_units_width(units);
        let threads = threads.min(max_level_width(&self.levels)).max(1);
        while self.worker_grads.len() < threads {
            self.worker_grads.push(GradSet::new_like(units));
        }
        for g in &mut self.worker_grads[..threads] {
            g.zero();
        }

        if threads <= 1 {
            let grads = &mut self.worker_grads[0];
            for level in self.levels.iter().rev() {
                for &id in level {
                    let id = id as usize;
                    let step = &self.steps[id];
                    let mut d = self.pool.take(step.rows.len(), self.out_w);
                    self.grad_outputs.gather_rows_into(&step.rows, &mut d);
                    let dx =
                        backward_layers(step, &self.acts[id], &self.packed, d, grads, &mut self.pool);
                    if let Some(dx) = dx {
                        route_child_grads_seq(step, &dx, &mut self.grad_outputs, self.out_w);
                        self.pool.give(dx);
                    }
                }
            }
        } else {
            let packed = &self.packed;
            let steps = &self.steps;
            let acts = &self.acts;
            let out_w = self.out_w;
            let grad_outputs = SharedRows::new(&mut self.grad_outputs);
            // Each worker's scratch pool is its resident executor pool;
            // only the gradient accumulators are tape-owned worker state.
            let workers = &mut self.worker_grads[..threads];
            let exec = Executor::global();
            run_levels_parallel_with(exec, &self.levels, true, workers, &|grads, pool, id| {
                let id = id as usize;
                let step = &steps[id];
                let members = step.rows.len();
                let mut d = pool.take(members, out_w);
                for (k, &r) in step.rows.iter().enumerate() {
                    // SAFETY: row `r`'s gradient is complete — its only
                    // writers are the loss seed (before the sweep) and
                    // `r`'s parent step, which lives at a strictly higher
                    // height: an earlier reverse level, barrier-sequenced.
                    d.row_mut(k).copy_from_slice(unsafe { grad_outputs.row(r) });
                }
                let dx = backward_layers(step, &acts[id], packed, d, grads, pool);
                if let Some(dx) = dx {
                    // SAFETY: a node has at most one parent, so this step
                    // is the only writer of each routed child's gradient
                    // row in the whole sweep.
                    scatter_child_grad_columns(step, &dx, out_w, |child, src| unsafe {
                        grad_outputs.add_to_row(child, src);
                    });
                    pool.give(dx);
                }
            });
        }

        for g in &self.worker_grads[..threads] {
            g.add_into(units);
        }
    }
}

/// The trainer's per-run wavefront state: the cached [`TrainSet`] plus
/// tape reuse across epochs.
///
/// Shuffling changes batch *order* every epoch, but gradient and loss
/// sums over one batch are order-independent — so the common full-batch
/// configuration (`batch_size >= plans`) compiles **one** tape in
/// canonical order and reuses it for the whole run: zero per-epoch
/// compilation, zero steady-state allocation. Mini-batch configurations
/// recompile per chunk (membership really changes) but recycle every
/// buffer through the retiring tape's pool, and never re-featurize — the
/// `TrainSet` did that once.
pub(crate) struct ProgramSession {
    set: TrainSet,
    /// The compile-once tape for full-set chunks.
    full_tape: Option<ProgramTape>,
    /// The recycled tape for mini-batch chunks.
    scratch_tape: Option<ProgramTape>,
}

impl ProgramSession {
    /// Lowers, featurizes and target-encodes the training set once.
    pub(crate) fn prepare(
        featurizer: &Featurizer,
        whitener: &Whitener,
        codec: &TargetCodec,
        roots: &[&PlanNode],
    ) -> ProgramSession {
        ProgramSession {
            set: TrainSet::prepare(featurizer, whitener, codec, roots),
            full_tape: None,
            scratch_tape: None,
        }
    }

    /// The tape for one shuffled chunk: the cached full-batch tape when
    /// the chunk covers the whole set (order is irrelevant to the sums),
    /// a buffer-recycling recompile otherwise.
    pub(crate) fn tape_for(&mut self, chunk: &[usize], units: &UnitSet) -> &mut ProgramTape {
        if chunk.len() == self.set.len() {
            if self.full_tape.is_none() {
                let canonical: Vec<usize> = (0..self.set.len()).collect();
                self.full_tape =
                    Some(ProgramTape::compile_from(&self.set, &canonical, units, None));
            }
            self.full_tape.as_mut().expect("compiled above")
        } else {
            let recycled = self.scratch_tape.take();
            self.scratch_tape =
                Some(ProgramTape::compile_from(&self.set, chunk, units, recycled));
            self.scratch_tape.as_mut().expect("compiled above")
        }
    }
}

/// Runs one step's unit forward layer by layer into the tape's recording
/// buffers, returning the final activation (the step's output rows).
fn forward_layers<'a>(step: &Step, acts: &'a mut [Matrix], packed: &PackedUnits) -> &'a Matrix {
    let layers = packed.unit(step.kind).layers();
    debug_assert_eq!(layers.len(), acts.len(), "tape recorded a different layer count");
    for l in 0..layers.len() {
        let (done, rest) = acts.split_at_mut(l);
        let x: &Matrix = if l == 0 { &step.input } else { &done[l - 1] };
        layers[l].forward_into(x, &mut rest[0]);
    }
    acts.last().expect("units have at least one layer")
}

/// Walks one step's unit layers in reverse from the gathered output
/// gradient `d`: fused activation backward (from recorded activations),
/// bias and weight gradient accumulation into `grads`, then the input
/// gradient gemm `dX = dZ·Wᵀ` feeding the next layer down. Returns the
/// gradient w.r.t. the step input (`members × in_dim`, pool-owned) when
/// the step has children to route it to, `None` for leaves (whose input
/// gradient nothing consumes — the gemm is skipped entirely).
fn backward_layers(
    step: &Step,
    acts: &[Matrix],
    packed: &PackedUnits,
    d: Matrix,
    grads: &mut GradSet,
    pool: &mut BufferPool,
) -> Option<Matrix> {
    let layers = packed.unit(step.kind).layers();
    let mut d = d;
    for l in (0..layers.len()).rev() {
        let layer = &layers[l];
        let x: &Matrix = if l == 0 { &step.input } else { &acts[l - 1] };
        // dZ = dA ⊙ act'(act output) — identity layers skip the pass.
        activation_backward_inplace(&mut d, &acts[l], layer.act());
        let (gw, gb) = grads.layer_mut(step.kind, l);
        d.col_sum_into(gb);
        gw.accumulate_at_b(x, &d);
        if l == 0 && step.arity == 0 {
            pool.give(d);
            return None;
        }
        let mut dx = pool.take(d.rows(), layer.in_dim());
        layer.backward_input_into(&d, &mut dx);
        pool.give(std::mem::replace(&mut d, dx));
    }
    Some(d)
}

/// Scatter-adds the child column blocks of a step's input gradient onto
/// the children's gradient rows — the adjoint of
/// [`gather_child_columns`], and like it the **single** copy of the
/// column-block routing layout (`fw + j·out_w`, node-major `child_rows`
/// stride) shared by the sequential and parallel backward; `add_row`
/// abstracts the sink (plain matrix rows or a [`SharedRows`] view)
/// exactly as the gather's `row_of` abstracts its source.
fn scatter_child_grad_columns(
    step: &Step,
    dx: &Matrix,
    out_w: usize,
    mut add_row: impl FnMut(usize, &[f32]),
) {
    let fw = step.feat_width;
    for i in 0..dx.rows() {
        for j in 0..step.arity {
            let child = step.child_rows[i * step.arity + j];
            add_row(child, &dx.row(i)[fw + j * out_w..fw + (j + 1) * out_w]);
        }
    }
}

/// The sequential backward's child routing: unary families hand their
/// (contiguous) child list straight to the
/// [`Matrix::scatter_add_cols_into`] kernel; higher arities go through
/// the shared [`scatter_child_grad_columns`] walk.
fn route_child_grads_seq(step: &Step, dx: &Matrix, grad_outputs: &mut Matrix, out_w: usize) {
    match step.arity {
        0 => {}
        1 => dx.scatter_add_cols_into(step.feat_width, &step.child_rows, grad_outputs),
        _ => scatter_child_grad_columns(step, dx, out_w, |child, src| {
            for (dst, &s) in grad_outputs.row_mut(child).iter_mut().zip(src) {
                *dst += s;
            }
        }),
    }
}

/// A raw-pointer view of a slab (`Vec<T>`) that hands out disjoint `&mut`
/// elements to worker threads — the per-step twin of
/// [`SharedRows`]: the level schedule assigns each step id to
/// exactly one worker, so element accesses never alias. Lives only inside
/// one executor invocation's scope, which holds the `&mut [T]` borrow for
/// the view's whole lifetime.
struct SharedSlab<'a, T> {
    ptr: *mut T,
    len: usize,
    _borrow: std::marker::PhantomData<&'a mut [T]>,
}

/// SAFETY: see the type-level contract — all element accesses are disjoint
/// (one step id, one worker), so handing the view to multiple threads is
/// sound for any `Send` element.
unsafe impl<T: Send> Send for SharedSlab<'_, T> {}
/// SAFETY: as for [`Send`].
unsafe impl<T: Send> Sync for SharedSlab<'_, T> {}

impl<'a, T> SharedSlab<'a, T> {
    fn new(slice: &'a mut [T]) -> SharedSlab<'a, T> {
        SharedSlab { ptr: slice.as_mut_ptr(), len: slice.len(), _borrow: std::marker::PhantomData }
    }

    /// Mutably borrows element `i`.
    ///
    /// # Safety
    /// The caller must be the only thread accessing element `i` for the
    /// borrow's lifetime (each step belongs to exactly one worker within
    /// a level, and levels are barrier-separated).
    #[inline]
    #[allow(clippy::mut_from_ref)] // the raw-pointer escape hatch IS the point; see the safety contract
    unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len, "slab index {i} out of range for {} elements", self.len);
        &mut *self.ptr.add(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{QppConfig, TargetTransform};
    use qpp_plansim::catalog::Workload;
    use qpp_plansim::dataset::Dataset;
    use rand::SeedableRng;

    fn setup(workload: Workload, n: usize, seed: u64) -> (Dataset, Featurizer, Whitener, UnitSet, TargetCodec) {
        let ds = Dataset::generate(workload, 1.0, n, seed);
        let fz = Featurizer::new(&ds.catalog);
        let wh = Whitener::fit(&fz, ds.plans.iter());
        let cfg = QppConfig::tiny();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x7A9E);
        let units = UnitSet::new(&cfg, &fz, &mut rng);
        let codec =
            TargetCodec::fit(TargetTransform::Log1p, ds.plans.iter().map(|p| p.latency_ms()));
        (ds, fz, wh, units, codec)
    }

    fn grads_snapshot(units: &UnitSet) -> Vec<(Matrix, Vec<f32>)> {
        OpKind::ALL
            .iter()
            .flat_map(|&k| units.unit(k).layers().iter().map(|l| (l.gw.clone(), l.gb.clone())))
            .collect()
    }

    fn assert_grads_close(a: &[(Matrix, Vec<f32>)], b: &[(Matrix, Vec<f32>)], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, ((gw_a, gb_a), (gw_b, gb_b))) in a.iter().zip(b).enumerate() {
            for (x, y) in gw_a.as_slice().iter().zip(gw_b.as_slice()) {
                let rel = (x - y).abs() / (1.0 + x.abs().max(y.abs()));
                assert!(rel < tol, "layer {i}: weight grad {x} vs {y} (rel {rel})");
            }
            for (x, y) in gb_a.iter().zip(gb_b) {
                let rel = (x - y).abs() / (1.0 + x.abs().max(y.abs()));
                assert!(rel < tol, "layer {i}: bias grad {x} vs {y} (rel {rel})");
            }
        }
    }

    /// Structural contract of one forward+loss pass (the full gradient
    /// differential against the `TreeBatch` oracle lives in
    /// `tests/train_differential.rs`, which owns that harness).
    #[test]
    fn loss_supervises_every_operator_of_every_plan() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcH, 24, 5);
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut tape = ProgramTape::compile(&fz, &wh, &codec, &units, &roots);
        tape.forward(&units);
        let (sse, ops) = tape.loss();
        assert_eq!(ops, ds.plans.iter().map(|p| p.node_count()).sum::<usize>());
        assert_eq!(ops, tape.num_nodes());
        assert!(sse.is_finite() && sse > 0.0, "untrained nets have positive loss");
    }

    #[test]
    fn tape_forward_matches_serving_program() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcDs, 16, 9);
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut tape = ProgramTape::compile(&fz, &wh, &codec, &units, &roots);
        tape.forward(&units);
        let mut program = crate::infer::PlanProgram::compile(&fz, &wh, &units, &roots);
        program.run_parallel(&units, 1);
        // Same kernels, same grouping policy (shared WavefrontBuilder) —
        // the training forward IS the serving forward, bit for bit.
        assert_eq!(tape.outputs, *program.outputs_for_tests());
    }

    #[test]
    fn threaded_sweeps_match_sequential() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcDs, 24, 13);
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut tape = ProgramTape::compile(&fz, &wh, &codec, &units, &roots);

        let mut seq_units = units.clone();
        seq_units.zero_grad();
        tape.forward(&units);
        let (seq_sse, _) = tape.loss();
        tape.backward(&mut seq_units);
        let seq_out = tape.outputs.clone();
        let seq = grads_snapshot(&seq_units);

        for threads in [2usize, 4, 8] {
            let mut par_units = units.clone();
            par_units.zero_grad();
            tape.forward_threaded(&units, threads);
            // Forward is bit-identical: same buffers, same kernels.
            assert_eq!(tape.outputs, seq_out, "{threads}-thread forward diverged");
            let (sse, _) = tape.loss();
            assert_eq!(sse, seq_sse);
            tape.backward_threaded(&mut par_units, threads);
            // Gradients agree up to f32 summation order (worker-local
            // accumulation then reduction).
            assert_grads_close(&grads_snapshot(&par_units), &seq, 1e-5);
        }
    }

    #[test]
    fn minibatch_recompiles_recycle_buffers() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcH, 16, 21);
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let set = TrainSet::prepare(&fz, &wh, &codec, &roots);
        assert_eq!(set.len(), 16);
        assert_eq!(set.total_nodes(), ds.plans.iter().map(|p| p.node_count()).sum::<usize>());

        let chunk_a: Vec<usize> = (0..8).collect();
        let chunk_b: Vec<usize> = (8..16).collect();
        let mut tape = ProgramTape::compile_from(&set, &chunk_a, &units, None);
        let mut scratch_units = units.clone();
        // Warm both sweeps so scratch buffers reach their high-water mark.
        tape.forward(&units);
        tape.loss();
        tape.backward(&mut scratch_units);
        // Recompile churn: after the first swap, steady-state recompiles
        // must not allocate fresh matrices (every take is served by the
        // recycled pool at or under its high-water mark).
        tape = ProgramTape::compile_from(&set, &chunk_b, &units, Some(tape));
        tape.forward(&units);
        tape.loss();
        tape.backward(&mut scratch_units);
        let watermark = tape.pool.available();
        for chunk in [&chunk_a, &chunk_b, &chunk_a] {
            tape = ProgramTape::compile_from(&set, chunk, &units, Some(tape));
            tape.forward(&units);
            tape.loss();
            tape.backward(&mut scratch_units);
            assert!(
                tape.pool.available() <= watermark + 1,
                "recompile grew the pool past its high-water mark"
            );
        }
        // And the recycled tape still computes the right thing: same
        // gradients as a freshly-compiled tape over the same chunk
        // (recycling must be invisible; the TreeBatch-oracle comparison
        // lives in the integration suite).
        let fresh_roots: Vec<&PlanNode> =
            chunk_a.iter().map(|&i| &ds.plans[i].root).collect();
        let mut fresh_tape = ProgramTape::compile(&fz, &wh, &codec, &units, &fresh_roots);
        let mut fresh_units = units.clone();
        fresh_units.zero_grad();
        fresh_tape.forward(&units);
        fresh_tape.loss();
        fresh_tape.backward(&mut fresh_units);
        let mut tape_units = units.clone();
        tape_units.zero_grad();
        tape.forward(&units);
        tape.loss();
        tape.backward(&mut tape_units);
        assert_grads_close(&grads_snapshot(&tape_units), &grads_snapshot(&fresh_units), 1e-5);
    }

    #[test]
    fn backward_accumulates_like_tree_batch() {
        // Two backward passes must sum gradients (the trainer's contract),
        // not overwrite them.
        let (ds, fz, wh, mut units, codec) = setup(Workload::TpcH, 6, 31);
        let roots: Vec<&PlanNode> = ds.plans.iter().map(|p| &p.root).collect();
        let mut tape = ProgramTape::compile(&fz, &wh, &codec, &units, &roots);
        units.zero_grad();
        tape.forward(&units);
        tape.loss();
        tape.backward(&mut units);
        let once = grads_snapshot(&units);
        tape.forward(&units);
        tape.loss();
        tape.backward(&mut units);
        let twice = grads_snapshot(&units);
        for ((gw1, _), (gw2, _)) in once.iter().zip(&twice) {
            for (a, b) in gw1.as_slice().iter().zip(gw2.as_slice()) {
                assert!((2.0 * a - b).abs() <= 1e-4 * (1.0 + b.abs()), "{a} doubled vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "malformed plan")]
    fn malformed_arity_is_rejected_at_prepare() {
        let (ds, fz, wh, units, codec) = setup(Workload::TpcH, 4, 3);
        let _ = &ds;
        use qpp_plansim::operators::Operator;
        let bad = PlanNode::new(Operator::Materialize, vec![]);
        let _ = ProgramTape::compile(&fz, &wh, &codec, &units, &[&bad]);
    }

    #[test]
    fn empty_batch_compiles_and_trains_nothing() {
        let (_, fz, wh, mut units, codec) = setup(Workload::TpcH, 4, 3);
        let mut tape = ProgramTape::compile(&fz, &wh, &codec, &units, &[]);
        units.zero_grad();
        tape.forward(&units);
        let (sse, ops) = tape.loss();
        tape.backward(&mut units);
        assert_eq!((sse, ops), (0.0, 0));
        assert_eq!(tape.num_plans(), 0);
    }
}
