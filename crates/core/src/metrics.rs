//! Evaluation metrics (paper §6, "Evaluation metrics").
//!
//! * **relative prediction error** — `mean(|actual − predicted| / actual)`,
//!   the metric of [4, 25] (known to favour underestimates);
//! * **mean absolute error** — symmetric, in the units of the target
//!   (milliseconds here; the paper reports minutes);
//! * **R(q)** — `max(actual/predicted, predicted/actual)`, the "factor by
//!   which the estimate was off"; reported as Table 1's buckets
//!   (`R ≤ 1.5`, `1.5 < R < 2`, `R ≥ 2`) and Figure 7b's CDF.

use serde::{Deserialize, Serialize};

/// Milliseconds per minute (the paper reports MAE in minutes).
pub const MS_PER_MINUTE: f64 = 60_000.0;

/// Summary metrics over a set of (actual, predicted) latency pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Number of evaluated queries.
    pub count: usize,
    /// Mean relative prediction error (unitless, often shown as %).
    pub relative_error: f64,
    /// Mean absolute error in milliseconds.
    pub mae_ms: f64,
    /// Root mean squared error in milliseconds.
    pub rmse_ms: f64,
    /// Fraction of queries with `R(q) ≤ 1.5`.
    pub r_le_15: f64,
    /// Fraction with `1.5 < R(q) < 2`.
    pub r_15_to_2: f64,
    /// Fraction with `R(q) ≥ 2`.
    pub r_ge_2: f64,
    /// Mean R(q).
    pub mean_r: f64,
    /// Median R(q) (the cardinality-estimation literature's "q-error"
    /// median; robust to outliers where `mean_r` is not).
    #[serde(default = "one")]
    pub median_r: f64,
    /// 90th-percentile R(q).
    #[serde(default = "one")]
    pub p90_r: f64,
    /// 99th-percentile R(q).
    #[serde(default = "one")]
    pub p99_r: f64,
    /// Worst-case R(q).
    #[serde(default = "one")]
    pub max_r: f64,
}

fn one() -> f64 {
    1.0
}

impl Metrics {
    /// Mean absolute error in minutes (the paper's reporting unit).
    pub fn mae_minutes(&self) -> f64 {
        self.mae_ms / MS_PER_MINUTE
    }

    /// Relative error as a percentage.
    pub fn relative_error_pct(&self) -> f64 {
        self.relative_error * 100.0
    }
}

/// The error factor `R(q) = max(actual/predicted, predicted/actual)`.
///
/// Degenerate predictions (≤ 0) are assigned the factor `actual / ε`,
/// i.e. "very wrong", rather than being dropped.
pub fn r_factor(actual: f64, predicted: f64) -> f64 {
    let eps = 1e-9;
    let a = actual.max(eps);
    let p = predicted.max(eps);
    (a / p).max(p / a)
}

/// Computes all metrics from parallel slices of actual and predicted
/// latencies (milliseconds).
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn evaluate(actual_ms: &[f64], predicted_ms: &[f64]) -> Metrics {
    assert_eq!(actual_ms.len(), predicted_ms.len(), "metric input length mismatch");
    assert!(!actual_ms.is_empty(), "cannot evaluate zero queries");
    let n = actual_ms.len() as f64;

    let mut rel = 0.0;
    let mut mae = 0.0;
    let mut mse = 0.0;
    let mut r_le_15 = 0usize;
    let mut r_15_to_2 = 0usize;
    let mut r_ge_2 = 0usize;
    let mut r_sum = 0.0;
    let mut rs = Vec::with_capacity(actual_ms.len());

    for (&a, &p) in actual_ms.iter().zip(predicted_ms) {
        let err = (a - p).abs();
        rel += err / a.max(1e-9);
        mae += err;
        mse += err * err;
        let r = r_factor(a, p);
        r_sum += r;
        rs.push(r);
        if r <= 1.5 {
            r_le_15 += 1;
        } else if r < 2.0 {
            r_15_to_2 += 1;
        } else {
            r_ge_2 += 1;
        }
    }

    rs.sort_by(|x, y| x.partial_cmp(y).expect("finite R values"));
    let quantile = |q: f64| sorted_quantile(&rs, q);

    Metrics {
        count: actual_ms.len(),
        relative_error: rel / n,
        mae_ms: mae / n,
        rmse_ms: (mse / n).sqrt(),
        r_le_15: r_le_15 as f64 / n,
        r_15_to_2: r_15_to_2 as f64 / n,
        r_ge_2: r_ge_2 as f64 / n,
        mean_r: r_sum / n,
        median_r: quantile(0.5),
        p90_r: quantile(0.9),
        p99_r: quantile(0.99),
        max_r: *rs.last().expect("non-empty"),
    }
}

/// Nearest-rank quantile of an ascending-sorted, non-empty slice — the
/// rounding [`evaluate`] uses for its R(q) percentiles, shared with the
/// stratified breakdowns in [`crate::analysis`].
pub(crate) fn sorted_quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// The cumulative distribution of R(q) values for Figure 7b: returns
/// `(fraction_of_test_set, r_value)` pairs with the fractions ascending.
///
/// Reading: "the model's prediction was within a factor of `r` for
/// `fraction` of the test set".
pub fn r_cdf(actual_ms: &[f64], predicted_ms: &[f64]) -> Vec<(f64, f64)> {
    assert_eq!(actual_ms.len(), predicted_ms.len());
    let mut rs: Vec<f64> =
        actual_ms.iter().zip(predicted_ms).map(|(&a, &p)| r_factor(a, p)).collect();
    rs.sort_by(|x, y| x.partial_cmp(y).expect("finite R values"));
    let n = rs.len() as f64;
    rs.into_iter().enumerate().map(|(i, r)| ((i + 1) as f64 / n, r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_zero_error() {
        let a = [100.0, 2000.0, 30.0];
        let m = evaluate(&a, &a);
        assert_eq!(m.relative_error, 0.0);
        assert_eq!(m.mae_ms, 0.0);
        assert_eq!(m.r_le_15, 1.0);
        assert_eq!(m.r_ge_2, 0.0);
        assert!((m.mean_r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_factor_is_symmetric() {
        // Paper example: predicting 2 min for a 1 min query and 2 min for a
        // 4 min query both give R = 2.
        assert!((r_factor(1.0, 2.0) - 2.0).abs() < 1e-12);
        assert!((r_factor(4.0, 2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn relative_error_is_asymmetric_as_documented() {
        // Underestimates bound relative error at 1; overestimates don't.
        let a = [100.0];
        let under = evaluate(&a, &[0.0]);
        let over = evaluate(&a, &[300.0]);
        assert!((under.relative_error - 1.0).abs() < 1e-9);
        assert!((over.relative_error - 2.0).abs() < 1e-9);
    }

    #[test]
    fn buckets_partition_the_test_set() {
        let a = [100.0, 100.0, 100.0, 100.0];
        let p = [105.0, 160.0, 210.0, 100.0]; // R = 1.05, 1.6, 2.1, 1.0
        let m = evaluate(&a, &p);
        assert!((m.r_le_15 + m.r_15_to_2 + m.r_ge_2 - 1.0).abs() < 1e-12);
        assert!((m.r_le_15 - 0.5).abs() < 1e-12);
        assert!((m.r_15_to_2 - 0.25).abs() < 1e-12);
        assert!((m.r_ge_2 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let a = [10.0, 20.0, 30.0, 40.0];
        let p = [12.0, 10.0, 33.0, 41.0];
        let cdf = r_cdf(&a, &p);
        assert_eq!(cdf.len(), 4);
        assert!((cdf.last().unwrap().0 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn degenerate_predictions_are_penalized_not_dropped() {
        let m = evaluate(&[100.0], &[0.0]);
        assert!(m.mean_r > 1e6);
        assert_eq!(m.r_ge_2, 1.0);
    }

    #[test]
    fn mae_unit_conversion() {
        let m = evaluate(&[MS_PER_MINUTE * 2.0], &[MS_PER_MINUTE]);
        assert!((m.mae_minutes() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_order_correctly() {
        // R values: 1.0, 1.2, 2.0, 4.0 → median ∈ {1.2, 2.0}, max = 4.
        let a = [100.0, 100.0, 100.0, 100.0];
        let p = [100.0, 120.0, 200.0, 400.0];
        let m = evaluate(&a, &p);
        assert!(m.median_r <= m.p90_r);
        assert!(m.p90_r <= m.p99_r);
        assert!(m.p99_r <= m.max_r);
        assert!((m.max_r - 4.0).abs() < 1e-12);
        assert!(m.median_r >= 1.2 && m.median_r <= 2.0);
    }

    #[test]
    fn single_query_quantiles_collapse() {
        let m = evaluate(&[100.0], &[150.0]);
        assert_eq!(m.median_r, m.max_r);
        assert!((m.max_r - 1.5).abs() < 1e-12);
    }
}
