//! Shared plan-tree lowering: post-order indexing used by both the
//! training path ([`crate::tree::TreeBatch`]) and the serving path
//! ([`crate::infer::PlanProgram`]).
//!
//! Both engines flatten a [`PlanNode`] tree into its post-order position
//! list and need, for every position, the positions of its children; the
//! serving engine additionally schedules positions by *height from the
//! leaves* so that all nodes whose children are already computed can share
//! one gemm per operator family. Keeping the lowering here guarantees the
//! two engines agree on position numbering — the differential tests compare
//! their outputs position by position.

use qpp_plansim::plan::PlanNode;

/// A plan tree lowered to flat post-order form: per-position child lists
/// in CSR layout plus heights from the leaves.
///
/// The CSR layout (one flat index array + offsets instead of one `Vec`
/// per position) keeps lowering allocation-light — the serving compiler
/// lowers thousands of nodes per batch on its hot path.
#[derive(Debug, Clone, Default)]
pub struct Lowering {
    /// `children[child_offsets[k]..child_offsets[k + 1]]` are the
    /// post-order positions of position `k`'s children.
    child_offsets: Vec<usize>,
    children: Vec<usize>,
    /// Height from the leaves per position (leaves are 0, internal nodes
    /// `1 + max(child heights)`).
    heights: Vec<usize>,
}

impl Lowering {
    /// Number of positions (nodes) in the lowered tree.
    pub fn len(&self) -> usize {
        self.heights.len()
    }

    /// True for an empty lowering (never produced by [`lower`], which
    /// always emits at least the root).
    pub fn is_empty(&self) -> bool {
        self.heights.is_empty()
    }

    /// Child positions of post-order position `k`.
    pub fn children_of(&self, k: usize) -> &[usize] {
        &self.children[self.child_offsets[k]..self.child_offsets[k + 1]]
    }

    /// Height from the leaves of position `k`.
    pub fn height_of(&self, k: usize) -> usize {
        self.heights[k]
    }
}

/// Lowers `root`'s subtree to flat post-order form.
///
/// Position numbering matches [`PlanNode::postorder`]: children before
/// parents, the root last. Heights are the wavefront key of the serving
/// engine: a node at height `h` only consumes outputs of nodes at heights
/// `< h`, so evaluating heights in ascending order satisfies every data
/// dependency regardless of tree shape — and heights also bound the
/// parallel engine's level barriers (`DESIGN.md` §7).
///
/// ```
/// use qppnet::lower::lower;
/// use qpp_plansim::operators::{JoinAlgorithm, JoinType, Operator, ParentRel, ScanMethod};
/// use qpp_plansim::plan::PlanNode;
///
/// let scan = |t| PlanNode::new(
///     Operator::Scan { table: t, method: ScanMethod::Seq, predicate_col: None }, vec![]);
/// let join = PlanNode::new(
///     Operator::Join { algo: JoinAlgorithm::Hash, jtype: JoinType::Inner,
///                      parent_rel: ParentRel::None },
///     vec![scan(0), scan(1)]);
///
/// let lw = lower(&join);
/// assert_eq!(lw.len(), 3);                   // post order: scan, scan, join
/// assert_eq!(lw.children_of(2), &[0, 1]);    // the root joins positions 0 and 1
/// assert_eq!((lw.height_of(0), lw.height_of(2)), (0, 1));
/// ```
pub fn lower(root: &PlanNode) -> Lowering {
    fn rec(node: &PlanNode, lw: &mut Lowering, stack: &mut Vec<usize>) -> usize {
        let mark = stack.len();
        for c in &node.children {
            let ci = rec(c, lw, stack);
            stack.push(ci);
        }
        let my = lw.heights.len();
        let kids = &stack[mark..];
        let h = kids.iter().map(|&c| lw.heights[c] + 1).max().unwrap_or(0);
        lw.child_offsets.push(lw.children.len());
        lw.children.extend_from_slice(kids);
        lw.heights.push(h);
        stack.truncate(mark);
        my
    }
    let n = root.node_count();
    let mut lw = Lowering {
        child_offsets: Vec::with_capacity(n + 1),
        children: Vec::with_capacity(n.saturating_sub(1)),
        heights: Vec::with_capacity(n),
    };
    let mut stack = Vec::new();
    rec(root, &mut lw, &mut stack);
    lw.child_offsets.push(lw.children.len());
    debug_assert_eq!(lw.heights.len(), n);
    lw
}

/// For every post-order position of `root`'s subtree, the post-order
/// positions of its children (empty for leaves) — the owned-`Vec` view of
/// [`lower`], used where per-position ownership is convenient (e.g.
/// [`crate::tree::TreeBatch`] moves each child list into its positions).
pub fn postorder_children(root: &PlanNode) -> Vec<Vec<usize>> {
    let lw = lower(root);
    (0..lw.len()).map(|k| lw.children_of(k).to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_plansim::operators::{JoinAlgorithm, JoinType, Operator, ParentRel, ScanMethod};

    fn scan() -> PlanNode {
        PlanNode::new(
            Operator::Scan { table: 0, method: ScanMethod::Seq, predicate_col: None },
            vec![],
        )
    }

    fn join(l: PlanNode, r: PlanNode) -> PlanNode {
        PlanNode::new(
            Operator::Join {
                algo: JoinAlgorithm::Hash,
                jtype: JoinType::Inner,
                parent_rel: ParentRel::None,
            },
            vec![l, r],
        )
    }

    #[test]
    fn children_follow_postorder_numbering() {
        // Post order of join(scan, join(scan, scan)):
        //   0: scan, 1: scan, 2: scan, 3: join(1,2), 4: root join(0,3)
        let tree = join(scan(), join(scan(), scan()));
        let children = postorder_children(&tree);
        assert_eq!(children, vec![vec![], vec![], vec![], vec![1, 2], vec![0, 3]]);
    }

    #[test]
    fn heights_respect_dependencies() {
        let tree = join(scan(), join(scan(), scan()));
        let lw = lower(&tree);
        let h: Vec<usize> = (0..lw.len()).map(|k| lw.height_of(k)).collect();
        assert_eq!(h, vec![0, 0, 0, 1, 2]);
        // Every parent is strictly above all of its children.
        for k in 0..lw.len() {
            for &c in lw.children_of(k) {
                assert!(h[c] < h[k]);
            }
        }
    }

    #[test]
    fn single_node_tree_lowering() {
        let tree = scan();
        assert_eq!(postorder_children(&tree), vec![Vec::<usize>::new()]);
        let lw = lower(&tree);
        assert_eq!(lw.len(), 1);
        assert!(!lw.is_empty());
        assert_eq!(lw.children_of(0), &[] as &[usize]);
        assert_eq!(lw.height_of(0), 0);
    }

    #[test]
    fn csr_lowering_agrees_with_owned_view() {
        let tree = join(join(scan(), scan()), join(scan(), join(scan(), scan())));
        let lw = lower(&tree);
        let children = postorder_children(&tree);
        assert_eq!(lw.len(), children.len());
        for (k, kids) in children.iter().enumerate() {
            assert_eq!(lw.children_of(k), kids.as_slice(), "position {k}");
        }
    }
}
