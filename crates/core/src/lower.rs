//! Shared plan-tree lowering: post-order indexing used by both the
//! training path ([`crate::tree::TreeBatch`]) and the serving path
//! ([`crate::infer::PlanProgram`]).
//!
//! Both engines flatten a [`PlanNode`] tree into its post-order position
//! list and need, for every position, the positions of its children; the
//! serving engine additionally schedules positions by *height from the
//! leaves* so that all nodes whose children are already computed can share
//! one gemm per operator family. Keeping the lowering here guarantees the
//! two engines agree on position numbering — the differential tests compare
//! their outputs position by position.

use qpp_plansim::operators::{
    AggStrategy, HashAlgorithm, JoinAlgorithm, JoinType, Operator, ParentRel, ScanMethod,
    SortMethod,
};
use qpp_plansim::plan::PlanNode;

/// An **exact** content key of everything featurization reads from one
/// plan node: the operator variant with all its parameters, the full
/// `EXPLAIN` estimate block, the learned-cardinality attachment and the
/// multiprogramming level. Two nodes with equal keys featurize to
/// bit-identical vectors under any one featurizer/whitener pair — which is
/// why the serving engines may key feature-row caches and subtree sharing
/// on it without ever re-verifying: this is a lossless encoding (a
/// conservative superset of the featurized fields), not a hash, so there
/// are no collisions to defend against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct NodeContentKey([u64; 12]);

impl NodeContentKey {
    /// Encodes `node`'s feature-determining content.
    pub fn of(node: &PlanNode) -> NodeContentKey {
        // Layout: [tag | learned-flag << 8, op0, op1, op2,
        //          width, rows, buffers, ios, total_cost, selectivity,
        //          learned_rows, concurrency].
        let mut k = [0u64; 12];
        let (tag, op0, op1, op2): (u64, u64, u64, u64) = match &node.op {
            Operator::Scan { table, method, predicate_col } => {
                let m = match method {
                    ScanMethod::Seq => 0,
                    ScanMethod::Index { index, forward } => {
                        1 | ((*index as u64) << 8) | ((*forward as u64) << 1)
                    }
                };
                (0, *table as u64, m, predicate_col.map_or(0, |c| c as u64 + 1))
            }
            Operator::Filter { parallel } => (1, *parallel as u64, 0, 0),
            Operator::Join { algo, jtype, parent_rel } => {
                let a = match algo {
                    JoinAlgorithm::NestedLoop => 0,
                    JoinAlgorithm::Hash => 1,
                    JoinAlgorithm::Merge => 2,
                };
                let t = match jtype {
                    JoinType::Inner => 0,
                    JoinType::Semi => 1,
                    JoinType::Anti => 2,
                    JoinType::Full => 3,
                };
                let p = match parent_rel {
                    ParentRel::None => 0,
                    ParentRel::Inner => 1,
                    ParentRel::Outer => 2,
                    ParentRel::Subquery => 3,
                };
                (2, a, t, p)
            }
            Operator::Hash { buckets, algo } => {
                (3, buckets.to_bits(), matches!(algo, HashAlgorithm::Chained) as u64, 0)
            }
            Operator::Sort { key, method } => {
                let m = match method {
                    SortMethod::Quicksort => 0,
                    SortMethod::TopN => 1,
                    SortMethod::External => 2,
                };
                (4, *key as u64, m, 0)
            }
            Operator::Aggregate { strategy, partial, op } => {
                let s = match strategy {
                    AggStrategy::Plain => 0,
                    AggStrategy::Sorted => 1,
                    AggStrategy::Hashed => 2,
                };
                (5, s, *partial as u64, *op as u64)
            }
            Operator::Materialize => (6, 0, 0, 0),
            Operator::Limit { count } => (7, count.to_bits(), 0, 0),
        };
        k[0] = tag | (node.learned_rows.is_some() as u64) << 8;
        k[1] = op0;
        k[2] = op1;
        k[3] = op2;
        k[4] = node.est.width.to_bits();
        k[5] = node.est.rows.to_bits();
        k[6] = node.est.buffers.to_bits();
        k[7] = node.est.ios.to_bits();
        k[8] = node.est.total_cost.to_bits();
        k[9] = node.est.selectivity.to_bits();
        k[10] = node.learned_rows.map_or(0, f64::to_bits);
        k[11] = node.concurrency.to_bits();
        NodeContentKey(k)
    }

    /// The raw encoded words, exposed for deterministic hashing (shard
    /// routing in [`crate::stream`] folds these through FNV-1a so the
    /// same plan always lands on the same shard, on every platform).
    pub(crate) fn words(&self) -> &[u64; 12] {
        &self.0
    }
}

/// The structural fingerprint of one *resident subtree* in the incremental
/// serving engine: the root node's exact content plus the identities of
/// its (already-deduplicated) children. Because children are resolved
/// bottom-up, two subtrees receive equal keys **iff** they are
/// node-for-node identical in every featurized field — the common-
/// subexpression-elimination map (`qppnet::stream`) keys shared wavefront
/// rows on this, so sharing is exact (same bits), never heuristic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct SubtreeKey {
    /// Content key of the subtree's root node.
    pub content: NodeContentKey,
    /// Shared-node ids of the root's children, left to right.
    pub children: Vec<u32>,
}

/// A plan tree lowered to flat post-order form: per-position child lists
/// in CSR layout plus heights from the leaves.
///
/// The CSR layout (one flat index array + offsets instead of one `Vec`
/// per position) keeps lowering allocation-light — the serving compiler
/// lowers thousands of nodes per batch on its hot path.
#[derive(Debug, Clone, Default)]
pub struct Lowering {
    /// `children[child_offsets[k]..child_offsets[k + 1]]` are the
    /// post-order positions of position `k`'s children.
    child_offsets: Vec<usize>,
    children: Vec<usize>,
    /// Height from the leaves per position (leaves are 0, internal nodes
    /// `1 + max(child heights)`).
    heights: Vec<usize>,
}

impl Lowering {
    /// Number of positions (nodes) in the lowered tree.
    pub fn len(&self) -> usize {
        self.heights.len()
    }

    /// True for an empty lowering (never produced by [`lower`], which
    /// always emits at least the root).
    pub fn is_empty(&self) -> bool {
        self.heights.is_empty()
    }

    /// Child positions of post-order position `k`.
    pub fn children_of(&self, k: usize) -> &[usize] {
        &self.children[self.child_offsets[k]..self.child_offsets[k + 1]]
    }

    /// Height from the leaves of position `k`.
    pub fn height_of(&self, k: usize) -> usize {
        self.heights[k]
    }

    /// Resets to the empty pre-sentinel state, keeping capacity. Used by
    /// the scratch decoder (`qppnet::serve::scratch`) to rebuild a reused
    /// lowering without allocating; callers must finish with
    /// [`Lowering::seal`] before reading.
    pub(crate) fn clear(&mut self) {
        self.child_offsets.clear();
        self.children.clear();
        self.heights.clear();
    }

    /// Appends one post-order position with the given child positions,
    /// computing its height, and returns its position index. Children
    /// must already be present (post order).
    pub(crate) fn push_node(&mut self, kids: &[usize]) -> usize {
        let my = self.heights.len();
        let h = kids.iter().map(|&c| self.heights[c] + 1).max().unwrap_or(0);
        self.child_offsets.push(self.children.len());
        self.children.extend_from_slice(kids);
        self.heights.push(h);
        my
    }

    /// Truncates back to `n` positions, discarding later nodes and their
    /// child lists. Used when a duplicate `children` key forces a re-parse
    /// of a subtree range (last-wins JSON semantics).
    pub(crate) fn truncate_nodes(&mut self, n: usize) {
        let child_len = self.child_offsets.get(n).copied().unwrap_or(self.children.len());
        self.child_offsets.truncate(n);
        self.children.truncate(child_len);
        self.heights.truncate(n);
    }

    /// Pushes the final CSR sentinel offset. Must be called exactly once
    /// after the last [`Lowering::push_node`]; [`lower`] does the
    /// equivalent internally.
    pub(crate) fn seal(&mut self) {
        self.child_offsets.push(self.children.len());
    }
}

/// Lowers `root`'s subtree to flat post-order form.
///
/// Position numbering matches [`PlanNode::postorder`]: children before
/// parents, the root last. Heights are the wavefront key of the serving
/// engine: a node at height `h` only consumes outputs of nodes at heights
/// `< h`, so evaluating heights in ascending order satisfies every data
/// dependency regardless of tree shape — and heights also bound the
/// parallel engine's level barriers (`DESIGN.md` §7).
///
/// ```
/// use qppnet::lower::lower;
/// use qpp_plansim::operators::{JoinAlgorithm, JoinType, Operator, ParentRel, ScanMethod};
/// use qpp_plansim::plan::PlanNode;
///
/// let scan = |t| PlanNode::new(
///     Operator::Scan { table: t, method: ScanMethod::Seq, predicate_col: None }, vec![]);
/// let join = PlanNode::new(
///     Operator::Join { algo: JoinAlgorithm::Hash, jtype: JoinType::Inner,
///                      parent_rel: ParentRel::None },
///     vec![scan(0), scan(1)]);
///
/// let lw = lower(&join);
/// assert_eq!(lw.len(), 3);                   // post order: scan, scan, join
/// assert_eq!(lw.children_of(2), &[0, 1]);    // the root joins positions 0 and 1
/// assert_eq!((lw.height_of(0), lw.height_of(2)), (0, 1));
/// ```
pub fn lower(root: &PlanNode) -> Lowering {
    fn rec(node: &PlanNode, lw: &mut Lowering, stack: &mut Vec<usize>) -> usize {
        let mark = stack.len();
        for c in &node.children {
            let ci = rec(c, lw, stack);
            stack.push(ci);
        }
        let my = lw.heights.len();
        let kids = &stack[mark..];
        let h = kids.iter().map(|&c| lw.heights[c] + 1).max().unwrap_or(0);
        lw.child_offsets.push(lw.children.len());
        lw.children.extend_from_slice(kids);
        lw.heights.push(h);
        stack.truncate(mark);
        my
    }
    let n = root.node_count();
    let mut lw = Lowering {
        child_offsets: Vec::with_capacity(n + 1),
        children: Vec::with_capacity(n.saturating_sub(1)),
        heights: Vec::with_capacity(n),
    };
    let mut stack = Vec::new();
    rec(root, &mut lw, &mut stack);
    lw.child_offsets.push(lw.children.len());
    debug_assert_eq!(lw.heights.len(), n);
    lw
}

/// For every post-order position of `root`'s subtree, the post-order
/// positions of its children (empty for leaves) — the owned-`Vec` view of
/// [`lower`], used where per-position ownership is convenient (e.g.
/// [`crate::tree::TreeBatch`] moves each child list into its positions).
pub fn postorder_children(root: &PlanNode) -> Vec<Vec<usize>> {
    let lw = lower(root);
    (0..lw.len()).map(|k| lw.children_of(k).to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp_plansim::operators::{JoinAlgorithm, JoinType, Operator, ParentRel, ScanMethod};

    fn scan() -> PlanNode {
        PlanNode::new(
            Operator::Scan { table: 0, method: ScanMethod::Seq, predicate_col: None },
            vec![],
        )
    }

    fn join(l: PlanNode, r: PlanNode) -> PlanNode {
        PlanNode::new(
            Operator::Join {
                algo: JoinAlgorithm::Hash,
                jtype: JoinType::Inner,
                parent_rel: ParentRel::None,
            },
            vec![l, r],
        )
    }

    #[test]
    fn children_follow_postorder_numbering() {
        // Post order of join(scan, join(scan, scan)):
        //   0: scan, 1: scan, 2: scan, 3: join(1,2), 4: root join(0,3)
        let tree = join(scan(), join(scan(), scan()));
        let children = postorder_children(&tree);
        assert_eq!(children, vec![vec![], vec![], vec![], vec![1, 2], vec![0, 3]]);
    }

    #[test]
    fn heights_respect_dependencies() {
        let tree = join(scan(), join(scan(), scan()));
        let lw = lower(&tree);
        let h: Vec<usize> = (0..lw.len()).map(|k| lw.height_of(k)).collect();
        assert_eq!(h, vec![0, 0, 0, 1, 2]);
        // Every parent is strictly above all of its children.
        for k in 0..lw.len() {
            for &c in lw.children_of(k) {
                assert!(h[c] < h[k]);
            }
        }
    }

    #[test]
    fn single_node_tree_lowering() {
        let tree = scan();
        assert_eq!(postorder_children(&tree), vec![Vec::<usize>::new()]);
        let lw = lower(&tree);
        assert_eq!(lw.len(), 1);
        assert!(!lw.is_empty());
        assert_eq!(lw.children_of(0), &[] as &[usize]);
        assert_eq!(lw.height_of(0), 0);
    }

    #[test]
    fn content_keys_track_features_not_actuals() {
        let mut a = scan();
        a.est.rows = 123.0;
        let mut b = a.clone();
        // Actuals are never featurized — keys must ignore them.
        b.actual.latency_ms = 1e9;
        b.actual.rows = 7.0;
        assert_eq!(NodeContentKey::of(&a), NodeContentKey::of(&b));
        // Any featurized field difference must split the key.
        let mut c = a.clone();
        c.est.rows = 124.0;
        assert_ne!(NodeContentKey::of(&a), NodeContentKey::of(&c));
        let mut d = a.clone();
        d.concurrency = 2.0;
        assert_ne!(NodeContentKey::of(&a), NodeContentKey::of(&d));
        let mut e = a.clone();
        e.learned_rows = Some(123.0);
        assert_ne!(NodeContentKey::of(&a), NodeContentKey::of(&e));
        // learned_rows = Some(0.0) must differ from None (flag bit).
        let mut f = a.clone();
        f.learned_rows = Some(0.0);
        assert_ne!(NodeContentKey::of(&a), NodeContentKey::of(&f));
        // A different operator family always differs.
        assert_ne!(
            NodeContentKey::of(&scan()),
            NodeContentKey::of(&PlanNode::new(Operator::Materialize, vec![scan()]))
        );
    }

    #[test]
    fn subtree_keys_separate_structure_and_content() {
        let key = |node: &PlanNode, children: Vec<u32>| SubtreeKey {
            content: NodeContentKey::of(node),
            children,
        };
        let a = scan();
        assert_eq!(key(&a, vec![]), key(&a, vec![]));
        // Same content, different (shared) children → different subtree.
        assert_ne!(key(&a, vec![0]), key(&a, vec![1]));
        assert_ne!(key(&a, vec![0, 1]), key(&a, vec![1, 0]), "child order matters");
    }

    #[test]
    fn csr_lowering_agrees_with_owned_view() {
        let tree = join(join(scan(), scan()), join(scan(), join(scan(), scan())));
        let lw = lower(&tree);
        let children = postorder_children(&tree);
        assert_eq!(lw.len(), children.len());
        for (k, kids) in children.iter().enumerate() {
            assert_eq!(lw.children_of(k), kids.as_slice(), "position {k}");
        }
    }
}
